"""Legacy setup shim: the sandbox lacks the `wheel` package, so PEP 660
editable installs fail; `pip install -e .` falls back to `setup.py develop`
through this file.  The console script is declared here as well because
the legacy path does not read [project.scripts] from pyproject.toml."""
from setuptools import setup

setup(
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
