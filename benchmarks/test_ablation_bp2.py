"""Ablation: BREAKPOINTS2 baseline vs lazy-PQ efficient construction.

DESIGN.md calls out the lazy priority queue (paper Lemma 1) as the
piece that removes the O(r*m) reset term from the naive construction.
This bench quantifies it: the baseline's build time grows with r (it
recomputes every object's crossing at every breakpoint), while the
efficient build only touches objects that float to the top of the
heap.
"""

from __future__ import annotations

import time

import numpy as np

from repro.approximate import (
    build_breakpoints2,
    build_breakpoints2_baseline,
    epsilon_for_budget,
)
from repro.bench import print_table

from _bench_config import DEFAULT_R, meme_database


def test_lazy_pq_removes_reset_term(benchmark):
    # The reset term is O(r*m): it dominates when m is large relative
    # to the per-object segment count — the Meme regime (the paper's
    # Temp also has m=50k; our scaled Temp has too few objects for the
    # term to show).
    db = meme_database()
    rows = []
    for r in [max(8, DEFAULT_R // 2), DEFAULT_R * 2, DEFAULT_R * 8]:
        eps = epsilon_for_budget(db, r, tolerance=max(2, r // 10))
        t0 = time.perf_counter()
        baseline = build_breakpoints2_baseline(db, eps)
        t_baseline = time.perf_counter() - t0
        t0 = time.perf_counter()
        efficient = build_breakpoints2(db, eps)
        t_efficient = time.perf_counter() - t0
        assert np.allclose(baseline.times, efficient.times, atol=1e-6)
        rows.append(
            {
                "r": efficient.r,
                "baseline_s": t_baseline,
                "efficient_s": t_efficient,
                "speedup": t_baseline / max(t_efficient, 1e-9),
            }
        )
    print_table("Ablation: BREAKPOINTS2 baseline vs segment-driven build", rows)
    # The efficient build wins, and wins more as r grows (paper Fig
    # 11(b): B2-B grows linearly in r, B2-E stays flat).
    assert rows[-1]["speedup"] > 2.0
    assert rows[-1]["speedup"] >= rows[0]["speedup"]
    eps = epsilon_for_budget(db, DEFAULT_R, tolerance=4)
    benchmark(lambda: build_breakpoints2(db, eps))
