"""Figure 20: approximation quality on the bursty Meme dataset.

Paper: all approximate methods keep precision/recall >= ~0.9 and
ratios close to 1 even on this very bursty data; the BREAKPOINTS2
variants beat their -B basics at the same budget.
"""

from __future__ import annotations

import numpy as np

from repro.bench import (
    approximation_ratio,
    exact_reference,
    precision_recall,
    print_table,
)

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_R,
    make_approx_methods,
    meme_database,
    workload,
)


def test_fig20_meme_quality(benchmark):
    db = meme_database()
    queries = workload(db, k=DEFAULT_K)
    exact = exact_reference(db, queries)
    methods = [
        m.build(db)
        for m in make_approx_methods(
            kmax=DEFAULT_KMAX, r=DEFAULT_R, db_key="meme", include_basic=True
        )
    ]
    rows = []
    by_name = {}
    for method in methods:
        precisions, ratios = [], []
        for q, ref in zip(queries, exact):
            got = method.query(q)
            precisions.append(precision_recall(got, ref))
            ratios.append(approximation_ratio(got, db, q.t1, q.t2))
        row = {
            "method": method.name,
            "precision": float(np.mean(precisions)),
            "ratio": float(np.mean(ratios)),
        }
        rows.append(row)
        by_name[method.name] = row
    print_table("Figure 20: Meme dataset, approximation quality", rows)

    # High quality on bursty data for the strong variants.
    assert by_name["APPX1"]["precision"] >= 0.7
    assert by_name["APPX2+"]["precision"] >= 0.6
    assert 0.8 <= by_name["APPX1"]["ratio"] <= 1.2
    # NOTE: the paper additionally finds the B2 variants beat their -B
    # basics on the real Meme data; on our synthetic stand-in the two
    # are statistically close and B1 sometimes edges ahead at small r
    # (recorded as a deviation in EXPERIMENTS.md), so no ordering is
    # asserted here.  The Temp equivalent (where the ordering does
    # reproduce) is asserted in tests/test_approx_methods.py.
    assert by_name["APPX1-B"]["precision"] >= 0.7

    benchmark(lambda: methods[0].query(queries[0]))
