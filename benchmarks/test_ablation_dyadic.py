"""Ablation: dyadic candidate-set size vs the 2*k*log r worst case.

The paper notes |K| << 2*k*log r in practice, which is why APPX2+'s
verification IOs stay small.  This bench measures the actual candidate
pool sizes over the default workload.
"""

from __future__ import annotations

import numpy as np

from repro.approximate import Appx2
from repro.bench import print_table

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_R,
    shared_b2,
    temp_database,
    workload,
)


def test_candidate_pool_size(benchmark):
    db = temp_database()
    bp = shared_b2("temp", DEFAULT_R)
    method = Appx2(breakpoints=bp, kmax=DEFAULT_KMAX).build(db)
    rows = []
    for k in [max(2, DEFAULT_K // 2), DEFAULT_K, DEFAULT_K * 2]:
        queries = workload(db, k=k)
        sizes = [
            len(method.candidate_set(q)) for q in queries
        ]
        bound = 2 * k * np.ceil(np.log2(max(bp.r, 2)))
        rows.append(
            {
                "k": k,
                "avg_|K|": float(np.mean(sizes)),
                "max_|K|": int(np.max(sizes)),
                "bound_2k_log_r": int(bound),
                "utilization": float(np.mean(sizes)) / bound,
            }
        )
    print_table("Ablation: dyadic candidate-set size vs bound", rows)
    for row in rows:
        assert row["max_|K|"] <= row["bound_2k_log_r"] + row["k"]
        # The paper's observation: far below the bound.
        assert row["utilization"] < 1.0
    q = workload(db, k=DEFAULT_K, count=1)[0]
    benchmark(lambda: method.candidate_set(q))
