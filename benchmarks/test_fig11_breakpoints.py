"""Figure 11: preprocessing as the breakpoint budget r varies.

Panels (paper, Temp dataset):
  (a) achieved epsilon vs r for BREAKPOINTS1 and BREAKPOINTS2
      — B2's epsilon is orders of magnitude smaller for equal r.
  (b) breakpoint build time: B1 flat, B2-baseline grows with r,
      B2-efficient (lazy PQ) flat.
  (c) index size of APPX1-B/APPX2-B/APPX1/APPX2/APPX2+ vs EXACT3
      — APPX2 ~ r*kmax << APPX1 ~ r^2*kmax << EXACT3/APPX2+ ~ N.
  (d) build time — approximate methods build faster than EXACT3
      (APPX2 fastest, APPX1 grows with r).
"""

from __future__ import annotations

import time

import pytest

from repro.approximate import (
    build_breakpoints1,
    build_breakpoints2,
    build_breakpoints2_baseline,
    epsilon_for_budget,
)
from repro.bench import print_table
from repro.exact import Exact3

from _bench_config import (
    DEFAULT_KMAX,
    DEFAULT_R,
    make_approx_methods,
    temp_database,
)

R_VALUES = [max(8, DEFAULT_R // 4), DEFAULT_R // 2, DEFAULT_R, DEFAULT_R * 2]


def test_fig11a_epsilon_vs_r(benchmark):
    """Panel (a): epsilon achieved per breakpoint budget."""
    db = temp_database()
    rows = []
    for r in R_VALUES:
        eps1 = 1.0 / (r - 1)
        eps2 = epsilon_for_budget(db, r, tolerance=max(2, r // 20))
        rows.append(
            {
                "r": r,
                "eps_B1": eps1,
                "eps_B2": eps2,
                "B2_smaller_by": eps1 / eps2,
            }
        )
    print_table("Figure 11(a): epsilon vs r (Temp)", rows)
    # B2 always achieves a (much) smaller epsilon at equal budget.
    for row in rows:
        assert row["eps_B2"] < row["eps_B1"]
    benchmark(lambda: epsilon_for_budget(db, R_VALUES[0], tolerance=4))


def test_fig11b_breakpoint_build_time(benchmark):
    """Panel (b): construction time of B1, B2-baseline, B2-efficient.

    Measured on a many-objects Temp variant: the baseline's O(r*m)
    reset term (the quantity panel (b) isolates) only dominates when m
    is large relative to navg, as in the paper's m=50,000 testbed.
    """
    from _bench_config import DEFAULT_M, DEFAULT_NAVG

    db = temp_database(DEFAULT_M * 4, max(8, DEFAULT_NAVG // 4), seed=2)
    rows = []
    for r in R_VALUES:
        eps2 = epsilon_for_budget(db, r, tolerance=max(2, r // 20))
        t0 = time.perf_counter()
        build_breakpoints1(db, r=r)
        t_b1 = time.perf_counter() - t0
        t0 = time.perf_counter()
        build_breakpoints2_baseline(db, eps2)
        t_b2_baseline = time.perf_counter() - t0
        t0 = time.perf_counter()
        build_breakpoints2(db, eps2)
        t_b2_efficient = time.perf_counter() - t0
        rows.append(
            {
                "r": r,
                "B1_s": t_b1,
                "B2_baseline_s": t_b2_baseline,
                "B2_efficient_s": t_b2_efficient,
            }
        )
    print_table("Figure 11(b): breakpoint build time vs r (Temp)", rows)
    benchmark(lambda: build_breakpoints1(db, r=R_VALUES[0]))


@pytest.fixture(scope="module")
def built_lineups():
    """Approximate methods + EXACT3 built per r value (panels c, d)."""
    db = temp_database()
    lineup = {}
    for r in R_VALUES:
        methods = make_approx_methods(
            kmax=DEFAULT_KMAX, r=r, include_basic=True
        )
        for m in methods:
            m.build(db)
        lineup[r] = methods
    exact3 = Exact3().build(db)
    return db, lineup, exact3


def test_fig11c_index_size(built_lineups, benchmark):
    """Panel (c): index size vs r."""
    db, lineup, exact3 = built_lineups
    rows = []
    for r, methods in lineup.items():
        row = {"r": r}
        for m in methods:
            row[m.name] = m.index_size_bytes
        row["EXACT3"] = exact3.index_size_bytes
        rows.append(row)
    print_table("Figure 11(c): index size in bytes vs r (Temp)", rows)
    for row in rows:
        # Shape assertions from the paper: APPX2 < APPX1 <= EXACT3-scale,
        # APPX2+ carries the O(N) prefix data.
        assert row["APPX2"] < row["APPX1"]
        assert row["APPX2"] < row["EXACT3"]
        assert row["APPX2+"] > row["APPX2"]
    benchmark(lambda: lineup[R_VALUES[0]][0].index_size_bytes)


def test_fig11d_build_time(built_lineups, benchmark):
    """Panel (d): total build time (breakpoints + query structure)."""
    db, lineup, exact3 = built_lineups
    rows = []
    for r, methods in lineup.items():
        row = {"r": r}
        for m in methods:
            row[m.name + "_s"] = m.build_seconds
        row["EXACT3_s"] = exact3.build_seconds
        rows.append(row)
    print_table("Figure 11(d): build time vs r (Temp)", rows)
    benchmark(lambda: None)
