"""Ablation: distributed protocols' communication cost.

The paper's conclusion leaves the distributed setting open; DESIGN.md
commits this repo to two layouts.  This bench quantifies the
communication trade-off the threshold algorithm buys on the
time-partitioned layout, and the (trivially small) bill of the
object-partitioned layout.
"""

from __future__ import annotations


from repro.bench import print_table
from repro.distributed import ObjectPartitionedCluster, TimePartitionedCluster

from _bench_config import DEFAULT_K, DEFAULT_M, temp_database, workload


def test_distributed_communication(benchmark):
    db = temp_database(DEFAULT_M // 2, 40, seed=21)
    queries = workload(db, k=DEFAULT_K, count=4)
    rows = []
    for num_nodes in (2, 4, 8):
        obj_cluster = ObjectPartitionedCluster(db, num_nodes=num_nodes)
        time_cluster = TimePartitionedCluster(db, num_nodes=num_nodes)

        obj_cluster.comm.reset()
        for q in queries:
            obj_res = obj_cluster.query(q.t1, q.t2, q.k)
        obj_pairs = obj_cluster.comm.pairs / len(queries)

        time_cluster.comm.reset()
        for q in queries:
            sg_res = time_cluster.query_scatter_gather(q.t1, q.t2, q.k)
        sg_pairs = time_cluster.comm.pairs / len(queries)

        time_cluster.comm.reset()
        for q in queries:
            ta_res = time_cluster.query_threshold(q.t1, q.t2, q.k)
        ta_pairs = time_cluster.comm.pairs / len(queries)

        # All protocols agree with the centralized truth.
        ref = db.brute_force_top_k(queries[-1].t1, queries[-1].t2, queries[-1].k)
        assert obj_res.object_ids == ref.object_ids
        assert sg_res.object_ids == ref.object_ids
        assert ta_res.object_ids == ref.object_ids

        rows.append(
            {
                "nodes": num_nodes,
                "object_part_pairs": obj_pairs,
                "time_scatter_pairs": sg_pairs,
                "time_TA_pairs": ta_pairs,
            }
        )
    print_table("Ablation: distributed communication per query", rows)
    for row in rows:
        # Object partitioning ships p*k pairs; scatter-gather ships ~m
        # per touched node.
        assert row["object_part_pairs"] <= row["nodes"] * DEFAULT_K
        assert row["time_scatter_pairs"] > row["object_part_pairs"]

    cluster = ObjectPartitionedCluster(db, num_nodes=4)
    q = queries[0]
    benchmark(lambda: cluster.query(q.t1, q.t2, q.k))
