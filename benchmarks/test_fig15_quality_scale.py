"""Figure 15: approximation quality as m and navg vary (Temp).

Paper: APPX1 and APPX2+ keep precision/recall and ratio very close to
1 across the whole sweep; APPX2 stays at an acceptable level (its
precision dips as m/navg grow, but its near-1 ratio shows the missed
objects have nearly identical scores).
"""

from __future__ import annotations

from repro.bench import (
    approximation_ratio,
    exact_reference,
    precision_recall,
    print_table,
)

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_M,
    DEFAULT_NAVG,
    DEFAULT_R,
    approx_methods_for,
    temp_database,
    workload,
)


def _quality_rows(db, label, value):
    queries = workload(db, k=DEFAULT_K)
    exact = exact_reference(db, queries)
    row_p = {label: value, "metric": "precision"}
    row_r = {label: value, "metric": "ratio"}
    for method in approx_methods_for(db, r=DEFAULT_R, kmax=DEFAULT_KMAX):
        method.build(db)
        precisions, ratios = [], []
        for q, ref in zip(queries, exact):
            got = method.query(q)
            precisions.append(precision_recall(got, ref))
            ratios.append(approximation_ratio(got, db, q.t1, q.t2))
        row_p[method.name] = sum(precisions) / len(precisions)
        row_r[method.name] = sum(ratios) / len(ratios)
    return [row_p, row_r]


def test_fig15ab_quality_vs_m(benchmark):
    base = temp_database()
    rows = []
    for m in [max(25, DEFAULT_M // 4), DEFAULT_M // 2, DEFAULT_M]:
        db = base if m == DEFAULT_M else base.sample_objects(m, seed=m)
        rows += _quality_rows(db, "m", m)
    print_table("Figure 15(a,b): quality vs m (Temp)", rows)
    for row in rows:
        if row["metric"] == "ratio":
            assert 0.85 <= row["APPX1"] <= 1.15
            assert 0.9 <= row["APPX2+"] <= 1.1
    benchmark(lambda: None)


def test_fig15cd_quality_vs_navg(benchmark):
    rows = []
    for navg in [max(10, DEFAULT_NAVG // 4), DEFAULT_NAVG, DEFAULT_NAVG * 2]:
        db = temp_database(DEFAULT_M // 2, navg, seed=3)
        rows += _quality_rows(db, "navg", navg)
    print_table("Figure 15(c,d): quality vs navg (Temp)", rows)
    for row in rows:
        if row["metric"] == "ratio":
            assert 0.85 <= row["APPX1"] <= 1.15
    benchmark(lambda: None)
