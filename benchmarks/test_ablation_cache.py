"""Ablation: buffer pool (OS cache) effect on EXACT3 queries.

The paper attributes part of the wall-clock gap between methods to OS
caching (Section 5, discussion of Figure 17).  With an LRU pool,
repeated EXACT3 queries over overlapping intervals hit mostly cached
blocks; cold queries pay the full IO bill.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table
from repro.exact import Exact3

from _bench_config import DEFAULT_K, temp_database, workload


def test_cache_ablation(benchmark):
    db = temp_database()
    queries = workload(db, k=DEFAULT_K)

    cold = Exact3().build(db)
    cold_ios = [cold.measured_query(q, cold=True).ios for q in queries]

    warm = Exact3(cache_blocks=4096).build(db)
    # Prime the pool, then measure without dropping it.
    for q in queries:
        warm.query(q)
    warm_ios = []
    for q in queries:
        stats = warm.io_stats
        before = stats.snapshot()
        warm.query(q)
        delta = stats.snapshot() - before
        warm_ios.append(delta.reads + delta.writes)

    rows = [
        {"config": "cold (no pool)", "avg_query_ios": float(np.mean(cold_ios))},
        {"config": "warm (4096-block LRU)", "avg_query_ios": float(np.mean(warm_ios))},
    ]
    print_table("Ablation: EXACT3 buffer-pool effect", rows)
    assert np.mean(warm_ios) < np.mean(cold_ios)
    benchmark(lambda: cold.query(queries[0]))
