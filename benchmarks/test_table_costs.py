"""Figure 3 (the cost table): measured costs vs asymptotic bounds.

The paper's Figure 3 tabulates index size, construction, query, and
update costs for all five methods.  This bench validates the *growth*
of measured IOs against those bounds by comparing two dataset scales:

  EXACT1  query ~ log_B N + sum q_i/B   -> grows ~linearly with N
  EXACT2  query ~ sum_i log_B n_i (+ m file opens) -> grows with m
  EXACT3  query ~ log N + m/B           -> grows with m, not navg
  APPX1   query ~ k/B + log_B r         -> independent of N and m
  APPX2   query ~ k log r               -> independent of N and m
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table
from repro.core import TopKQuery
from repro.exact import Exact1, Exact2, Exact3

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_M,
    DEFAULT_NAVG,
    DEFAULT_R,
    approx_methods_for,
    temp_database,
    workload,
)


def _measure(db):
    queries = workload(db, k=DEFAULT_K, count=4)
    out = {}
    methods = [Exact1(), Exact2(), Exact3()] + approx_methods_for(
        db, r=DEFAULT_R, kmax=DEFAULT_KMAX
    )
    for method in methods:
        method.build(db)
        ios = float(np.mean([method.measured_query(q).ios for q in queries]))
        out[method.name] = {
            "size": method.index_size_bytes,
            "query_ios": ios,
        }
    return out


def test_cost_table_growth(benchmark):
    small = temp_database(DEFAULT_M // 2, DEFAULT_NAVG // 2, seed=5)
    large = temp_database(DEFAULT_M, DEFAULT_NAVG, seed=5)
    ratio_n = (large.total_segments / small.total_segments)

    measured_small = _measure(small)
    measured_large = _measure(large)
    rows = []
    for name in measured_small:
        rows.append(
            {
                "method": name,
                "size_growth": measured_large[name]["size"]
                / measured_small[name]["size"],
                "query_io_growth": measured_large[name]["query_ios"]
                / max(measured_small[name]["query_ios"], 1.0),
                "N_growth": ratio_n,
            }
        )
    print_table(
        "Figure 3 check: cost growth from (m/2, navg/2) to (m, navg)", rows
    )
    by_name = {r["method"]: r for r in rows}
    # Exact sizes are linear in N.
    for name in ("EXACT1", "EXACT2", "EXACT3"):
        assert 0.3 * ratio_n <= by_name[name]["size_growth"] <= 3 * ratio_n
    # EXACT1 query IO grows about linearly with N.
    assert by_name["EXACT1"]["query_io_growth"] >= ratio_n / 4
    # EXACT2 query grows with m (doubled) but much slower than N.
    assert 1.2 <= by_name["EXACT2"]["query_io_growth"] <= ratio_n
    # APPX1/APPX2 queries are scale-independent.
    assert by_name["APPX1"]["query_io_growth"] <= 2.5
    assert by_name["APPX2"]["query_io_growth"] <= 2.5

    method = Exact3().build(small)
    q = TopKQuery(small.t_min, small.t_min + 0.2 * (small.t_max - small.t_min), DEFAULT_K)
    benchmark(lambda: method.query(q))


def test_update_costs(benchmark):
    """Section 4 / Section 5 'Updates': per-append IO costs.

    EXACT1/EXACT3 ~ O(log_B N); EXACT2 ~ O(log_B n_i) (single small
    tree, cheapest); approximate methods amortize reconstruction.
    """
    from repro.datasets import generate_temp

    rows = []
    for cls in (Exact1, Exact2, Exact3):
        # Fresh database per method: appends mutate it.
        db = generate_temp(
            num_objects=DEFAULT_M // 4, avg_readings=DEFAULT_NAVG // 2, seed=9
        )
        method = cls().build(db)
        method.io_stats.reset()
        appends = 20
        db_end = db.t_max
        for i in range(appends):
            db_end += 1.0
            db.append_segment(0, db_end, 5.0)
            method.append(0, db_end, 5.0)
        rows.append(
            {
                "method": method.name,
                "ios_per_append": method.io_stats.total / appends,
            }
        )
    print_table("Update cost per appended segment", rows)
    by_name = {r["method"]: r for r in rows}
    # EXACT2 updates one tiny tree; cheapest per the paper.
    assert (
        by_name["EXACT2"]["ios_per_append"]
        <= by_name["EXACT1"]["ios_per_append"] + 2
    )
    benchmark(lambda: None)
