"""Figure 18: effect of the kmax budget on approximate structures (Temp).

Paper: kmax has no effect on exact methods; it linearly scales the
index size and construction cost of APPX1/APPX2 (their stored lists
hold kmax entries), yet both remain far smaller than exact indexes;
query cost at fixed k is unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table
from repro.exact import Exact3

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_R,
    make_approx_methods,
    temp_database,
    workload,
)

# A 4 KB block holds 256 (id, score) entries, so the paper's linear
# kmax -> size effect only becomes visible once lists span additional
# blocks; the sweep crosses that boundary.
KMAX_VALUES = [max(DEFAULT_K, DEFAULT_KMAX), 260, 390]


def test_fig18_vary_kmax(benchmark):
    db = temp_database()
    queries = workload(db, k=DEFAULT_K)
    exact3 = Exact3().build(db)
    rows_size, rows_build, rows_io, rows_time = [], [], [], []
    sizes = {}
    for kmax in KMAX_VALUES:
        methods = [
            m.build(db) for m in make_approx_methods(kmax=kmax, r=DEFAULT_R)
        ]
        row_size, row_build = {"kmax": kmax}, {"kmax": kmax}
        row_io, row_time = {"kmax": kmax}, {"kmax": kmax}
        for method in methods:
            costs = [method.measured_query(q) for q in queries]
            row_size[method.name] = method.index_size_bytes
            row_build[method.name + "_s"] = method.build_seconds
            row_io[method.name] = float(np.mean([c.ios for c in costs]))
            row_time[method.name + "_s"] = float(
                np.mean([c.seconds for c in costs])
            )
        row_size["EXACT3"] = exact3.index_size_bytes
        rows_size.append(row_size)
        rows_build.append(row_build)
        rows_io.append(row_io)
        rows_time.append(row_time)
        sizes[kmax] = row_size
    print_table("Figure 18(a): index size vs kmax (Temp)", rows_size)
    print_table("Figure 18(b): build time vs kmax (Temp)", rows_build)
    print_table("Figure 18(c): query IOs vs kmax (Temp)", rows_io)
    print_table("Figure 18(d): query time vs kmax (Temp)", rows_time)

    lo, mid, hi = KMAX_VALUES
    # Index sizes grow with kmax for APPX1/APPX2 (strictly once the
    # per-interval lists cross a block boundary)...
    assert sizes[mid]["APPX1"] > sizes[lo]["APPX1"]
    assert sizes[mid]["APPX2"] > sizes[lo]["APPX2"]
    assert sizes[hi]["APPX1"] >= sizes[mid]["APPX1"]
    # ...but APPX2 stays far below EXACT3 even at the largest budget.
    assert sizes[hi]["APPX2"] < sizes[hi]["EXACT3"]
    # Query IOs at fixed k unaffected by kmax.
    appx1 = [row["APPX1"] for row in rows_io]
    assert max(appx1) <= max(3 * min(appx1), min(appx1) + 6)

    method = make_approx_methods(kmax=KMAX_VALUES[0], r=DEFAULT_R)[1].build(db)
    benchmark(lambda: method.query(queries[0]))
