"""Shared configuration/helpers for the figure benchmarks.

The paper's testbed (C++/TPIE, N = 50M segments, m = 50,000) is far
beyond an in-process Python sweep, so all experiments run a scaled grid
(DESIGN.md §5).  The scale factor multiplies the dataset dimensions:

    REPRO_BENCH_SCALE=1   (default)  m=400,  navg=60,  N≈24k
    REPRO_BENCH_SCALE=4              m=1600, navg=240, N≈384k

Shapes (method orderings, growth trends, crossovers) are preserved; see
EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.approximate import (
    Appx1,
    Appx1B,
    Appx2,
    Appx2B,
    Appx2Plus,
    build_breakpoints2,
    epsilon_for_budget,
)
from repro.datasets import generate_meme, generate_temp, random_queries
from repro.exact import Exact1, Exact2, Exact3

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))

#: Scaled stand-ins for the paper's defaults (m=50k, navg=1000, r=500,
#: kmax=200, k=50, 100 queries).
DEFAULT_M = max(50, int(400 * SCALE))
DEFAULT_NAVG = max(20, int(60 * SCALE))
DEFAULT_R = max(16, int(40 * SCALE))
DEFAULT_KMAX = max(20, int(50 * SCALE))
DEFAULT_K = max(5, int(12 * SCALE))
DEFAULT_QUERIES = max(5, int(8 * SCALE))
DEFAULT_INTERVAL = 0.2


@lru_cache(maxsize=8)
def temp_database(m: int = DEFAULT_M, navg: int = DEFAULT_NAVG, seed: int = 0):
    """Cached Temp-like database (scaled MesoWest stand-in)."""
    return generate_temp(num_objects=m, avg_readings=navg, seed=seed)


@lru_cache(maxsize=2)
def meme_database(m: int = DEFAULT_M * 2, navg: int = 10, seed: int = 1):
    """Cached Meme-like database (bursty, many small objects)."""
    return generate_meme(num_objects=m, avg_records=navg, seed=seed)


@lru_cache(maxsize=16)
def shared_b2(db_key: str, r: int):
    """One BREAKPOINTS2 construction shared across methods of a sweep.

    ``db_key`` selects the cached database ("temp" or "meme"); using a
    string keeps lru_cache happy.
    """
    db = temp_database() if db_key == "temp" else meme_database()
    eps = epsilon_for_budget(db, r, tolerance=max(2, r // 20))
    return build_breakpoints2(db, eps)


def workload(db, k: int = DEFAULT_K, count: int = DEFAULT_QUERIES,
             interval: float = DEFAULT_INTERVAL, seed: int = 7):
    return random_queries(
        db, count=count, interval_fraction=interval, k=k, seed=seed
    )


def make_exact_methods():
    return [Exact1(), Exact2(), Exact3()]


def make_approx_methods(kmax: int = DEFAULT_KMAX, r: int = DEFAULT_R,
                        db_key: str = "temp", include_basic: bool = False):
    """The paper's default approximate lineup (Section 5 keeps APPX1,
    APPX2, APPX2+ after Figure 12; Figures 11-12 and 19-20 include the
    -B basics)."""
    bp2 = shared_b2(db_key, r)
    methods = []
    if include_basic:
        methods += [Appx1B(r=r, kmax=kmax), Appx2B(r=r, kmax=kmax)]
    methods += [
        Appx1(breakpoints=bp2, kmax=kmax),
        Appx2(breakpoints=bp2, kmax=kmax),
        Appx2Plus(breakpoints=bp2, kmax=kmax),
    ]
    return methods


def approx_methods_for(db, r: int = DEFAULT_R, kmax: int = DEFAULT_KMAX):
    """Per-database approximate lineup (for sweeps over m / navg where
    the cached shared_b2 would belong to the wrong database)."""
    eps = epsilon_for_budget(db, r, tolerance=max(2, r // 20))
    bp2 = build_breakpoints2(db, eps)
    return [
        Appx1(breakpoints=bp2, kmax=kmax),
        Appx2(breakpoints=bp2, kmax=kmax),
        Appx2Plus(breakpoints=bp2, kmax=kmax),
    ]


