"""Figure 12(c, d): query IOs and time as r varies (Temp).

Paper: APPX1/APPX1-B and APPX2/APPX2-B take a handful of IOs (6-8 in
the paper) regardless of r; APPX2+ takes ~100-150 IOs (candidate
verification); EXACT3 takes 1000+ — at least two orders of magnitude
above the small approximations.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table
from repro.exact import Exact3

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_R,
    make_approx_methods,
    temp_database,
    workload,
)

R_VALUES = [max(8, DEFAULT_R // 4), DEFAULT_R, DEFAULT_R * 2]


def test_fig12cd_query_cost_vs_r(benchmark):
    db = temp_database()
    queries = workload(db, k=DEFAULT_K)
    exact3 = Exact3().build(db)
    exact3_ios = np.mean([exact3.measured_query(q).ios for q in queries])
    exact3_time = np.mean([exact3.measured_query(q).seconds for q in queries])
    rows = []
    appx1_ios = {}
    for r in R_VALUES:
        methods = make_approx_methods(
            kmax=DEFAULT_KMAX, r=r, include_basic=True
        )
        row_io = {"r": r, "metric": "IOs"}
        row_t = {"r": r, "metric": "time_s"}
        for method in methods:
            method.build(db)
            costs = [method.measured_query(q) for q in queries]
            row_io[method.name] = float(np.mean([c.ios for c in costs]))
            row_t[method.name] = float(np.mean([c.seconds for c in costs]))
        row_io["EXACT3"] = float(exact3_ios)
        row_t["EXACT3"] = float(exact3_time)
        rows += [row_io, row_t]
        appx1_ios[r] = row_io["APPX1"]
    print_table("Figure 12(c,d): query IOs & time vs r (Temp)", rows)
    from repro.bench.ascii_plot import print_chart

    io_rows = [row for row in rows if row["metric"] == "IOs"]
    print_chart(
        "Figure 12(c) as a chart: query IOs vs r (log y)",
        [row["r"] for row in io_rows],
        {
            name: [row[name] for row in io_rows]
            for name in ("APPX1", "APPX2", "APPX2+", "EXACT3")
        },
    )

    for row in rows:
        if row["metric"] != "IOs":
            continue
        # Paper shape: small approximations beat EXACT3 by a lot;
        # APPX2+ sits between.
        assert row["APPX1"] < row["EXACT3"] / 5
        assert row["APPX2"] < row["EXACT3"]
        assert row["APPX1"] <= row["APPX2+"]
    # APPX1 query IO roughly flat in r.
    ios = list(appx1_ios.values())
    assert max(ios) <= max(4 * min(ios), min(ios) + 8)

    method = make_approx_methods(kmax=DEFAULT_KMAX, r=DEFAULT_R)[0].build(db)
    benchmark(lambda: method.measured_query(queries[0]))
