"""Pytest fixtures for the benchmarks (helpers in _bench_config)."""

import pytest

from _bench_config import meme_database, temp_database


@pytest.fixture(scope="session")
def default_temp_db():
    return temp_database()


@pytest.fixture(scope="session")
def default_meme_db():
    return meme_database()
