"""Figure 13: scalability in the number of objects m (Temp).

Paper: all exact methods are linear-size; EXACT3 is the best exact
query method (its query cost grows linearly with m but stays 2-3
orders below EXACT1/EXACT2); approximate methods' query cost is
independent of m and beats EXACT3 throughout.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table
from repro.exact import Exact1, Exact2, Exact3

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_M,
    DEFAULT_R,
    approx_methods_for,
    temp_database,
    workload,
)

M_VALUES = [max(25, DEFAULT_M // 4), DEFAULT_M // 2, DEFAULT_M]


def test_fig13_vary_m(benchmark):
    base = temp_database()
    rows_size, rows_build, rows_io, rows_time = [], [], [], []
    per_m_io = {}
    for m in M_VALUES:
        db = base if m == DEFAULT_M else base.sample_objects(m, seed=m)
        queries = workload(db, k=DEFAULT_K)
        methods = [Exact1(), Exact2(), Exact3()] + approx_methods_for(
            db, r=DEFAULT_R, kmax=DEFAULT_KMAX
        )
        row_size, row_build = {"m": m}, {"m": m}
        row_io, row_time = {"m": m}, {"m": m}
        for method in methods:
            method.build(db)
            costs = [method.measured_query(q) for q in queries]
            row_size[method.name] = method.index_size_bytes
            row_build[method.name + "_s"] = method.build_seconds
            row_io[method.name] = float(np.mean([c.ios for c in costs]))
            row_time[method.name + "_s"] = float(
                np.mean([c.seconds for c in costs])
            )
        rows_size.append(row_size)
        rows_build.append(row_build)
        rows_io.append(row_io)
        rows_time.append(row_time)
        per_m_io[m] = row_io
    print_table("Figure 13(a): index size vs m (Temp)", rows_size)
    print_table("Figure 13(b): build time vs m (Temp)", rows_build)
    print_table("Figure 13(c): query IOs vs m (Temp)", rows_io)
    print_table("Figure 13(d): query time vs m (Temp)", rows_time)
    from repro.bench.ascii_plot import print_chart

    print_chart(
        "Figure 13(c) as a chart: query IOs vs m (log y)",
        M_VALUES,
        {
            name: [per_m_io[m][name] for m in M_VALUES]
            for name in ("EXACT1", "EXACT2", "EXACT3", "APPX1", "APPX2")
        },
    )

    for row in rows_io:
        # EXACT3 is the best exact method at query time.  Its win over
        # EXACT1 widens with m (paper: 2-3 orders at m=50k); at the
        # smallest scaled m the two are within noise of each other, so
        # the strict ordering is asserted at the default m only.
        if row["m"] == M_VALUES[-1]:
            assert row["EXACT3"] <= row["EXACT1"]
        else:
            assert row["EXACT3"] <= row["EXACT1"] * 1.5
        assert row["EXACT3"] <= row["EXACT2"]
        # Approximations beat the best exact method.
        assert row["APPX1"] < row["EXACT3"]
        assert row["APPX2"] < row["EXACT3"]
    # APPX1's IO is independent of m.
    appx1 = [per_m_io[m]["APPX1"] for m in M_VALUES]
    assert max(appx1) <= max(3 * min(appx1), min(appx1) + 6)
    # EXACT2/EXACT3 query IO grows with m.
    assert per_m_io[M_VALUES[-1]]["EXACT2"] > per_m_io[M_VALUES[0]]["EXACT2"]

    db = base.sample_objects(M_VALUES[0], seed=M_VALUES[0])
    method = Exact3().build(db)
    q = workload(db, k=DEFAULT_K, count=1)[0]
    benchmark(lambda: method.query(q))
