"""Figure 19: all eight methods on the bursty Meme dataset.

Paper: the three exact indexes (and APPX2+) have comparable linear
sizes while the other approximate methods are 3-5 orders smaller;
approximate methods beat every exact method by orders of magnitude in
query IOs and time; EXACT3 remains the best exact method for queries.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table
from repro.exact import Exact1, Exact2, Exact3

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_R,
    make_approx_methods,
    meme_database,
    workload,
)


def test_fig19_meme_all_methods(benchmark):
    db = meme_database()
    queries = workload(db, k=DEFAULT_K)
    methods = [Exact1(), Exact2(), Exact3()] + make_approx_methods(
        kmax=DEFAULT_KMAX, r=DEFAULT_R, db_key="meme", include_basic=True
    )
    rows = []
    by_name = {}
    for method in methods:
        method.build(db)
        costs = [method.measured_query(q) for q in queries]
        row = {
            "method": method.name,
            "size_bytes": method.index_size_bytes,
            "build_s": method.build_seconds,
            "query_ios": float(np.mean([c.ios for c in costs])),
            "query_s": float(np.mean([c.seconds for c in costs])),
        }
        rows.append(row)
        by_name[method.name] = row
    print_table("Figure 19: Meme dataset, all methods", rows)

    # EXACT3 best exact method on queries.
    assert by_name["EXACT3"]["query_ios"] <= by_name["EXACT1"]["query_ios"]
    assert by_name["EXACT3"]["query_ios"] <= by_name["EXACT2"]["query_ios"]
    # Small approximate structures much smaller than exact ones.  The
    # paper's 3-5 orders of magnitude come from N=100M vs r*kmax; at
    # the scaled N the gap is a factor, growing with REPRO_BENCH_SCALE.
    assert by_name["APPX2"]["size_bytes"] < by_name["EXACT3"]["size_bytes"] / 3
    # Approximate methods beat all exact methods in query IOs.
    for appx in ("APPX1-B", "APPX2-B", "APPX1", "APPX2"):
        assert by_name[appx]["query_ios"] < by_name["EXACT3"]["query_ios"]

    q = queries[0]
    method = by_name and methods[2]
    benchmark(lambda: method.query(q))
