"""Figure 12(a, b): approximation quality as r varies (Temp).

Paper: precision/recall above 0.9 for every method even at the
smallest r; APPX1 and APPX2+ close to 1 throughout; approximation
ratios within a few percent of 1 (APPX2/APPX2-B slightly below 1
because dyadic scores are lower bounds); methods on BREAKPOINTS2
beat their -B basics at equal r.
"""

from __future__ import annotations

from repro.bench import (
    approximation_ratio,
    exact_reference,
    precision_recall,
    print_table,
)

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_R,
    make_approx_methods,
    temp_database,
    workload,
)

R_VALUES = [max(8, DEFAULT_R // 4), DEFAULT_R, DEFAULT_R * 2]


def test_fig12ab_quality_vs_r(benchmark):
    db = temp_database()
    queries = workload(db, k=DEFAULT_K)
    exact = exact_reference(db, queries)
    rows = []
    for r in R_VALUES:
        methods = make_approx_methods(
            kmax=DEFAULT_KMAX, r=r, include_basic=True
        )
        row_p = {"r": r, "metric": "precision"}
        row_q = {"r": r, "metric": "ratio"}
        for method in methods:
            method.build(db)
            precisions, ratios = [], []
            for q, ref in zip(queries, exact):
                got = method.query(q)
                precisions.append(precision_recall(got, ref))
                ratios.append(approximation_ratio(got, db, q.t1, q.t2))
            row_p[method.name] = sum(precisions) / len(precisions)
            row_q[method.name] = sum(ratios) / len(ratios)
        rows += [row_p, row_q]
    print_table("Figure 12(a,b): precision/recall & ratio vs r (Temp)", rows)
    # Shape: APPX1 and APPX2+ stay near-perfect at the default budget.
    default_rows = [r for r in rows if r["r"] == DEFAULT_R]
    for row in default_rows:
        if row["metric"] == "precision":
            assert row["APPX1"] >= 0.85
            assert row["APPX2+"] >= 0.8
        else:
            assert 0.9 <= row["APPX1"] <= 1.1
            assert 0.95 <= row["APPX2+"] <= 1.05

    # One representative quality evaluation for pytest-benchmark.
    method = make_approx_methods(kmax=DEFAULT_KMAX, r=DEFAULT_R)[0].build(db)
    q = queries[0]
    benchmark(lambda: method.query(q))
