"""Figure 14: scalability in the average segments per object (Temp).

Paper: index sizes and build times of exact methods grow linearly in
navg; EXACT3's query cost is "not clearly affected by navg"; the
approximate methods' query cost is independent of navg (APPX2+ only
logarithmically dependent).
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table
from repro.exact import Exact1, Exact2, Exact3

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_M,
    DEFAULT_NAVG,
    DEFAULT_R,
    approx_methods_for,
    temp_database,
    workload,
)

NAVG_VALUES = [max(10, DEFAULT_NAVG // 4), DEFAULT_NAVG, DEFAULT_NAVG * 2]


def test_fig14_vary_navg(benchmark):
    rows_size, rows_build, rows_io, rows_time = [], [], [], []
    per_navg = {}
    for navg in NAVG_VALUES:
        db = temp_database(DEFAULT_M // 2, navg, seed=3)
        queries = workload(db, k=DEFAULT_K)
        methods = [Exact1(), Exact2(), Exact3()] + approx_methods_for(
            db, r=DEFAULT_R, kmax=DEFAULT_KMAX
        )
        row_size, row_build = {"navg": navg}, {"navg": navg}
        row_io, row_time = {"navg": navg}, {"navg": navg}
        for method in methods:
            method.build(db)
            costs = [method.measured_query(q) for q in queries]
            row_size[method.name] = method.index_size_bytes
            row_build[method.name + "_s"] = method.build_seconds
            row_io[method.name] = float(np.mean([c.ios for c in costs]))
            row_time[method.name + "_s"] = float(
                np.mean([c.seconds for c in costs])
            )
        rows_size.append(row_size)
        rows_build.append(row_build)
        rows_io.append(row_io)
        rows_time.append(row_time)
        per_navg[navg] = (row_size, row_io)
    print_table("Figure 14(a): index size vs navg (Temp)", rows_size)
    print_table("Figure 14(b): build time vs navg (Temp)", rows_build)
    print_table("Figure 14(c): query IOs vs navg (Temp)", rows_io)
    print_table("Figure 14(d): query time vs navg (Temp)", rows_time)

    # Exact index sizes grow with navg (linear in N).
    lo, hi = NAVG_VALUES[0], NAVG_VALUES[-1]
    for name in ("EXACT1", "EXACT2", "EXACT3"):
        assert per_navg[hi][0][name] > per_navg[lo][0][name]
    # EXACT1 query IO grows with navg; APPX1 stays flat.
    assert per_navg[hi][1]["EXACT1"] > per_navg[lo][1]["EXACT1"]
    appx1 = [per_navg[v][1]["APPX1"] for v in NAVG_VALUES]
    assert max(appx1) <= max(3 * min(appx1), min(appx1) + 6)

    db = temp_database(DEFAULT_M // 2, NAVG_VALUES[0], seed=3)
    method = Exact1().build(db)
    q = workload(db, k=DEFAULT_K, count=1)[0]
    benchmark(lambda: method.query(q))
