"""Figure 16: effect of the query interval length (t2 - t1) (Temp).

Paper: EXACT1's IOs/time grow linearly with the interval (it scans
more segments) and it loses to EXACT3 even at 2% of T; every other
method is flat.  Quality: APPX1/APPX2+ stay near-perfect; APPX2's
precision declines slightly with longer intervals (more dyadic pieces
-> more chances a candidate misses some piece's top list), visible as
a ratio slightly below 1.
"""

from __future__ import annotations

import numpy as np

from repro.bench import (
    approximation_ratio,
    exact_reference,
    precision_recall,
    print_table,
)
from repro.exact import Exact1, Exact2, Exact3

from _bench_config import (
    DEFAULT_K,
    DEFAULT_KMAX,
    DEFAULT_R,
    make_approx_methods,
    temp_database,
    workload,
)

FRACTIONS = [0.02, 0.1, 0.2, 0.5]


def test_fig16_interval_length(benchmark):
    db = temp_database()
    exact_methods = [Exact1().build(db), Exact2().build(db), Exact3().build(db)]
    approx_methods = [
        m.build(db) for m in make_approx_methods(kmax=DEFAULT_KMAX, r=DEFAULT_R)
    ]
    rows_io, rows_time, rows_q = [], [], []
    exact1_io = {}
    for fraction in FRACTIONS:
        queries = workload(db, k=DEFAULT_K, interval=fraction)
        exact = exact_reference(db, queries)
        row_io = {"pct_T": int(fraction * 100)}
        row_time = {"pct_T": int(fraction * 100)}
        for method in exact_methods + approx_methods:
            costs = [method.measured_query(q) for q in queries]
            row_io[method.name] = float(np.mean([c.ios for c in costs]))
            row_time[method.name + "_s"] = float(
                np.mean([c.seconds for c in costs])
            )
        row_p = {"pct_T": int(fraction * 100), "metric": "precision"}
        row_r = {"pct_T": int(fraction * 100), "metric": "ratio"}
        for method in approx_methods:
            precisions, ratios = [], []
            for q, ref in zip(queries, exact):
                got = method.query(q)
                precisions.append(precision_recall(got, ref))
                ratios.append(approximation_ratio(got, db, q.t1, q.t2))
            row_p[method.name] = float(np.mean(precisions))
            row_r[method.name] = float(np.mean(ratios))
        rows_io.append(row_io)
        rows_time.append(row_time)
        rows_q += [row_p, row_r]
        exact1_io[fraction] = row_io["EXACT1"]
    print_table("Figure 16(a): query IOs vs interval length (Temp)", rows_io)
    print_table("Figure 16(b): query time vs interval length (Temp)", rows_time)
    print_table("Figure 16(c,d): quality vs interval length (Temp)", rows_q)

    # EXACT1 grows ~linearly with the interval (at the scaled n_avg a
    # one-gap straddler scan-back is part of every query, so the 25x
    # interval growth shows as >4x IO growth; see EXPERIMENTS.md).
    assert exact1_io[0.5] > exact1_io[0.02] * 4
    # Even at 2%T EXACT1 is not better than EXACT3 by much, and loses
    # clearly at 50%T.
    assert rows_io[-1]["EXACT1"] > rows_io[-1]["EXACT3"]
    # Approximations flat and below EXACT3 everywhere.
    for row in rows_io:
        assert row["APPX1"] < row["EXACT3"]

    q = workload(db, k=DEFAULT_K, interval=0.02, count=1)[0]
    method = exact_methods[0]
    benchmark(lambda: method.query(q))
