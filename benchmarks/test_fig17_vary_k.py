"""Figure 17: effect of k (up to kmax) on query cost and quality (Temp).

Paper: most methods are insensitive to k; APPX2 and APPX2+ grow with k
(candidate set has up to 2*k*log r entries) but remain far below the
best exact method; no trending quality change with k.
"""

from __future__ import annotations

import numpy as np

from repro.bench import (
    approximation_ratio,
    exact_reference,
    precision_recall,
    print_table,
)
from repro.exact import Exact3

from _bench_config import (
    DEFAULT_KMAX,
    DEFAULT_R,
    make_approx_methods,
    temp_database,
    workload,
)


def test_fig17_vary_k(benchmark):
    db = temp_database()
    k_values = [
        max(2, DEFAULT_KMAX // 10),
        DEFAULT_KMAX // 4,
        DEFAULT_KMAX // 2,
        DEFAULT_KMAX,
    ]
    exact3 = Exact3().build(db)
    approx = [
        m.build(db) for m in make_approx_methods(kmax=DEFAULT_KMAX, r=DEFAULT_R)
    ]
    rows_io, rows_time, rows_q = [], [], []
    appx2p_io = {}
    for k in k_values:
        queries = workload(db, k=k)
        exact = exact_reference(db, queries)
        row_io, row_time = {"k": k}, {"k": k}
        for method in [exact3] + approx:
            costs = [method.measured_query(q) for q in queries]
            row_io[method.name] = float(np.mean([c.ios for c in costs]))
            row_time[method.name + "_s"] = float(
                np.mean([c.seconds for c in costs])
            )
        row_p = {"k": k, "metric": "precision"}
        row_r = {"k": k, "metric": "ratio"}
        for method in approx:
            precisions, ratios = [], []
            for q, ref in zip(queries, exact):
                got = method.query(q)
                precisions.append(precision_recall(got, ref))
                ratios.append(approximation_ratio(got, db, q.t1, q.t2))
            row_p[method.name] = float(np.mean(precisions))
            row_r[method.name] = float(np.mean(ratios))
        rows_io.append(row_io)
        rows_time.append(row_time)
        rows_q += [row_p, row_r]
        appx2p_io[k] = row_io["APPX2+"]
    print_table("Figure 17(a): query IOs vs k (Temp)", rows_io)
    print_table("Figure 17(b): query time vs k (Temp)", rows_time)
    print_table("Figure 17(c,d): quality vs k (Temp)", rows_q)

    # APPX2+ IO grows with k; at the paper's m=50k it stays well below
    # EXACT3, but EXACT3's m/B term shrinks with our scaled m, so the
    # crossover moves: assert the strict ordering at moderate k and a
    # loose factor at k = kmax (see EXPERIMENTS.md).
    assert appx2p_io[k_values[-1]] >= appx2p_io[k_values[0]]
    for row in rows_io:
        # At the paper's m=50k, EXACT3's m/B term dwarfs APPX2+'s
        # k*log(r) verification at every k; at scaled m the crossover
        # moves into the sweep, so the comparison is asserted only at
        # small-to-moderate k (see EXPERIMENTS.md).
        if row["k"] <= k_values[1]:
            assert row["APPX2+"] < row["EXACT3"] * 3
        assert row["APPX1"] < row["EXACT3"]
        assert row["APPX2"] < row["EXACT3"]

    q = workload(db, k=k_values[0], count=1)[0]
    method = approx[0]
    benchmark(lambda: method.query(q))
