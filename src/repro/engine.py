"""A high-level engine bundling every ranking semantics in one object.

The individual method classes mirror the paper; a downstream
application usually wants one handle that answers

* aggregate top-k (exact or approximate, sum/avg),
* instant top-k (``top-k(t)``),
* quantile top-k (holistic), and
* append-style updates routed to every live index,

without re-deriving which index to build.  :class:`TemporalRankingEngine`
is that handle: it builds EXACT3 eagerly (the paper's best exact
method), an approximate index lazily on the first approximate query,
and an instant engine lazily on the first instant query.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import InvalidQueryError
from repro.core.queries import TopKQuery, workload_arrays
from repro.core.results import TopKResult
from repro.datasets.workload import WorkloadBatch
from repro.exact.exact3 import Exact3
from repro.approximate.methods import Appx2Plus
from repro.holistic.quantile import QuantileRanker
from repro.instant.engine import InstantIntervalTree


class TemporalRankingEngine:
    """One-stop aggregate/instant/quantile ranking over a database.

    Parameters
    ----------
    database:
        The temporal database to index.
    epsilon:
        Error budget for the approximate index (APPX2+ by default:
        tiny candidate structure, exact returned scores).
    kmax:
        Largest ``k`` approximate queries may use.
    """

    def __init__(
        self,
        database: TemporalDatabase,
        epsilon: float = 1e-4,
        kmax: int = 50,
    ) -> None:
        self.database = database
        self.epsilon = epsilon
        self.kmax = kmax
        self.exact = Exact3().build(database)
        self._approximate: Optional[Appx2Plus] = None
        self._instant: Optional[InstantIntervalTree] = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def top_k(
        self, t1: float, t2: float, k: int, approximate: bool = False
    ) -> TopKResult:
        """Aggregate ``top-k(t1, t2, sum)``.

        ``approximate=True`` uses APPX2+ (built lazily on first use):
        candidate selection from the tiny dyadic structure, scores
        re-computed exactly.
        """
        query = TopKQuery(t1, t2, k)
        if not approximate:
            return self.exact.query(query)
        if k > self.kmax:
            raise InvalidQueryError(
                f"approximate queries support k <= kmax ({self.kmax})"
            )
        if self._approximate is None:
            self._approximate = Appx2Plus(
                epsilon=self.epsilon, kmax=self.kmax
            ).build(self.database)
        return self._approximate.query(query)

    def top_k_many(
        self,
        queries,
        approximate: bool = False,
        executor=None,
    ) -> List[TopKResult]:
        """Batched :meth:`top_k`: answer a whole workload at once.

        ``queries`` is anything :func:`repro.core.queries.
        workload_arrays` accepts — a sampled
        :class:`~repro.datasets.workload.WorkloadBatch`, a ``(q, 3)``
        array of ``(t1, t2, k)`` rows, or a list of
        :class:`TopKQuery`.  Answers (scores, tie-breaks, IO charges)
        are identical to looping :meth:`top_k`, but the workload is
        served through the vectorized ``query_many`` pipelines.

        ``executor`` (a :class:`repro.parallel.ParallelExecutor`)
        optionally fans exact-path query chunks across workers —
        serial, thread, and process backends are answer-identical.
        """
        # Normalize once; the array-attribute batch is forwarded
        # as-is (no float round-trip of ks, no (q, 3) copy).
        batch = WorkloadBatch(*workload_arrays(queries))
        if not approximate:
            return self.exact.query_many(batch, executor=executor)
        if len(batch) and int(batch.ks.max()) > self.kmax:
            raise InvalidQueryError(
                f"approximate queries support k <= kmax ({self.kmax})"
            )
        if self._approximate is None:
            self._approximate = Appx2Plus(
                epsilon=self.epsilon, kmax=self.kmax
            ).build(self.database)
        return self._approximate.query_many(batch, executor=executor)

    def instant_top_k(self, t: float, k: int) -> TopKResult:
        """Instant ``top-k(t)`` (scores at one time instance)."""
        if self._instant is None:
            self._instant = InstantIntervalTree().build(self.database)
        return self._instant.query(t, k)

    def instant_top_k_many(self, ts, ks) -> List[TopKResult]:
        """Batched :meth:`instant_top_k` over ``(ts, ks)`` arrays."""
        if self._instant is None:
            self._instant = InstantIntervalTree().build(self.database)
        return self._instant.query_many(
            np.asarray(ts, dtype=np.float64), np.asarray(ks, dtype=np.int64)
        )

    def prepare(
        self, approximate: bool = False, instant: bool = False
    ) -> int:
        """Eagerly build the requested lazy indexes; returns how many
        were built *by this call* (already-built indexes count zero).

        The serving pool calls this before snapshotting so every index
        its backend serves is recorded in the catalog (worker mounts
        then replay the recorded builds instead of paying a cold build
        on the first flush), and again worker-side so a mount is
        always query-ready.
        """
        built = 0
        if approximate and self._approximate is None:
            self._approximate = Appx2Plus(
                epsilon=self.epsilon, kmax=self.kmax
            ).build(self.database)
            built += 1
        if instant and self._instant is None:
            self._instant = InstantIntervalTree().build(self.database)
            built += 1
        return built

    def quantile_top_k(
        self, t1: float, t2: float, k: int, phi: float = 0.5
    ) -> TopKResult:
        """Holistic ranking by the phi-quantile of the score."""
        return QuantileRanker(self.database, phi=phi).query(t1, t2, k)

    # ------------------------------------------------------------------
    # scale-out
    # ------------------------------------------------------------------
    def cluster(
        self,
        num_nodes: int,
        partition: str = "object",
        method_factory=None,
        executor=None,
        replicas: int = 1,
        fault_plan=None,
        retry_policy=None,
        allow_partial: bool = True,
    ):
        """A partitioned serving cluster over this engine's database.

        ``partition="object"`` hash-splits the objects (each node
        holds complete score functions; exact merges ship ``p * k``
        pairs); ``partition="time"`` slices the time domain (each
        node holds every object's restriction; scatter-gather or
        threshold protocols combine partials).  Both clusters answer
        whole workloads through ``query_many`` with answers, IO
        charges, and comm bytes bit-identical to their scalar
        protocols.  ``method_factory`` (object partitions) picks the
        per-node index — default EXACT3; ``executor`` fans the
        per-node index builds through one parallel session.
        """
        from repro.distributed import (
            ObjectPartitionedCluster,
            TimePartitionedCluster,
        )

        if partition == "object":
            return ObjectPartitionedCluster(
                self.database,
                num_nodes,
                method_factory=method_factory,
                executor=executor,
                replicas=replicas,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
                allow_partial=allow_partial,
            )
        if partition == "time":
            return TimePartitionedCluster(
                self.database,
                num_nodes,
                executor=executor,
                replicas=replicas,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
                allow_partial=allow_partial,
            )
        raise InvalidQueryError(
            f"unknown partition {partition!r}; choose object or time"
        )

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def snapshot(self, path) -> "TemporalRankingEngine":
        """Write a durable snapshot of this engine to directory ``path``.

        The snapshot holds the kernel arrays as mmap-able segments,
        every *built* index (EXACT3 always; APPX2+ and the instant
        engine if they have been used) with its block payloads, and a
        WAL-mode SQLite catalog tying them together.  Reopen with
        :meth:`open` (or ``repro.open``): mounting is zero-copy and
        performs no index builds, and the mounted engine answers every
        query bit-identically — scores, tie-breaks, and IO charges.
        """
        from repro.storage.snapshot import snapshot_engine

        snapshot_engine(self, path)
        return self

    @classmethod
    def open(cls, path, verify: bool = True) -> "TemporalRankingEngine":
        """Mount an engine snapshot written by :meth:`snapshot`."""
        from repro.storage.snapshot import open_engine

        return open_engine(path, verify=verify)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def append(self, object_id: int, t_next: float, v_next: float) -> None:
        """Append a segment and maintain every live index."""
        self.database.append_segment(object_id, t_next, v_next)
        self.exact.append(object_id, t_next, v_next)
        if self._approximate is not None:
            self._approximate.append(object_id, t_next, v_next)
        if self._instant is not None:
            # The instant engine is static; rebuild lazily on next use.
            self._instant = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The database's append epoch (serving-cache invalidation key).

        Every :meth:`append` bumps it; between equal epochs the engine
        answers any fixed query identically, so the serving tier may
        cache results keyed on ``(query, epoch)``.
        """
        return self.database.epoch

    @property
    def index_size_bytes(self) -> int:
        """Combined footprint of every built index."""
        total = self.exact.index_size_bytes
        if self._approximate is not None:
            total += self._approximate.index_size_bytes
        if self._instant is not None:
            total += self._instant.index_size_bytes
        return total

    def __repr__(self) -> str:
        built = ["exact3"]
        if self._approximate is not None:
            built.append("appx2+")
        if self._instant is not None:
            built.append("instant")
        return (
            f"TemporalRankingEngine(m={self.database.num_objects}, "
            f"indexes={'+'.join(built)})"
        )
