"""Command-line interface: generate data, build indexes, run queries.

Mirrors the workflow of the paper's experimental driver::

    repro generate temp --objects 500 --readings 80 -o temp.db
    repro build temp.db --method exact3 -o temp.exact3.idx
    repro query temp.exact3.idx --t1 1e5 --t2 3e5 -k 10
    repro compare temp.db --k 10            # all methods side by side
    repro info temp.exact3.idx

Also exposed as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.approximate import APPROXIMATE_METHODS
from repro.bench import evaluate_method, exact_reference, format_table
from repro.core import TopKQuery
from repro.core.database import TemporalDatabase
from repro.datasets import (
    generate_meme,
    generate_temp,
    random_queries,
    sample_workload,
)
from repro.exact import Exact1, Exact2, Exact3
from repro.parallel import BACKENDS, get_executor
from repro.storage.persistence import read_payload, write_payload

_EXACT_METHODS = {"exact1": Exact1, "exact2": Exact2, "exact3": Exact3}


def _resolve_executor(args: argparse.Namespace):
    """The build executor the flags ask for (None: environment default).

    ``--workers N`` alone implies the process backend — otherwise the
    worker count would be silently discarded by the serial default.
    """
    if args.executor is None and args.workers is None:
        return None
    backend = args.executor
    if backend is None and args.workers is not None and args.workers > 1:
        backend = "process"
    return get_executor(backend, args.workers)


def _make_method(name: str, epsilon: float, kmax: int, executor=None):
    lower = name.lower()
    if lower in _EXACT_METHODS:
        return _EXACT_METHODS[lower]()
    upper = name.upper().replace("PLUS", "+")
    if upper in APPROXIMATE_METHODS:
        return APPROXIMATE_METHODS[upper](
            epsilon=epsilon, kmax=kmax, executor=executor
        )
    valid = sorted(_EXACT_METHODS) + sorted(APPROXIMATE_METHODS)
    raise SystemExit(f"unknown method {name!r}; choose from {valid}")


def cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "temp":
        db = generate_temp(
            num_objects=args.objects, avg_readings=args.readings, seed=args.seed
        )
    else:
        db = generate_meme(
            num_objects=args.objects, avg_records=args.readings, seed=args.seed
        )
    written = write_payload(args.output, db)
    print(f"wrote {db} to {args.output} ({written / 1e6:.1f} MB)")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    db = read_payload(args.database)
    if not isinstance(db, TemporalDatabase):
        raise SystemExit(f"{args.database} does not contain a database")
    method = _make_method(
        args.method, args.epsilon, args.kmax, _resolve_executor(args)
    )
    method.build(db)
    written = write_payload(args.output, method)
    print(
        f"built {method.name}: {method.index_size_bytes / 1e6:.2f} MB index, "
        f"{method.build_seconds:.2f}s; saved to {args.output} "
        f"({written / 1e6:.1f} MB)"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    method = read_payload(args.index)
    query = TopKQuery(args.t1, args.t2, args.k)
    cost = method.measured_query(query)
    print(f"{method.name} top-{args.k}({args.t1:g}, {args.t2:g}, sum):")
    for rank, item in enumerate(cost.result, start=1):
        print(f"  {rank:3d}. object {item.object_id:<8d} score {item.score:.6g}")
    print(f"cost: {cost.ios} IOs, {cost.seconds * 1e3:.2f} ms")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    db = read_payload(args.database)
    queries = random_queries(
        db, count=args.queries, interval_fraction=args.interval, k=args.k,
        seed=args.seed,
    )
    exact = exact_reference(db, queries)
    rows = []
    executor = _resolve_executor(args)
    methods = [Exact1(), Exact2(), Exact3()]
    for name in ("APPX1", "APPX2", "APPX2+"):
        methods.append(
            APPROXIMATE_METHODS[name](
                epsilon=args.epsilon, kmax=args.kmax, executor=executor
            )
        )
    for method in methods:
        report = evaluate_method(
            method, db, queries, exact, measure_quality=True
        )
        rows.append(report.row())
    print(format_table(f"all methods on {args.database}", rows))
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    """Serve a sampled batch through ``query_many`` (and verify it)."""
    import time

    method = read_payload(args.index)
    if not hasattr(method, "query_many"):
        raise SystemExit(f"{args.index} does not contain a ranking index")
    database = method.database
    batch = sample_workload(
        database, count=args.count, kmax=args.kmax, seed=args.seed
    )
    executor = _resolve_executor(args)
    start = time.perf_counter()
    results = method.query_many(batch, executor=executor)
    batched_seconds = time.perf_counter() - start
    print(
        f"{method.name}: {len(batch)} queries in {batched_seconds * 1e3:.1f} ms "
        f"({len(batch) / max(batched_seconds, 1e-12):,.0f} queries/s batched)"
    )
    if args.verify:
        start = time.perf_counter()
        expected = [method.query(query) for query in batch.as_queries()]
        scalar_seconds = time.perf_counter() - start
        agree = all(a == b for a, b in zip(expected, results))
        print(
            f"scalar loop: {scalar_seconds * 1e3:.1f} ms "
            f"({len(batch) / max(scalar_seconds, 1e-12):,.0f} queries/s); "
            f"speedup {scalar_seconds / max(batched_seconds, 1e-12):.1f}x; "
            f"answers {'identical' if agree else 'DIVERGED'}"
        )
        if not agree:
            return 1
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Serve a sampled batch through a partitioned cluster (and verify)."""
    import time

    from repro.distributed import (
        ObjectPartitionedCluster,
        TimePartitionedCluster,
    )

    db = read_payload(args.database)
    if not isinstance(db, TemporalDatabase):
        raise SystemExit(f"{args.database} does not contain a database")
    if args.protocol == "threshold" and args.partition != "time":
        raise SystemExit(
            "--protocol threshold requires --partition time "
            "(the TA runs over per-node partial aggregates)"
        )
    fault_plan = None
    retry_policy = None
    chaotic = args.fault_rate > 0.0 or args.crash_rate > 0.0
    if chaotic:
        from repro.faults import INSTANT_RETRY_POLICY, FaultPlan

        fault_seed = args.fault_seed if args.fault_seed is not None else args.seed
        fault_plan = FaultPlan(
            seed=fault_seed,
            crash_rate=args.crash_rate,
            transient_rate=args.fault_rate,
        )
        retry_policy = INSTANT_RETRY_POLICY
    executor = _resolve_executor(args)
    start = time.perf_counter()
    if args.partition == "object":
        cluster = ObjectPartitionedCluster(
            db,
            num_nodes=args.nodes,
            executor=executor,
            replicas=args.replicas,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
        )
    else:
        cluster = TimePartitionedCluster(
            db,
            num_nodes=args.nodes,
            executor=executor,
            replicas=args.replicas,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
        )
    build_seconds = time.perf_counter() - start
    batch = sample_workload(
        db, count=args.count, kmax=args.kmax, seed=args.seed
    )
    chaos_note = (
        f", replicas={args.replicas}, crash={args.crash_rate:g}, "
        f"transient={args.fault_rate:g}"
        if chaotic or args.replicas > 1
        else ""
    )
    print(
        f"{args.partition}-partitioned cluster: {cluster.num_nodes} nodes "
        f"over {db} (built in {build_seconds:.2f}s{chaos_note})"
    )
    cluster.comm.reset()
    start = time.perf_counter()
    if args.partition == "object":
        # Forwarded to each node's query_many (EXACT3 chunk fan-out);
        # the time cluster's scatter path has no query fan-out.
        results = cluster.query_many(batch, executor=executor)
    elif args.protocol == "threshold":
        # Lock-step batched TA: all queries advance rounds together.
        results = cluster.query_many(
            batch, protocol="threshold", batch_size=args.batch_size
        )
    else:
        results = cluster.query_many(batch)
    batched_seconds = time.perf_counter() - start
    batched_comm = cluster.comm.snapshot()
    rounds = (
        f", {len(cluster.comm.rounds)} TA rounds"
        if args.protocol == "threshold"
        else ""
    )
    print(
        f"query_many: {len(batch)} queries in {batched_seconds * 1e3:.1f} ms "
        f"({len(batch) / max(batched_seconds, 1e-12):,.0f} queries/s); "
        f"comm {batched_comm.messages} messages, {batched_comm.pairs} pairs "
        f"({batched_comm.bytes} bytes){rounds}"
    )
    if args.verify:
        cluster.comm.reset()
        if args.partition == "object":
            scalar_query = cluster.query
        elif args.protocol == "threshold":

            def scalar_query(t1, t2, k):
                return cluster.query_threshold(
                    t1, t2, k, batch_size=args.batch_size
                )

        else:
            scalar_query = cluster.query_scatter_gather
        start = time.perf_counter()
        expected = [
            scalar_query(float(t1), float(t2), int(k))
            for t1, t2, k in zip(batch.t1s, batch.t2s, batch.ks)
        ]
        scalar_seconds = time.perf_counter() - start
        # comm was reset before each run, so both snapshots count
        # from zero and compare directly.
        scalar_comm = cluster.comm.snapshot()
        if chaotic:
            # The scalar protocols talk to the bare shards (faults wrap
            # only the replica groups), so `expected` is the healthy
            # reference: a masked fault (retried transient, replica
            # failover) must still answer bit-for-bit identically, and
            # any divergence must be flagged degraded, never silent.
            degraded = sum(1 for r in results if r.degraded)
            agree = all(
                a == b or b.degraded for a, b in zip(expected, results)
            )
            exact = sum(1 for a, b in zip(expected, results) if a == b)
            print(
                f"verify vs healthy scalar protocol: {exact}/{len(results)} "
                f"bit-identical, {degraded} flagged degraded; "
                f"{'OK' if agree else 'SILENT DIVERGENCE'}"
            )
            if not agree:
                return 1
        else:
            agree = all(a == b for a, b in zip(expected, results))
            comm_agree = scalar_comm == batched_comm
            print(
                f"scalar protocol: {scalar_seconds * 1e3:.1f} ms "
                f"({len(batch) / max(scalar_seconds, 1e-12):,.0f} queries/s); "
                f"speedup {scalar_seconds / max(batched_seconds, 1e-12):.1f}x; "
                f"answers {'identical' if agree else 'DIVERGED'}; "
                f"comm bytes {'identical' if comm_agree else 'DIVERGED'}"
            )
            if not (agree and comm_agree):
                return 1
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Write a durable engine snapshot of a saved dataset.

    Builds EXACT3 (always; ``--approximate`` / ``--instant`` add the
    other indexes) and persists the whole engine as mmap-able segments
    plus a SQLite catalog.  Reopen with ``repro mount`` or
    ``repro serve --catalog`` — mounting rebuilds nothing.
    """
    import time

    from repro.engine import TemporalRankingEngine

    db = read_payload(args.database)
    if not isinstance(db, TemporalDatabase):
        raise SystemExit(f"{args.database} does not contain a database")
    start = time.perf_counter()
    engine = TemporalRankingEngine(db, epsilon=args.epsilon, kmax=args.kmax)
    t1, t2 = db.span
    if args.approximate:
        engine.top_k(t1, t2, 1, approximate=True)
    if args.instant:
        engine.instant_top_k((t1 + t2) / 2.0, 1)
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    engine.snapshot(args.output)
    snap_seconds = time.perf_counter() - start
    from pathlib import Path

    total = sum(f.stat().st_size for f in Path(args.output).iterdir())
    print(
        f"snapshotted {engine!r} to {args.output}: "
        f"{total / 1e6:.2f} MB in {snap_seconds:.2f}s "
        f"(indexes built in {build_seconds:.2f}s)"
    )
    return 0


def _rebuild_in_memory(mounted):
    """A fresh, fully in-memory copy of a mounted engine or cluster."""
    import numpy as np

    from repro.core import PiecewiseLinearFunction, TemporalObject
    from repro.distributed import (
        ObjectPartitionedCluster,
        TimePartitionedCluster,
    )
    from repro.engine import TemporalRankingEngine

    def fresh_db(database):
        objects = [
            TemporalObject(
                obj.object_id,
                PiecewiseLinearFunction(
                    np.array(obj.function.times, dtype=np.float64),
                    np.array(obj.function.values, dtype=np.float64),
                ),
                obj.label,
            )
            for obj in database
        ]
        return TemporalDatabase(
            objects, span=database.span, pad=database.padded
        )

    if isinstance(mounted, TemporalRankingEngine):
        engine = TemporalRankingEngine(
            fresh_db(mounted.database),
            epsilon=mounted.epsilon,
            kmax=mounted.kmax,
        )
        return engine, engine.database
    if isinstance(mounted, TimePartitionedCluster):
        db = fresh_db(mounted.database)
        return TimePartitionedCluster(db, mounted.num_nodes), db
    if isinstance(mounted, ObjectPartitionedCluster):
        objects = [obj for node in mounted.nodes for obj in node.database]
        objects.sort(key=lambda obj: obj.object_id)
        spans = [node.database.span for node in mounted.nodes]
        span = (min(s[0] for s in spans), max(s[1] for s in spans))
        db = TemporalDatabase(
            [
                TemporalObject(
                    obj.object_id,
                    PiecewiseLinearFunction(
                        np.array(obj.function.times, dtype=np.float64),
                        np.array(obj.function.values, dtype=np.float64),
                    ),
                    obj.label,
                )
                for obj in objects
            ],
            span=span,
            pad=mounted.nodes[0].database.padded,
        )
        return ObjectPartitionedCluster(db, mounted.num_nodes), db
    raise SystemExit(f"cannot verify a {type(mounted).__name__}")


def cmd_mount(args: argparse.Namespace) -> int:
    """Mount a snapshot directory (zero-copy, no index builds).

    ``--verify`` replays a full in-memory build of the same data and
    asserts the mounted answers are bit-identical.
    """
    import time

    from repro.engine import TemporalRankingEngine
    from repro.storage.snapshot import open_any

    start = time.perf_counter()
    mounted = open_any(args.path)
    open_seconds = time.perf_counter() - start
    print(f"mounted {mounted!r} from {args.path} in {open_seconds * 1e3:.1f} ms")
    if not args.verify:
        return 0
    rebuilt, db = _rebuild_in_memory(mounted)
    queries = random_queries(db, count=args.count, k=args.k, seed=args.seed)
    if isinstance(mounted, TemporalRankingEngine):
        expected = [rebuilt.exact.query(q) for q in queries]
        got = [mounted.exact.query(q) for q in queries]
        ios_expected = [rebuilt.exact.measured_query(q).ios for q in queries]
        ios_got = [mounted.exact.measured_query(q).ios for q in queries]
    else:
        expected = [rebuilt.query_many([q])[0] for q in queries]
        got = [mounted.query_many([q])[0] for q in queries]
        ios_expected = ios_got = []
    agree = all(a == b for a, b in zip(expected, got))
    ios_agree = ios_expected == ios_got
    print(
        f"verify against in-memory rebuild: answers "
        f"{'identical' if agree else 'DIVERGED'}, IO charges "
        f"{'identical' if ios_agree else 'DIVERGED'} "
        f"({len(queries)} queries)"
    )
    return 0 if agree and ios_agree else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve top-k requests through the micro-batching coordinator.

    The engine comes from ``--catalog <snapshot-dir>`` (mounted
    zero-copy, no index builds) or from a saved dataset file (indexes
    built on startup).  Requests come from ``--demo N`` (a seeded
    sampled workload) or from stdin, one ``t1 t2 k`` triple per line.
    Answers are printed per request; micro-batching statistics follow.
    """
    import asyncio

    from repro.engine import TemporalRankingEngine
    from repro.serving import EngineBackend, ServingCoordinator

    if args.catalog is not None:
        engine = TemporalRankingEngine.open(args.catalog)
        db = engine.database
    elif args.database is not None:
        db = read_payload(args.database)
        if not isinstance(db, TemporalDatabase):
            raise SystemExit(f"{args.database} does not contain a database")
        engine = TemporalRankingEngine(db, kmax=args.kmax)
    else:
        raise SystemExit("serve needs a database file or --catalog <dir>")
    backend = EngineBackend(engine, approximate=args.approximate)
    if args.demo:
        batch = sample_workload(
            db, count=args.demo, kmax=min(args.kmax, 10), seed=args.seed
        )
        requests = [
            (float(t1), float(t2), int(k))
            for t1, t2, k in zip(batch.t1s, batch.t2s, batch.ks)
        ]
    else:
        requests = []
        for line in sys.stdin:
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 3:
                raise SystemExit(f"expected 't1 t2 k', got {line.rstrip()!r}")
            requests.append((float(parts[0]), float(parts[1]), int(parts[2])))
    if not requests:
        print("no requests")
        return 0

    deadline = args.deadline_ms / 1e3 if args.deadline_ms else None
    # With a process pool, a --catalog snapshot is reused as the
    # workers' first mount (no second snapshot write on startup).
    pool_snapshot = args.catalog if args.workers > 1 else None

    async def run():
        coordinator = ServingCoordinator(
            backend,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            request_deadline=deadline,
            workers=args.workers,
            pool_snapshot=pool_snapshot,
        )
        async with coordinator:
            answers = await asyncio.gather(
                *[coordinator.top_k(t1, t2, k) for t1, t2, k in requests],
                return_exceptions=True,
            )
        return coordinator, answers

    coordinator, answers = asyncio.run(run())
    from repro.core.errors import DeadlineExceeded

    for (t1, t2, k), result in zip(requests, answers):
        if isinstance(result, DeadlineExceeded):
            print(f"top-{k}({t1:g}, {t2:g}) -> DEADLINE EXCEEDED")
            continue
        if isinstance(result, BaseException):
            raise result
        tops = ", ".join(
            f"{item.object_id}:{item.score:.6g}" for item in result
        )
        print(f"top-{k}({t1:g}, {t2:g}) -> [{tops}]")
    stats = coordinator.stats
    failed = f", {stats.failed} failed" if stats.failed else ""
    pooled = (
        f", {stats.pool_dispatches} pool dispatches across "
        f"{args.workers} workers"
        if args.workers > 1
        else ""
    )
    print(
        f"served {stats.requests} requests in {stats.batches} micro-batches "
        f"(mean {stats.mean_batch:.1f}/batch, {stats.cache_hits} cache "
        f"hits, {stats.deduped} deduped{failed}{pooled})"
    )
    if args.stats_json:
        import json
        from pathlib import Path

        text = json.dumps(coordinator.metrics(), indent=2, sort_keys=True)
        if args.stats_json == "-":
            print(text)
        else:
            Path(args.stats_json).write_text(text + "\n")
            print(f"metrics -> {args.stats_json}")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop Poisson load against the serving tier (SLO numbers)."""
    import asyncio

    from repro.engine import TemporalRankingEngine
    from repro.serving import DirectClient, EngineBackend, ServingCoordinator
    from repro.serving.loadgen import plan_poisson_load, run_open_loop

    db = read_payload(args.database)
    if not isinstance(db, TemporalDatabase):
        raise SystemExit(f"{args.database} does not contain a database")
    engine = TemporalRankingEngine(db, kmax=args.kmax)
    backend = EngineBackend(engine, approximate=args.approximate)
    t1, t2 = db.span
    # Warm any lazily built index outside the measured runs.
    engine.top_k(t1, t2, 1, approximate=args.approximate)
    status = 0
    for rate_text in args.rates.split(","):
        rate = float(rate_text)
        plan = plan_poisson_load(
            db, count=args.count, rate=rate, kmax=args.qk, seed=args.seed
        )

        async def run():
            outcomes = {}
            if args.mode in ("micro", "both"):
                coordinator = ServingCoordinator(
                    backend,
                    max_batch=args.max_batch,
                    max_delay=args.max_delay,
                )
                async with coordinator:
                    outcomes["micro"] = await run_open_loop(coordinator, plan)
            if args.mode in ("direct", "both"):
                async with DirectClient(backend) as client:
                    outcomes["direct"] = await run_open_loop(client, plan)
            return outcomes

        outcomes = asyncio.run(run())
        for mode, result in outcomes.items():
            summary = result.summary()
            print(
                f"rate {rate:9,.0f}/s {mode:>6}: "
                f"{summary['throughput_qps']:10,.0f} qps  "
                f"p50 {summary['p50_ms']:8.2f} ms  "
                f"p99 {summary['p99_ms']:8.2f} ms"
            )
        if len(outcomes) == 2:
            speedup = outcomes["micro"].throughput / max(
                outcomes["direct"].throughput, 1e-12
            )
            print(f"  micro/direct speedup {speedup:.2f}x")
    return status


def cmd_info(args: argparse.Namespace) -> int:
    payload = read_payload(args.path)
    if isinstance(payload, TemporalDatabase):
        print(f"database: {payload}")
        print(f"  m={payload.num_objects} N={payload.total_segments} "
              f"navg={payload.avg_segments:.0f} M={payload.total_mass:.4g}")
    else:
        print(f"index: {payload!r}")
        if hasattr(payload, "index_size_bytes"):
            print(f"  size: {payload.index_size_bytes / 1e6:.2f} MB")
        if hasattr(payload, "breakpoints") and payload.breakpoints is not None:
            bp = payload.breakpoints
            print(f"  breakpoints: r={bp.r} eps={bp.epsilon:.3g} ({bp.method})")
    return 0


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=list(BACKENDS),
        default=None,
        help="index-build fan-out backend (default: REPRO_EXECUTOR or serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan-out worker count (default: REPRO_WORKERS or all cores)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ranking Large Temporal Data — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic dataset")
    p_gen.add_argument("dataset", choices=["temp", "meme"])
    p_gen.add_argument("--objects", type=int, default=500)
    p_gen.add_argument("--readings", type=int, default=80)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", required=True)
    p_gen.set_defaults(func=cmd_generate)

    p_build = sub.add_parser("build", help="build an index over a dataset")
    p_build.add_argument("database")
    p_build.add_argument("--method", default="exact3")
    p_build.add_argument("--epsilon", type=float, default=1e-4)
    p_build.add_argument("--kmax", type=int, default=50)
    p_build.add_argument("-o", "--output", required=True)
    _add_executor_options(p_build)
    p_build.set_defaults(func=cmd_build)

    p_query = sub.add_parser("query", help="run one aggregate top-k query")
    p_query.add_argument("index")
    p_query.add_argument("--t1", type=float, required=True)
    p_query.add_argument("--t2", type=float, required=True)
    p_query.add_argument("-k", type=int, default=10)
    p_query.set_defaults(func=cmd_query)

    p_cmp = sub.add_parser("compare", help="compare all methods on a dataset")
    p_cmp.add_argument("database")
    p_cmp.add_argument("-k", type=int, default=10)
    p_cmp.add_argument("--queries", type=int, default=10)
    p_cmp.add_argument("--interval", type=float, default=0.2)
    p_cmp.add_argument("--epsilon", type=float, default=1e-4)
    p_cmp.add_argument("--kmax", type=int, default=50)
    p_cmp.add_argument("--seed", type=int, default=0)
    _add_executor_options(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_load = sub.add_parser(
        "workload", help="serve a sampled query batch via query_many"
    )
    p_load.add_argument("index")
    p_load.add_argument("--count", type=int, default=256)
    p_load.add_argument("--kmax", type=int, default=10)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--verify",
        action="store_true",
        help="also run the scalar loop and check answers are identical",
    )
    _add_executor_options(p_load)
    p_load.set_defaults(func=cmd_workload)

    p_cluster = sub.add_parser(
        "cluster", help="serve a sampled batch through a partitioned cluster"
    )
    p_cluster.add_argument("database")
    p_cluster.add_argument("--nodes", type=int, default=4)
    p_cluster.add_argument(
        "--partition", choices=["object", "time"], default="object"
    )
    p_cluster.add_argument("--count", type=int, default=256)
    p_cluster.add_argument("--kmax", type=int, default=10)
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument(
        "--protocol",
        choices=["scatter", "threshold"],
        default="scatter",
        help="time-partition protocol: scatter-gather (default) or the "
        "lock-step batched threshold algorithm",
    )
    p_cluster.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="TA sorted-access batch size (threshold protocol only)",
    )
    p_cluster.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serving endpoints per shard (failover masks dead replicas)",
    )
    p_cluster.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-call transient fault probability (masked by retry)",
    )
    p_cluster.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="per-call replica crash probability (masked by failover "
        "while a replica survives; flagged degraded otherwise)",
    )
    p_cluster.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="fault-plan seed (default: --seed); same seed, same faults",
    )
    p_cluster.add_argument(
        "--verify",
        action="store_true",
        help="also run the scalar protocol and check answers and comm "
        "bytes are identical (under faults: check every non-degraded "
        "answer matches the healthy protocol bit-for-bit)",
    )
    _add_executor_options(p_cluster)
    p_cluster.set_defaults(func=cmd_cluster)

    p_snap = sub.add_parser(
        "snapshot",
        help="write a durable engine snapshot (segments + catalog)",
    )
    p_snap.add_argument("database", help="a saved dataset file (see generate)")
    p_snap.add_argument("-o", "--output", required=True, metavar="DIR")
    p_snap.add_argument(
        "--approximate", action="store_true", help="also build APPX2+"
    )
    p_snap.add_argument(
        "--instant", action="store_true", help="also build the instant engine"
    )
    p_snap.add_argument("--epsilon", type=float, default=1e-4)
    p_snap.add_argument("--kmax", type=int, default=50)
    p_snap.set_defaults(func=cmd_snapshot)

    p_mount = sub.add_parser(
        "mount", help="mount a snapshot directory (zero-copy, no builds)"
    )
    p_mount.add_argument("path", metavar="DIR")
    p_mount.add_argument(
        "--verify",
        action="store_true",
        help="replay a full in-memory build and assert bit-identical answers",
    )
    p_mount.add_argument("--count", type=int, default=32)
    p_mount.add_argument("-k", type=int, default=10)
    p_mount.add_argument("--seed", type=int, default=0)
    p_mount.set_defaults(func=cmd_mount)

    p_serve = sub.add_parser(
        "serve",
        help="serve top-k requests through the micro-batching coordinator",
    )
    p_serve.add_argument(
        "database", nargs="?", default=None,
        help="a saved dataset file (or use --catalog)",
    )
    p_serve.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="mount this snapshot directory instead of building indexes",
    )
    p_serve.add_argument(
        "--demo",
        type=int,
        default=0,
        metavar="N",
        help="serve N sampled demo requests instead of reading stdin",
    )
    p_serve.add_argument(
        "--approximate", action="store_true", help="serve through APPX2+"
    )
    p_serve.add_argument("--kmax", type=int, default=50)
    p_serve.add_argument("--max-batch", type=int, default=64)
    p_serve.add_argument(
        "--max-delay", type=float, default=0.002,
        help="micro-batch accumulation deadline, seconds",
    )
    p_serve.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        help="per-request deadline in milliseconds (0: none); overruns "
        "fail with a structured DeadlineExceeded",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="execution worker processes; N>1 snapshots the engine and "
        "dispatches micro-batches to a process pool over mmap mounts "
        "(answers stay bit-identical)",
    )
    p_serve.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="dump Prometheus-style serving counters as JSON on exit "
        "('-' for stdout)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load against the serving tier",
    )
    p_loadgen.add_argument("database")
    p_loadgen.add_argument(
        "--rates",
        type=str,
        default="1000,4000",
        help="comma-separated offered loads (requests/second)",
    )
    p_loadgen.add_argument("--count", type=int, default=300)
    p_loadgen.add_argument(
        "--mode", choices=["micro", "direct", "both"], default="both"
    )
    p_loadgen.add_argument(
        "--approximate", action="store_true", help="serve through APPX2+"
    )
    p_loadgen.add_argument("--kmax", type=int, default=50)
    p_loadgen.add_argument(
        "--qk", type=int, default=10, help="max per-query k in the workload"
    )
    p_loadgen.add_argument("--max-batch", type=int, default=128)
    p_loadgen.add_argument(
        "--max-delay", type=float, default=0.002,
        help="micro-batch accumulation deadline, seconds",
    )
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.set_defaults(func=cmd_loadgen)

    p_info = sub.add_parser("info", help="inspect a saved dataset or index")
    p_info.add_argument("path")
    p_info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
