"""Deterministic, seedable fault plans.

Chaos that cannot be replayed cannot be debugged, so every fault this
package injects is a pure function of ``(seed, node_id, replica, call
sequence number)``.  A :class:`FaultPlan` holds the rates and the
scripted faults; :meth:`FaultPlan.fork` derives one
:class:`NodeFaults` per (node, replica) endpoint, each with its own
``numpy`` Generator seeded by ``[seed, node_id, replica]`` — so
endpoint A's draw stream never shifts when endpoint B serves a
different number of calls, and two runs with the same seed inject
byte-identical fault schedules.

Two injection styles compose:

* **rates** — per-call Bernoulli draws for crash / transient /
  latency / corrupt-read, for statistical chaos (the bench sweeps
  these);
* **scripts** — :meth:`FaultPlan.schedule` pins a fault ``kind`` to an
  exact call number on an exact endpoint, for surgical tests ("kill
  node 2's primary on its 3rd call, mid-batch").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Fault kinds understood by :class:`NodeFaults` / ``FaultyNode``.
CRASH = "crash"
TRANSIENT = "transient"
LATENCY = "latency"
CORRUPT = "corrupt"

_KINDS = (CRASH, TRANSIENT, LATENCY, CORRUPT)


@dataclass
class FaultPlan:
    """A reproducible chaos schedule for a cluster.

    Parameters
    ----------
    seed:
        Root of every random draw; same seed ⇒ same injected faults.
    crash_rate:
        Per-call probability that the endpoint dies permanently
        (subsequent calls fail fast with a non-transient
        ``NodeUnavailable``).
    transient_rate:
        Per-call probability of a one-off retryable failure.
    latency:
        Seconds of delay injected per affected call.
    latency_rate:
        Per-call probability of injecting ``latency``.
    corrupt_rate:
        Per-read probability that a wrapped device read reports a
        checksum failure (``BlockDeviceError``).
    """

    seed: int = 0
    crash_rate: float = 0.0
    transient_rate: float = 0.0
    latency: float = 0.0
    latency_rate: float = 0.0
    corrupt_rate: float = 0.0
    _scripted: Dict[Tuple[int, int], List[Tuple[int, str]]] = field(
        default_factory=dict, repr=False
    )

    def schedule(
        self, kind: str, node_id: int, at_call: int, replica: int = 0
    ) -> "FaultPlan":
        """Script fault ``kind`` on call number ``at_call`` (1-based)
        of endpoint ``(node_id, replica)``.  Returns ``self`` so
        schedules chain."""
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {_KINDS}")
        if at_call < 1:
            raise ValueError("at_call is 1-based; the first call is at_call=1")
        self._scripted.setdefault((node_id, replica), []).append((at_call, kind))
        return self

    def fork(self, node_id: int, replica: int = 0) -> "NodeFaults":
        """Derive the independent fault stream for one endpoint.

        Scripted :data:`CORRUPT` entries key off the endpoint's *read*
        counter (they fire inside the wrapped device); every other
        kind keys off its *call* counter.
        """
        entries = self._scripted.get((node_id, replica), ())
        scripted = {at: kind for at, kind in entries if kind != CORRUPT}
        scripted_reads = {at for at, kind in entries if kind == CORRUPT}
        return NodeFaults(
            rng=np.random.default_rng([self.seed, node_id, replica, 0]),
            read_rng=np.random.default_rng([self.seed, node_id, replica, 1]),
            crash_rate=self.crash_rate,
            transient_rate=self.transient_rate,
            latency=self.latency,
            latency_rate=self.latency_rate,
            corrupt_rate=self.corrupt_rate,
            scripted=scripted,
            scripted_reads=scripted_reads,
        )

    @property
    def is_quiet(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            not self._scripted
            and self.crash_rate == 0.0
            and self.transient_rate == 0.0
            and self.latency_rate == 0.0
            and self.corrupt_rate == 0.0
        )


class NodeFaults:
    """One endpoint's deterministic fault stream.

    Each served call advances the counter and consumes exactly three
    uniform draws (crash, transient, latency) regardless of outcome,
    so the decision at call *n* depends only on the seed and *n* —
    never on what earlier faults did to control flow.  Device reads
    draw from their own generator (:meth:`draw_corrupt`), so the
    call-level schedule is independent of how many reads interleave.
    """

    __slots__ = (
        "rng",
        "read_rng",
        "crash_rate",
        "transient_rate",
        "latency",
        "latency_rate",
        "corrupt_rate",
        "scripted",
        "scripted_reads",
        "calls",
        "reads",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        read_rng: Optional[np.random.Generator] = None,
        *,
        crash_rate: float,
        transient_rate: float,
        latency: float,
        latency_rate: float,
        corrupt_rate: float,
        scripted: Dict[int, str],
        scripted_reads: Optional[set] = None,
    ) -> None:
        self.rng = rng
        self.read_rng = read_rng if read_rng is not None else rng
        self.crash_rate = crash_rate
        self.transient_rate = transient_rate
        self.latency = latency
        self.latency_rate = latency_rate
        self.corrupt_rate = corrupt_rate
        self.scripted = scripted
        self.scripted_reads = scripted_reads or set()
        self.calls = 0
        self.reads = 0

    def draw_call(self) -> Tuple[Optional[str], float]:
        """Advance one call; returns ``(fault_kind_or_None, delay_s)``."""
        self.calls += 1
        draws = self.rng.random(3)
        scripted = self.scripted.get(self.calls)
        delay = 0.0
        if self.latency_rate and draws[2] < self.latency_rate:
            delay = self.latency
        if scripted is not None:
            if scripted == LATENCY:
                return None, self.latency if self.latency else 0.001
            return scripted, delay
        if self.crash_rate and draws[0] < self.crash_rate:
            return CRASH, delay
        if self.transient_rate and draws[1] < self.transient_rate:
            return TRANSIENT, delay
        return None, delay

    def draw_corrupt(self) -> bool:
        """Advance one device read; True when the read should report
        a checksum failure."""
        self.reads += 1
        if self.reads in self.scripted_reads:
            return True
        if not self.corrupt_rate:
            return False
        return bool(self.read_rng.random() < self.corrupt_rate)
