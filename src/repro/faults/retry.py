"""Retry with exponential backoff and per-call timeouts.

:class:`RetryPolicy` is the one knob every cluster→node call goes
through.  It re-attempts *transient* failures (``NodeUnavailable``
with ``transient=True``) with exponential backoff; a permanent failure
— a crashed replica — raises immediately so the caller can fail over
to another replica instead of burning the backoff budget on a corpse.

The ``sleep`` and ``clock`` hooks are injectable so tests and benches
run retries at simulated time: the default test policies use
``sleep=lambda s: None`` and still exercise every decision branch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import DeadlineExceeded, NodeUnavailable


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry with an optional per-attempt timeout.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``1`` disables retry).
    base_delay:
        Sleep before the second attempt; grows by ``multiplier`` per
        further attempt, capped at ``max_delay``.
    timeout:
        Optional wall-clock budget per attempt, in seconds.  An
        attempt that finishes over budget counts as a transient
        failure (the reply is stale — a real RPC layer would have
        hung up); when attempts are exhausted the call raises
        :class:`DeadlineExceeded`.
    sleep / clock:
        Injectable for deterministic tests.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.1
    timeout: Optional[float] = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay_for(self, attempt: int) -> float:
        """Backoff before attempt ``attempt`` (2-based; the first
        retry waits ``base_delay``)."""
        delay = self.base_delay * (self.multiplier ** max(0, attempt - 2))
        return min(delay, self.max_delay)

    def call(self, func: Callable, *args, **kwargs):
        """Run ``func(*args, **kwargs)`` under this policy.

        Retries transient :class:`NodeUnavailable` and per-attempt
        timeout overruns; re-raises permanent failures immediately
        (the caller's failover loop owns those).
        """
        last: Optional[Exception] = None
        timed_out = False
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1:
                self.sleep(self.delay_for(attempt))
            started = self.clock() if self.timeout is not None else 0.0
            try:
                result = func(*args, **kwargs)
            except NodeUnavailable as exc:
                if not exc.transient:
                    raise
                last = exc
                continue
            if self.timeout is not None and self.clock() - started > self.timeout:
                timed_out = True
                last = DeadlineExceeded(
                    f"attempt {attempt} exceeded per-call timeout", deadline=self.timeout
                )
                continue
            return result
        if timed_out and isinstance(last, DeadlineExceeded):
            raise last
        raise NodeUnavailable(
            f"still failing after {self.max_attempts} attempts: {last}",
            transient=False,
        ) from last


#: Policy used when a cluster is built without an explicit one: three
#: attempts, fast backoff, no per-attempt timeout (the simulated nodes
#: are in-process; timeouts matter once there is a transport).
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay=0.001)

#: Policy for tests/benches: identical decisions, zero wall-clock.
INSTANT_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.001, sleep=lambda _s: None
)
