"""Deterministic fault injection and resilience policies.

The chaos toolbox for the distributed/serving tiers:

* :class:`FaultPlan` / :class:`NodeFaults` — seedable, scriptable
  fault schedules (crash, transient error, added latency, corrupt
  read), deterministic per ``(seed, node_id, replica)`` endpoint;
* :class:`FaultyNode` / :class:`FaultyDevice` — drop-in wrappers that
  inject those faults into ``StorageNode`` message handlers and
  ``BlockDevice`` reads;
* :class:`RetryPolicy` — exponential-backoff retry with per-attempt
  timeouts, the policy every cluster→node call goes through.

Everything here is deterministic by construction: same seed, same
workload ⇒ same faults, same failovers, same answers.
"""

from repro.faults.injection import (
    REMOTE_CALLS,
    FaultyDevice,
    FaultyNode,
    wrap_cluster_nodes,
)
from repro.faults.plan import CORRUPT, CRASH, LATENCY, TRANSIENT, FaultPlan, NodeFaults
from repro.faults.retry import DEFAULT_RETRY_POLICY, INSTANT_RETRY_POLICY, RetryPolicy

__all__ = [
    "FaultPlan",
    "NodeFaults",
    "FaultyNode",
    "FaultyDevice",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "INSTANT_RETRY_POLICY",
    "REMOTE_CALLS",
    "wrap_cluster_nodes",
    "CRASH",
    "TRANSIENT",
    "LATENCY",
    "CORRUPT",
]
