"""Fault-injecting wrappers for storage nodes and block devices.

:class:`FaultyNode` wraps a :class:`~repro.distributed.nodes.StorageNode`
endpoint: every *remote* handler (the message API coordinators call)
first consults the endpoint's :class:`~repro.faults.plan.NodeFaults`
stream and may crash the endpoint, raise a transient error, or delay
the call; every other attribute delegates untouched, so a wrapped node
is a drop-in replacement anywhere a node flows.

:class:`FaultyDevice` wraps a :class:`~repro.storage.device.BlockDevice`
read path the same way, modeling checksum-detected corrupt reads as
:class:`~repro.core.errors.BlockDeviceError` — the failure class a real
disk surfaces, and the one the storage tier's quarantine path handles.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Sequence

from repro.core.errors import BlockDeviceError, NodeUnavailable
from repro.faults.plan import CRASH, LATENCY, TRANSIENT, FaultPlan, NodeFaults

#: The remote message API of ``StorageNode`` — the calls a coordinator
#: issues over the (simulated) wire, and therefore the calls that can
#: fail.  Properties and shard metadata delegate untouched: they model
#: cluster-construction-time state, not per-query traffic.
REMOTE_CALLS = frozenset(
    {
        "local_top_k",
        "partial_scores",
        "sorted_partials",
        "ta_stream",
        "ta_streams",
        "local_top_k_many",
        "partial_scores_many",
        "sorted_access_many",
        "probe_partials_many",
    }
)


class FaultyNode:
    """A storage-node endpoint that fails on schedule.

    One ``FaultyNode`` models one *replica endpoint*: the wrapped
    inner node holds the shard, the wrapper holds the failure state
    (its own ``NodeFaults`` stream and a sticky ``dead`` flag).  Two
    replicas of the same shard wrap the same inner node with
    different ``(node_id, replica)`` fault streams — fail one and the
    other still serves bit-identical answers, which is exactly the
    failover contract the cluster tests assert.
    """

    __slots__ = ("inner", "faults", "node_id", "replica", "dead", "_sleep")

    def __init__(
        self,
        inner: Any,
        faults: NodeFaults,
        replica: int = 0,
        sleep=time.sleep,
    ) -> None:
        self.inner = inner
        self.faults = faults
        self.node_id = inner.node_id
        self.replica = replica
        self.dead = False
        self._sleep = sleep

    @classmethod
    def from_plan(
        cls, inner: Any, plan: FaultPlan, replica: int = 0, sleep=time.sleep
    ) -> "FaultyNode":
        return cls(inner, plan.fork(inner.node_id, replica), replica, sleep)

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Crash this endpoint permanently (test/CLI hook)."""
        self.dead = True

    def revive(self) -> None:
        """Bring a crashed endpoint back (its shard state is intact —
        the inner node never died, only the endpoint)."""
        self.dead = False

    def _admit(self) -> None:
        """Run one call's fault decision; raises or delays as drawn."""
        if self.dead:
            raise NodeUnavailable(
                f"node {self.node_id} replica {self.replica} is down",
                node_id=self.node_id,
                replica=self.replica,
                transient=False,
            )
        kind, delay = self.faults.draw_call()
        if delay > 0.0:
            self._sleep(delay)
        if kind == CRASH:
            self.dead = True
            raise NodeUnavailable(
                f"node {self.node_id} replica {self.replica} crashed",
                node_id=self.node_id,
                replica=self.replica,
                transient=False,
            )
        if kind == TRANSIENT:
            raise NodeUnavailable(
                f"node {self.node_id} replica {self.replica}: transient fault",
                node_id=self.node_id,
                replica=self.replica,
                transient=True,
            )
        if kind == LATENCY:
            self._sleep(self.faults.latency if self.faults.latency else 0.001)

    def __getattr__(self, name: str):
        attr = getattr(self.inner, name)
        if name in REMOTE_CALLS:
            admit = self._admit

            def faulty_call(*args, **kwargs):
                admit()
                return attr(*args, **kwargs)

            return faulty_call
        return attr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "dead" if self.dead else "live"
        return f"FaultyNode(node={self.node_id}, replica={self.replica}, {state})"


class FaultyDevice:
    """A block device whose reads fail a checksum on schedule.

    Wraps the read path (:meth:`read`, :meth:`read_many`,
    :meth:`replay_reads`, :meth:`peek`); every other attribute —
    allocation, writes, stats, cache — delegates to the wrapped
    device.  A drawn corruption raises
    :class:`~repro.core.errors.BlockDeviceError`, modeling a read
    whose checksum did not match: the data never reaches the caller,
    exactly like a verified-read storage stack.
    """

    __slots__ = ("inner", "faults")

    def __init__(self, inner: Any, faults: NodeFaults) -> None:
        self.inner = inner
        self.faults = faults

    @classmethod
    def from_plan(
        cls, inner: Any, plan: FaultPlan, node_id: int = 0, replica: int = 0
    ) -> "FaultyDevice":
        return cls(inner, plan.fork(node_id, replica))

    def _checksum(self, block_id: int) -> None:
        if self.faults.draw_corrupt():
            raise BlockDeviceError(
                f"{self.inner.name}: checksum mismatch reading block {block_id}"
            )

    def read(self, block_id: int):
        self._checksum(block_id)
        return self.inner.read(block_id)

    def read_many(self, block_ids: Sequence[int]):
        for block_id in block_ids:
            self._checksum(block_id)
        return self.inner.read_many(block_ids)

    def replay_reads(self, block_ids: Sequence[int]) -> None:
        for block_id in block_ids:
            self._checksum(block_id)
        self.inner.replay_reads(block_ids)

    def peek(self, block_id: int):
        self._checksum(block_id)
        return self.inner.peek(block_id)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


def wrap_cluster_nodes(
    nodes: Sequence[Any],
    plan: Optional[FaultPlan],
    replicas: int = 1,
    sleep=time.sleep,
):
    """Build the per-shard endpoint lists a replicated cluster serves from.

    Returns ``groups``: for each inner node, a list of ``replicas``
    endpoints over the *same* shard.  With no plan the endpoints are
    the bare inner nodes when ``replicas == 1`` (the zero-overhead
    healthy fast path) and fault-free wrappers otherwise.
    """
    groups = []
    for node in nodes:
        if plan is None and replicas == 1:
            groups.append([node])
            continue
        effective = plan if plan is not None else FaultPlan()
        groups.append(
            [
                FaultyNode.from_plan(node, effective, replica=r, sleep=sleep)
                for r in range(replicas)
            ]
        )
    return groups
