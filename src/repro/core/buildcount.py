"""Build-counter instrumentation for the open-not-rebuild contract.

The durable storage tier promises that mounting a snapshot performs
*zero* index or store builds — everything is opened from disk.  That
promise is cheap to state and easy to silently regress, so the two
build chokepoints (:meth:`repro.exact.base.RankingMethod.build` and
``PLFStore`` construction from function objects) bump a process-wide
counter here, and the storage-tier tests assert the counters do not
move across ``repro.open()``.
"""

from __future__ import annotations

from typing import Dict

_counts: Dict[str, int] = {"store": 0, "index": 0}


def record(kind: str) -> None:
    """Count one build of ``kind`` (``"store"`` or ``"index"``)."""
    _counts[kind] = _counts.get(kind, 0) + 1


def counts() -> Dict[str, int]:
    """A snapshot of the per-kind build counts since process start."""
    return dict(_counts)
