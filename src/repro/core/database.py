"""The temporal database: a collection of temporal objects on [0, T].

Holds the ``m`` objects, exposes the global quantities the paper's
analysis is written in (``N``, ``n_avg``, ``M = sum_i sigma_i(0, T)``),
provides the brute-force reference evaluator every exact method is
tested against, and implements the Section 4 append-style updates.

Padding: EXACT3's stabbing-query invariant and the breakpoint sweeps
assume each object's pieces cover ``[0, T]``.  ``TemporalDatabase``
optionally pads every object with zero-score pieces out to the global
span (default on); padding never changes any aggregate score.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.aggregates import SUM, Aggregate
from repro.core.errors import InvalidQueryError, ReproError
from repro.core.objects import TemporalObject
from repro.core.plfstore import PLFStore
from repro.core.results import TopKResult, top_k_from_arrays


#: Minimum consecutive scalar-path queries (with no intervening append)
#: before append staleness is cleared and the next batch consumer may
#: rebuild the columnar store (see ``note_scalar_fallback``).
_STALE_READS_BEFORE_REBUILD = 3

#: Approximate ratio between one object's per-query scalar-path cost
#: (Python-level searchsorted + arithmetic) and one knot's store-rebuild
#: cost (array packing).  Scales the re-arm threshold to ~n_avg / ratio
#: so a rebuild only happens once enough scalar work has accumulated to
#: pay for it (ski-rental): databases with few, very long objects stay
#: on their cheap scalar paths instead of thrashing O(N) rebuilds.
_SCALAR_VS_REBUILD_COST_RATIO = 100


class TemporalDatabase:
    """``m`` temporal objects with a shared temporal domain ``[0, T]``.

    Parameters
    ----------
    objects:
        The temporal objects.  Ids must be unique; they need not be
        dense, but generators produce ``0..m-1``.
    span:
        Optional ``(t_min, t_max)`` global domain; defaults to the
        tightest span covering all objects.
    pad:
        When true (default), every object is extended to the global
        span with zero-score pieces (see module docstring).
    """

    def __init__(
        self,
        objects: Iterable[TemporalObject],
        span: Optional[tuple] = None,
        pad: bool = True,
    ) -> None:
        object_list: List[TemporalObject] = list(objects)
        if not object_list:
            raise ReproError("a temporal database needs at least one object")
        ids = [obj.object_id for obj in object_list]
        if len(set(ids)) != len(ids):
            raise ReproError("object ids must be unique")
        if span is None:
            t_min = min(obj.function.start for obj in object_list)
            t_max = max(obj.function.end for obj in object_list)
        else:
            t_min, t_max = float(span[0]), float(span[1])
        if pad:
            object_list = [
                TemporalObject(
                    obj.object_id, obj.function.padded(t_min, t_max), obj.label
                )
                if (obj.function.start > t_min or obj.function.end < t_max)
                else obj
                for obj in object_list
            ]
        self._objects = object_list
        self._by_id = {obj.object_id: idx for idx, obj in enumerate(object_list)}
        self.t_min = t_min
        self.t_max = t_max
        self.padded = pad
        self._store: Optional[PLFStore] = None
        self._store_stale = False
        self._stale_reads = 0
        # Monotone append counter: every mutation that can change any
        # query answer bumps it, so result caches keyed on (query,
        # epoch) can never serve a stale answer (see repro.serving).
        self._epoch = 0
        # Maintained incrementally (appends add one segment each) so
        # N/n_avg reads are O(1) on hot paths.
        self._total_segments = sum(obj.num_segments for obj in object_list)

    # ------------------------------------------------------------------
    # mounting (storage/segments)
    # ------------------------------------------------------------------
    @classmethod
    def mounted(
        cls,
        store: PLFStore,
        labels: Optional[Sequence[str]] = None,
        span: Optional[tuple] = None,
        padded: bool = True,
        epoch: int = 0,
    ) -> "TemporalDatabase":
        """A database over an already-built (typically memmapped) store.

        The open-not-rebuild path of the durable storage tier: objects
        wrap the store's own per-object function views (zero-copy
        slices of the kernel arrays), the columnar cache is the store
        itself (warm, not stale), and the append ``epoch`` recorded at
        snapshot time is restored so serving-tier result caches keyed
        on ``(query, epoch)`` stay correct across a restart.  No
        validation or store construction happens here — the segment
        layer already checksummed the arrays.
        """
        ids = store.object_ids.tolist()
        if labels is None:
            labels = [""] * len(ids)
        objects = [
            TemporalObject(int(object_id), fn, label)
            for object_id, fn, label in zip(ids, store.functions, labels)
        ]
        self = cls.__new__(cls)
        self._objects = objects
        self._by_id = {obj.object_id: idx for idx, obj in enumerate(objects)}
        if span is None:
            span = (float(store.starts.min()), float(store.ends.max()))
        self.t_min = float(span[0])
        self.t_max = float(span[1])
        self.padded = bool(padded)
        self._store = store
        self._store_stale = False
        self._stale_reads = 0
        self._epoch = int(epoch)
        self._total_segments = store.num_segments
        return self

    # ------------------------------------------------------------------
    # pickling (storage/persistence)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # The columnar store is a derived cache: dropping it keeps
        # persisted databases small and always-fresh on load.
        state = dict(self.__dict__)
        state["_store"] = None
        state["_store_stale"] = False
        state["_stale_reads"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        # Databases pickled before the columnar kernel existed lack
        # the cache attributes; fill them in so old files still load.
        self.__dict__.update(state)
        self.__dict__.setdefault("_store", None)
        self.__dict__.setdefault("_store_stale", False)
        self.__dict__.setdefault("_stale_reads", 0)
        self.__dict__.setdefault("_epoch", 0)
        if "_total_segments" not in self.__dict__:
            self._total_segments = sum(
                obj.num_segments for obj in self._objects
            )

    # ------------------------------------------------------------------
    # paper notation
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        """``m``."""
        return len(self._objects)

    @property
    def total_segments(self) -> int:
        """``N = sum_i n_i`` (cached; maintained across appends)."""
        return self._total_segments

    @property
    def avg_segments(self) -> float:
        """``n_avg``."""
        return self.total_segments / self.num_objects

    @property
    def max_segments(self) -> int:
        """``n = max_i n_i``."""
        return max(obj.num_segments for obj in self._objects)

    @property
    def span(self) -> tuple:
        """The global temporal domain ``[0, T]`` as ``(t_min, t_max)``."""
        return self.t_min, self.t_max

    @property
    def epoch(self) -> int:
        """Monotone update counter (bumped by :meth:`append_segment`).

        Two reads of the same query between equal epochs are
        guaranteed identical, which is the invalidation contract the
        serving tier's result cache relies on.
        """
        return self._epoch

    @property
    def total_mass(self) -> float:
        """``M = sum_i sigma_i(0, T)`` (signed)."""
        return sum(obj.total_mass for obj in self._objects)

    @property
    def absolute_total_mass(self) -> float:
        """``M`` computed on ``|g_i|`` (Section 4, negative scores)."""
        return self.store(use_absolute=True).sequential_total_mass

    # ------------------------------------------------------------------
    # columnar kernel
    # ------------------------------------------------------------------
    def store(self, use_absolute: bool = False) -> PLFStore:
        """The cached columnar :class:`PLFStore` over all objects.

        Built lazily on first use and invalidated by
        :meth:`append_segment`; every object-parallel hot path (query
        scoring, breakpoint sweeps, top-list materialization) routes
        through it.  ``use_absolute`` returns the (also cached) store
        over ``|g_i|``.
        """
        if self._store is None:
            self._store = PLFStore(
                [obj.function for obj in self._objects], self.object_ids()
            )
            self._store_stale = False
        return self._store.absolute() if use_absolute else self._store

    @property
    def has_store(self) -> bool:
        """True when the columnar snapshot is built and current.

        Streaming consumers use this to choose between the batch
        kernel (store warm) and per-object scalar paths (store
        invalidated by an append): rebuilding the ``O(N)`` snapshot
        on every append-then-query tick would swamp the ``O(log n)``
        incremental index updates.
        """
        return self._store is not None

    @property
    def wants_store(self) -> bool:
        """True when batch consumers should (re)build the store.

        Either the store is already warm, or it has never been built
        (first use: the one-time build amortizes immediately).  False
        only while an append has invalidated a previously built store
        — the streaming tick pattern, where consumers with a scalar
        alternative should use it instead of rebuilding per tick.
        """
        return self._store is not None or not self._store_stale

    def note_scalar_fallback(self) -> None:
        """Record that a batch consumer answered on its scalar path.

        Prevents append staleness from pinning read-heavy workloads to
        scalar loops forever: once enough consecutive fallbacks (with
        no intervening append) have accumulated to pay for an O(N)
        rebuild — at least ``_STALE_READS_BEFORE_REBUILD``, scaled up
        with ``n_avg`` for databases whose rebuild dwarfs a scalar
        pass — staleness is cleared so the next batch consumer
        rebuilds the store, which then amortizes over the read burst.
        Streaming tick loops re-arm staleness on every append, so
        they keep their cheap scalar paths.
        """
        self._stale_reads += 1
        threshold = max(
            _STALE_READS_BEFORE_REBUILD,
            int(self.avg_segments / _SCALAR_VS_REBUILD_COST_RATIO),
        )
        if self._stale_reads >= threshold:
            self._store_stale = False
            self._stale_reads = 0

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def objects(self) -> Sequence[TemporalObject]:
        return tuple(self._objects)

    def __len__(self) -> int:
        return self.num_objects

    def __iter__(self) -> Iterator[TemporalObject]:
        return iter(self._objects)

    def get(self, object_id: int) -> TemporalObject:
        """Fetch an object by id."""
        try:
            return self._objects[self._by_id[object_id]]
        except KeyError:
            raise ReproError(f"no object with id {object_id}") from None

    def object_ids(self) -> np.ndarray:
        return np.asarray([obj.object_id for obj in self._objects], dtype=np.int64)

    # ------------------------------------------------------------------
    # reference evaluation (EXACT ground truth for tests/metrics)
    # ------------------------------------------------------------------
    def scores(
        self, t1: float, t2: float, aggregate: Aggregate = SUM
    ) -> np.ndarray:
        """``sigma_i(t1, t2)`` for every object, in storage order.

        Aggregates that are finalizations of the plain integral (sum,
        avg) go through the columnar kernel in one batched pass; other
        aggregates (F2) fall back to the per-object loop.
        """
        if t2 < t1:
            raise InvalidQueryError(f"reversed interval [{t1}, {t2}]")
        if aggregate.linear_in_sum:
            if self.wants_store:
                raw = self.store().integrals(t1, t2)
                return aggregate.finalize_many(raw, t1, t2)
            self.note_scalar_fallback()
        return np.asarray(
            [aggregate.interval(obj.function, t1, t2) for obj in self._objects],
            dtype=np.float64,
        )

    def brute_force_top_k(
        self, t1: float, t2: float, k: int, aggregate: Aggregate = SUM
    ) -> TopKResult:
        """Reference answer ``A(k, t1, t2)`` by scoring every object.

        This is the semantics every method must reproduce (exactly for
        EXACT1-3, within ``(eps, alpha)`` for the approximations).
        """
        values = self.scores(t1, t2, aggregate)
        return top_k_from_arrays(self.object_ids(), values, k)

    def exact_score(self, object_id: int, t1: float, t2: float) -> float:
        """``sigma_{object_id}(t1, t2)`` for ``sigma = sum``."""
        return self.get(object_id).score(t1, t2)

    # ------------------------------------------------------------------
    # bulk views for index construction (numpy, sorted by time)
    # ------------------------------------------------------------------
    def all_segments(self) -> np.ndarray:
        """All ``N`` segments as an array sorted by left endpoint.

        Columns: ``obj_id, t0, v0, t1, v1`` — the tuple representation
        both EXACT1's B+-tree and the breakpoint sweeps consume.  The
        paper's setup likewise keeps "all line segments sorted by the
        time value of their left end-point".
        """
        st = self.store()
        segments = np.empty((st.num_segments, 5), dtype=np.float64)
        segments[:, 0] = st.object_ids[st.seg_obj].astype(np.float64)
        segments[:, 1] = st.seg_t0
        segments[:, 2] = st.seg_v0
        segments[:, 3] = st.seg_t1
        segments[:, 4] = st.seg_v1
        order = np.lexsort((segments[:, 0], segments[:, 1]))
        return segments[order]

    def sweep_events(self, use_absolute: bool = False) -> np.ndarray:
        """Knot events for the BREAKPOINTS1 total-sum sweep.

        Returns rows ``(t, dV, dW)`` sorted by time: at time ``t`` the
        summed value ``V(t) = sum_i g_i(t)`` jumps by ``dV`` and the
        summed slope ``W(t)`` changes by ``dW``.  Interior knots carry
        ``dV = 0`` and a slope change; span boundaries add/remove the
        object's value and slope, which handles objects that do not
        cover the full domain.
        """
        st = self.store(use_absolute=use_absolute)
        first = st.offsets[:-1]
        last = st.offsets[1:] - 1
        # One event per knot, in object-major knot order (the same order
        # the per-object construction emitted): a knot's slope change is
        # (slope of the segment starting here) - (slope of the segment
        # ending here), with zero contributions at the span boundaries —
        # which reduces to entry/exit events at first/last knots.
        delta_value = np.zeros(st.num_knots, dtype=np.float64)
        delta_value[first] += st.knot_values[first]
        delta_value[last] -= st.knot_values[last]
        delta_slope = np.zeros(st.num_knots, dtype=np.float64)
        delta_slope[st.seg_left_knot] += st.slopes
        delta_slope[st.seg_left_knot + 1] -= st.slopes
        events = np.stack([st.knot_times, delta_value, delta_slope], axis=1)
        order = np.argsort(events[:, 0], kind="stable")
        return events[order]

    # ------------------------------------------------------------------
    # updates (Section 4)
    # ------------------------------------------------------------------
    def append_segment(self, object_id: int, t_next: float, v_next: float) -> TemporalObject:
        """Append a segment to ``object_id`` at the current time frontier.

        Models the paper's update: a new segment extending ``g_i`` past
        its current right endpoint.  Returns the updated object.  Index
        structures built earlier are NOT updated automatically — their
        own ``append`` methods mirror this call.
        """
        idx = self._by_id.get(object_id)
        if idx is None:
            raise ReproError(f"no object with id {object_id}")
        updated = self._objects[idx].with_appended(t_next, v_next)
        self._objects[idx] = updated
        # The columnar snapshot is stale; drop it and remember why, so
        # batch consumers with a scalar alternative avoid per-tick
        # rebuilds (see wants_store / note_scalar_fallback).
        self._store = None
        self._store_stale = True
        self._stale_reads = 0
        self._epoch += 1
        self._total_segments += 1
        if t_next > self.t_max:
            self.t_max = t_next
        return updated

    # ------------------------------------------------------------------
    # sampling (scalability experiments)
    # ------------------------------------------------------------------
    def sample_objects(self, count: int, seed: int = 0) -> "TemporalDatabase":
        """A database over a random subset of ``count`` objects.

        Used by the "vary m" experiments (paper Figure 13), mirroring
        how the authors sampled subsets of Temp.
        """
        if count > self.num_objects:
            raise ReproError(f"cannot sample {count} of {self.num_objects} objects")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(self.num_objects, size=count, replace=False)
        picked = [self._objects[i] for i in sorted(chosen)]
        return TemporalDatabase(picked, span=self.span, pad=self.padded)

    def __repr__(self) -> str:
        return (
            f"TemporalDatabase(m={self.num_objects}, N={self.total_segments}, "
            f"span=[{self.t_min:g}, {self.t_max:g}])"
        )
