"""The temporal database: a collection of temporal objects on [0, T].

Holds the ``m`` objects, exposes the global quantities the paper's
analysis is written in (``N``, ``n_avg``, ``M = sum_i sigma_i(0, T)``),
provides the brute-force reference evaluator every exact method is
tested against, and implements the Section 4 append-style updates.

Padding: EXACT3's stabbing-query invariant and the breakpoint sweeps
assume each object's pieces cover ``[0, T]``.  ``TemporalDatabase``
optionally pads every object with zero-score pieces out to the global
span (default on); padding never changes any aggregate score.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.aggregates import SUM, Aggregate
from repro.core.errors import InvalidQueryError, ReproError
from repro.core.objects import TemporalObject
from repro.core.plf import PiecewiseLinearFunction
from repro.core.results import TopKResult, top_k_from_arrays


class TemporalDatabase:
    """``m`` temporal objects with a shared temporal domain ``[0, T]``.

    Parameters
    ----------
    objects:
        The temporal objects.  Ids must be unique; they need not be
        dense, but generators produce ``0..m-1``.
    span:
        Optional ``(t_min, t_max)`` global domain; defaults to the
        tightest span covering all objects.
    pad:
        When true (default), every object is extended to the global
        span with zero-score pieces (see module docstring).
    """

    def __init__(
        self,
        objects: Iterable[TemporalObject],
        span: Optional[tuple] = None,
        pad: bool = True,
    ) -> None:
        object_list: List[TemporalObject] = list(objects)
        if not object_list:
            raise ReproError("a temporal database needs at least one object")
        ids = [obj.object_id for obj in object_list]
        if len(set(ids)) != len(ids):
            raise ReproError("object ids must be unique")
        if span is None:
            t_min = min(obj.function.start for obj in object_list)
            t_max = max(obj.function.end for obj in object_list)
        else:
            t_min, t_max = float(span[0]), float(span[1])
        if pad:
            object_list = [
                TemporalObject(
                    obj.object_id, obj.function.padded(t_min, t_max), obj.label
                )
                if (obj.function.start > t_min or obj.function.end < t_max)
                else obj
                for obj in object_list
            ]
        self._objects = object_list
        self._by_id = {obj.object_id: idx for idx, obj in enumerate(object_list)}
        self.t_min = t_min
        self.t_max = t_max
        self.padded = pad

    # ------------------------------------------------------------------
    # paper notation
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        """``m``."""
        return len(self._objects)

    @property
    def total_segments(self) -> int:
        """``N = sum_i n_i``."""
        return sum(obj.num_segments for obj in self._objects)

    @property
    def avg_segments(self) -> float:
        """``n_avg``."""
        return self.total_segments / self.num_objects

    @property
    def max_segments(self) -> int:
        """``n = max_i n_i``."""
        return max(obj.num_segments for obj in self._objects)

    @property
    def span(self) -> tuple:
        """The global temporal domain ``[0, T]`` as ``(t_min, t_max)``."""
        return self.t_min, self.t_max

    @property
    def total_mass(self) -> float:
        """``M = sum_i sigma_i(0, T)`` (signed)."""
        return sum(obj.total_mass for obj in self._objects)

    @property
    def absolute_total_mass(self) -> float:
        """``M`` computed on ``|g_i|`` (Section 4, negative scores)."""
        return sum(obj.function.absolute().total_mass for obj in self._objects)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def objects(self) -> Sequence[TemporalObject]:
        return tuple(self._objects)

    def __len__(self) -> int:
        return self.num_objects

    def __iter__(self) -> Iterator[TemporalObject]:
        return iter(self._objects)

    def get(self, object_id: int) -> TemporalObject:
        """Fetch an object by id."""
        try:
            return self._objects[self._by_id[object_id]]
        except KeyError:
            raise ReproError(f"no object with id {object_id}") from None

    def object_ids(self) -> np.ndarray:
        return np.asarray([obj.object_id for obj in self._objects], dtype=np.int64)

    # ------------------------------------------------------------------
    # reference evaluation (EXACT ground truth for tests/metrics)
    # ------------------------------------------------------------------
    def scores(
        self, t1: float, t2: float, aggregate: Aggregate = SUM
    ) -> np.ndarray:
        """``sigma_i(t1, t2)`` for every object, in storage order."""
        if t2 < t1:
            raise InvalidQueryError(f"reversed interval [{t1}, {t2}]")
        return np.asarray(
            [aggregate.interval(obj.function, t1, t2) for obj in self._objects],
            dtype=np.float64,
        )

    def brute_force_top_k(
        self, t1: float, t2: float, k: int, aggregate: Aggregate = SUM
    ) -> TopKResult:
        """Reference answer ``A(k, t1, t2)`` by scoring every object.

        This is the semantics every method must reproduce (exactly for
        EXACT1-3, within ``(eps, alpha)`` for the approximations).
        """
        values = self.scores(t1, t2, aggregate)
        return top_k_from_arrays(self.object_ids(), values, k)

    def exact_score(self, object_id: int, t1: float, t2: float) -> float:
        """``sigma_{object_id}(t1, t2)`` for ``sigma = sum``."""
        return self.get(object_id).score(t1, t2)

    # ------------------------------------------------------------------
    # bulk views for index construction (numpy, sorted by time)
    # ------------------------------------------------------------------
    def all_segments(self) -> np.ndarray:
        """All ``N`` segments as an array sorted by left endpoint.

        Columns: ``obj_id, t0, v0, t1, v1`` — the tuple representation
        both EXACT1's B+-tree and the breakpoint sweeps consume.  The
        paper's setup likewise keeps "all line segments sorted by the
        time value of their left end-point".
        """
        chunks = []
        for obj in self._objects:
            times = obj.function.times
            values = obj.function.values
            n = times.size - 1
            chunk = np.empty((n, 5), dtype=np.float64)
            chunk[:, 0] = float(obj.object_id)
            chunk[:, 1] = times[:-1]
            chunk[:, 2] = values[:-1]
            chunk[:, 3] = times[1:]
            chunk[:, 4] = values[1:]
            chunks.append(chunk)
        segments = np.concatenate(chunks, axis=0)
        order = np.lexsort((segments[:, 0], segments[:, 1]))
        return segments[order]

    def sweep_events(self, use_absolute: bool = False) -> np.ndarray:
        """Knot events for the BREAKPOINTS1 total-sum sweep.

        Returns rows ``(t, dV, dW)`` sorted by time: at time ``t`` the
        summed value ``V(t) = sum_i g_i(t)`` jumps by ``dV`` and the
        summed slope ``W(t)`` changes by ``dW``.  Interior knots carry
        ``dV = 0`` and a slope change; span boundaries add/remove the
        object's value and slope, which handles objects that do not
        cover the full domain.
        """
        rows = []
        for obj in self._objects:
            fn = obj.function.absolute() if use_absolute else obj.function
            times = fn.times
            values = fn.values
            slopes = fn.slopes
            # Object enters the sweep.
            rows.append((times[0], values[0], slopes[0]))
            # Interior knots: slope changes only.
            for j in range(1, times.size - 1):
                rows.append((times[j], 0.0, slopes[j] - slopes[j - 1]))
            # Object leaves the sweep.
            rows.append((times[-1], -values[-1], -slopes[-1]))
        events = np.asarray(rows, dtype=np.float64)
        order = np.argsort(events[:, 0], kind="stable")
        return events[order]

    # ------------------------------------------------------------------
    # updates (Section 4)
    # ------------------------------------------------------------------
    def append_segment(self, object_id: int, t_next: float, v_next: float) -> TemporalObject:
        """Append a segment to ``object_id`` at the current time frontier.

        Models the paper's update: a new segment extending ``g_i`` past
        its current right endpoint.  Returns the updated object.  Index
        structures built earlier are NOT updated automatically — their
        own ``append`` methods mirror this call.
        """
        idx = self._by_id.get(object_id)
        if idx is None:
            raise ReproError(f"no object with id {object_id}")
        updated = self._objects[idx].with_appended(t_next, v_next)
        self._objects[idx] = updated
        if t_next > self.t_max:
            self.t_max = t_next
        return updated

    # ------------------------------------------------------------------
    # sampling (scalability experiments)
    # ------------------------------------------------------------------
    def sample_objects(self, count: int, seed: int = 0) -> "TemporalDatabase":
        """A database over a random subset of ``count`` objects.

        Used by the "vary m" experiments (paper Figure 13), mirroring
        how the authors sampled subsets of Temp.
        """
        if count > self.num_objects:
            raise ReproError(f"cannot sample {count} of {self.num_objects} objects")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(self.num_objects, size=count, replace=False)
        picked = [self._objects[i] for i in sorted(chosen)]
        return TemporalDatabase(picked, span=self.span, pad=self.padded)

    def __repr__(self) -> str:
        return (
            f"TemporalDatabase(m={self.num_objects}, N={self.total_segments}, "
            f"span=[{self.t_min:g}, {self.t_max:g}])"
        )
