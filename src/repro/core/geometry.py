"""Line-segment geometry: interpolation and trapezoid integrals.

This module implements Equation (1) of the paper: the contribution of a
line segment ``l`` defined by ``(t0, v0)-(t1, v1)`` to the aggregate
score of its object over a query interval ``[a, b]`` is the area of the
trapezoid spanned by ``l`` restricted to ``[a, b] ∩ [t0, t1]``::

    sigma(I) = 0                                   if the overlap is empty
    sigma(I) = 1/2 (tR - tL) (l(tR) + l(tL))       otherwise

with ``tL = max(a, t0)`` and ``tR = min(b, t1)``.

Scalar and vectorized (numpy) variants are provided; index structures
use the vectorized forms on whole leaf blocks at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def interpolate(t0: float, v0: float, t1: float, v1: float, t: float) -> float:
    """Value of the line through ``(t0, v0)`` and ``(t1, v1)`` at ``t``.

    ``t`` is expected inside ``[t0, t1]``; a degenerate segment
    (``t0 == t1``) evaluates to ``v0``.
    """
    if t1 == t0:
        return v0
    w = (v1 - v0) / (t1 - t0)
    return v0 + w * (t - t0)


def segment_integral(
    t0: float, v0: float, t1: float, v1: float, a: float, b: float
) -> float:
    """Equation (1): integral of the segment's chord over ``[a, b]``.

    Returns 0 when ``[a, b]`` and ``[t0, t1]`` do not overlap.
    """
    t_left = max(a, t0)
    t_right = min(b, t1)
    if t_right <= t_left:
        return 0.0
    v_left = interpolate(t0, v0, t1, v1, t_left)
    v_right = interpolate(t0, v0, t1, v1, t_right)
    return 0.5 * (t_right - t_left) * (v_left + v_right)


def segment_integrals(
    t0: np.ndarray,
    v0: np.ndarray,
    t1: np.ndarray,
    v1: np.ndarray,
    a: float,
    b: float,
) -> np.ndarray:
    """Vectorized Equation (1) over arrays of segments.

    All four arrays must share a shape; the result has the same shape.
    Non-overlapping segments contribute exactly 0.
    """
    t0 = np.asarray(t0, dtype=np.float64)
    v0 = np.asarray(v0, dtype=np.float64)
    t1 = np.asarray(t1, dtype=np.float64)
    v1 = np.asarray(v1, dtype=np.float64)
    t_left = np.maximum(a, t0)
    t_right = np.minimum(b, t1)
    width = t_right - t_left
    overlap = width > 0
    span = t1 - t0
    # Avoid 0/0 on degenerate or non-overlapping segments.
    safe_span = np.where(span > 0, span, 1.0)
    slope = (v1 - v0) / safe_span
    v_left = v0 + slope * (t_left - t0)
    v_right = v0 + slope * (t_right - t0)
    area = 0.5 * width * (v_left + v_right)
    return np.where(overlap, area, 0.0)


@dataclass(frozen=True)
class Segment:
    """One linear piece ``g_{i,j}`` of a temporal object's score function.

    Attributes
    ----------
    t0, v0:
        Left endpoint ``(t_{i,j-1}, v_{i,j-1})``.
    t1, v1:
        Right endpoint ``(t_{i,j}, v_{i,j})``.
    """

    t0: float
    v0: float
    t1: float
    v1: float

    def __post_init__(self) -> None:
        if not self.t1 > self.t0:
            raise ValueError(f"segment must have t1 > t0, got [{self.t0}, {self.t1}]")

    @property
    def slope(self) -> float:
        """Rate of score change along this segment."""
        return (self.v1 - self.v0) / (self.t1 - self.t0)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def value(self, t: float) -> float:
        """Score at time ``t`` (``t`` should lie within the segment)."""
        return interpolate(self.t0, self.v0, self.t1, self.v1, t)

    def integral(self, a: float, b: float) -> float:
        """Equation (1) for this segment over ``[a, b]``."""
        return segment_integral(self.t0, self.v0, self.t1, self.v1, a, b)

    @property
    def area(self) -> float:
        """Integral over the segment's full extent."""
        return 0.5 * (self.t1 - self.t0) * (self.v0 + self.v1)


def solve_linear_mass(
    v_start: float, slope: float, target: float, max_dt: float
) -> float:
    """Smallest ``x >= 0`` with ``v_start*x + slope*x^2/2 == target``.

    This is the crossing-time equation used by both breakpoint
    constructions (Section 3.1): starting at some time with current
    summed value ``v_start`` and summed slope ``slope``, how far forward
    must the sweep move for the running integral to grow by ``target``?

    ``max_dt`` bounds the search to the current linear piece; if the
    accumulated mass over ``max_dt`` falls short of ``target`` the
    caller should not have called this function, and ``max_dt`` is
    returned defensively.

    The stable root form ``x = 2d / (v + sqrt(v^2 + 2*w*d))`` avoids the
    catastrophic cancellation of the textbook quadratic formula when the
    slope is small.
    """
    if target <= 0:
        return 0.0
    disc = v_start * v_start + 2.0 * slope * target
    if disc < 0:
        # Numerically below zero only via rounding at the piece boundary.
        disc = 0.0
    denom = v_start + np.sqrt(disc)
    if denom <= 0:
        # Mass is not attainable in this piece (flat zero or negative
        # start); signal with the piece bound.
        return max_dt
    x = 2.0 * target / denom
    return min(x, max_dt)
