"""Query descriptors for aggregate top-k queries."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import InvalidQueryError


@dataclass(frozen=True)
class TopKQuery:
    """``top-k(t1, t2, sigma)``: the paper's aggregate top-k query.

    Attributes
    ----------
    t1, t2:
        The closed query interval, ``t1 <= t2``.  ``t1 == t2`` recovers
        the *instant* top-k query of Li et al. as a degenerate case
        (every sum score is then 0 under integration; use the value
        aggregate of an instant query engine for that semantics).
    k:
        Number of objects to return (``1 <= k <= kmax`` for approximate
        structures built with budget ``kmax``).
    """

    t1: float
    t2: float
    k: int

    def __post_init__(self) -> None:
        if self.t2 < self.t1:
            raise InvalidQueryError(f"query interval reversed: [{self.t1}, {self.t2}]")
        if self.k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {self.k}")

    @property
    def length(self) -> float:
        """Interval length ``t2 - t1``."""
        return self.t2 - self.t1
