"""Query descriptors for aggregate top-k queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.errors import InvalidQueryError


def workload_arrays(queries) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize a workload into ``(t1s, t2s, ks)`` arrays.

    Accepts anything the batched entry points advertise: a ``(q, 3)``
    array of ``(t1, t2, k)`` rows, a sequence of such tuples, a
    sequence of :class:`TopKQuery`, or an object exposing
    ``t1s``/``t2s``/``ks`` arrays (the workload sampler's batch).
    Validation matches ``TopKQuery.__post_init__`` — reversed
    intervals and ``k < 1`` raise :class:`InvalidQueryError` — so a
    batch is rejected up front instead of failing mid-workload the way
    a scalar loop would.
    """
    if hasattr(queries, "t1s") and hasattr(queries, "ks"):
        t1s = np.asarray(queries.t1s, dtype=np.float64)
        t2s = np.asarray(queries.t2s, dtype=np.float64)
        ks = np.asarray(queries.ks, dtype=np.int64)
    elif len(queries) and isinstance(queries[0], TopKQuery):
        t1s = np.asarray([q.t1 for q in queries], dtype=np.float64)
        t2s = np.asarray([q.t2 for q in queries], dtype=np.float64)
        ks = np.asarray([q.k for q in queries], dtype=np.int64)
    else:
        table = np.asarray(queries, dtype=np.float64).reshape(-1, 3)
        t1s = table[:, 0].copy()
        t2s = table[:, 1].copy()
        ks = table[:, 2].astype(np.int64)
    if t1s.size != t2s.size or t1s.size != ks.size:
        raise InvalidQueryError("workload arrays must align")
    reversed_rows = np.flatnonzero(t2s < t1s)
    if reversed_rows.size:
        row = int(reversed_rows[0])
        raise InvalidQueryError(
            f"query interval reversed: [{t1s[row]}, {t2s[row]}] (row {row})"
        )
    if ks.size and int(ks.min()) < 1:
        raise InvalidQueryError(f"k must be >= 1, got {int(ks.min())}")
    return t1s, t2s, ks


@dataclass(frozen=True)
class TopKQuery:
    """``top-k(t1, t2, sigma)``: the paper's aggregate top-k query.

    Attributes
    ----------
    t1, t2:
        The closed query interval, ``t1 <= t2``.  ``t1 == t2`` recovers
        the *instant* top-k query of Li et al. as a degenerate case
        (every sum score is then 0 under integration; use the value
        aggregate of an instant query engine for that semantics).
    k:
        Number of objects to return (``1 <= k <= kmax`` for approximate
        structures built with budget ``kmax``).
    """

    t1: float
    t2: float
    k: int

    def __post_init__(self) -> None:
        if self.t2 < self.t1:
            raise InvalidQueryError(f"query interval reversed: [{self.t1}, {self.t2}]")
        if self.k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {self.k}")

    @property
    def length(self) -> float:
        """Interval length ``t2 - t1``."""
        return self.t2 - self.t1
