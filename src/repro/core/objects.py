"""Temporal objects: an id plus a piecewise score function."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plf import PiecewiseLinearFunction


@dataclass(frozen=True)
class TemporalObject:
    """Object ``o_i``: an identifier and its score function ``g_i``.

    Objects are value-like and immutable; updates (Section 4 appends)
    produce a new object via :meth:`with_appended`.
    """

    object_id: int
    function: PiecewiseLinearFunction
    label: str = field(default="", compare=False)

    @property
    def num_segments(self) -> int:
        """``n_i``: number of linear pieces in ``g_i``."""
        return self.function.num_segments

    @property
    def total_mass(self) -> float:
        """``sigma_i(0, T)``: full-span aggregate."""
        return self.function.total_mass

    def score(self, t1: float, t2: float) -> float:
        """``sigma_i(t1, t2)`` for ``sigma = sum``."""
        return self.function.integral(t1, t2)

    def with_appended(self, t_next: float, v_next: float) -> "TemporalObject":
        """New object with one segment appended at the current end."""
        return TemporalObject(
            self.object_id, self.function.with_appended(t_next, v_next), self.label
        )

    def __repr__(self) -> str:
        return f"TemporalObject(id={self.object_id}, n={self.num_segments})"
