"""Core temporal data model.

Implements the paper's data model (Section 1): piecewise linear score
functions, temporal objects and databases, aggregate functions, and
top-k answer sets — plus the Section 4 extensions (piecewise
polynomials, negative scores, avg/F2 aggregates, appends).
"""

from repro.core.aggregates import AVG, F2, SUM, Aggregate, AvgAggregate, F2Aggregate, SumAggregate
from repro.core.database import TemporalDatabase
from repro.core.errors import (
    BlockDeviceError,
    CoordinatorShutdown,
    DeadlineExceeded,
    IndexStateError,
    InvalidFunctionError,
    InvalidQueryError,
    NodeUnavailable,
    PartialResultError,
    PersistenceError,
    ReproError,
)
from repro.core.geometry import Segment, interpolate, segment_integral, segment_integrals
from repro.core.objects import TemporalObject
from repro.core.plf import PiecewiseLinearFunction, from_samples
from repro.core.plfstore import PLFStore
from repro.core.ppf import PiecewisePolynomialFunction, from_plf, square_plf
from repro.core.queries import TopKQuery
from repro.core.results import RankedItem, TopKResult, select_top_k, top_k_from_arrays

__all__ = [
    "Aggregate",
    "AvgAggregate",
    "F2Aggregate",
    "SumAggregate",
    "SUM",
    "AVG",
    "F2",
    "TemporalDatabase",
    "TemporalObject",
    "PiecewiseLinearFunction",
    "PiecewisePolynomialFunction",
    "PLFStore",
    "from_plf",
    "from_samples",
    "square_plf",
    "Segment",
    "interpolate",
    "segment_integral",
    "segment_integrals",
    "TopKQuery",
    "TopKResult",
    "RankedItem",
    "select_top_k",
    "top_k_from_arrays",
    "ReproError",
    "InvalidFunctionError",
    "InvalidQueryError",
    "IndexStateError",
    "BlockDeviceError",
    "PersistenceError",
    "NodeUnavailable",
    "DeadlineExceeded",
    "PartialResultError",
    "CoordinatorShutdown",
]
