"""Piecewise linear score functions with prefix-sum support.

A temporal object's score attribute is a piecewise linear function
``g_i`` given by knots ``(t_{i,0}, v_{i,0}), ..., (t_{i,n_i}, v_{i,n_i})``
(paper Section 1).  This module provides:

* evaluation and exact interval integration (the object's aggregate
  score ``sigma_i(t1, t2)`` for ``sigma = sum``),
* the prefix sums ``sigma_i(I_{i,l})`` that EXACT2/EXACT3 store
  (paper Section 2, Equation (2)),
* the cumulative-mass inverse used by the BREAKPOINTS2 sweep
  (paper Section 3.1),
* utilities for the extensions of Section 4 (absolute value for
  negative scores; squaring for the F2 aggregate).

Outside its own temporal span an object contributes score 0, which is
the natural reading of "the temporal range of any object is in [0, T]".

This class is the *per-object* interface.  Object-parallel hot paths
(query scoring, breakpoint sweeps, top-list materialization) should go
through the columnar batch kernel in :mod:`repro.core.plfstore`, whose
primitives reproduce this module's scalar arithmetic bit for bit.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.errors import InvalidFunctionError
from repro.core.geometry import Segment, solve_linear_mass


class PiecewiseLinearFunction:
    """An immutable piecewise linear function defined by its knots.

    Parameters
    ----------
    times:
        Strictly increasing knot times (length ``n + 1`` for ``n``
        segments, ``n >= 1``).
    values:
        Knot values, same length as ``times``.

    Notes
    -----
    The cumulative-integral array ``prefix_masses`` is computed lazily
    and cached; it makes ``integral`` and ``cumulative`` O(log n) via
    binary search, mirroring what EXACT2 precomputes on disk.
    """

    __slots__ = ("times", "values", "_prefix")

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        times_arr = np.asarray(times, dtype=np.float64)
        values_arr = np.asarray(values, dtype=np.float64)
        if times_arr.ndim != 1 or values_arr.ndim != 1:
            raise InvalidFunctionError("times and values must be 1-D")
        if times_arr.shape != values_arr.shape:
            raise InvalidFunctionError("times and values must have equal length")
        if times_arr.size < 2:
            raise InvalidFunctionError("a PLF needs at least two knots")
        if not np.all(np.diff(times_arr) > 0):
            raise InvalidFunctionError("knot times must be strictly increasing")
        if not (np.all(np.isfinite(times_arr)) and np.all(np.isfinite(values_arr))):
            raise InvalidFunctionError("knots must be finite")
        self.times = times_arr
        self.values = values_arr
        self._prefix: np.ndarray | None = None

    @classmethod
    def _trusted(
        cls,
        times: np.ndarray,
        values: np.ndarray,
        prefix: np.ndarray | None = None,
    ) -> "PiecewiseLinearFunction":
        """Wrap already-validated knot arrays without copying or checks.

        The mount path of the durable storage tier slices each object's
        knots (and its cumulative prefix, which restarts at 0 per
        object) zero-copy out of a memmapped segment that was written
        from validated functions — re-validating would fault every page
        in and re-deriving the prefix would break bit-identity with the
        persisted kernel arrays.  Never pass unchecked user data here.
        """
        self = cls.__new__(cls)
        self.times = times
        self.values = values
        self._prefix = prefix
        return self

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        """``n_i``: number of linear pieces."""
        return self.times.size - 1

    @property
    def start(self) -> float:
        """``t_{i,0}``: left end of the temporal span."""
        return float(self.times[0])

    @property
    def end(self) -> float:
        """``t_{i,n_i}``: right end of the temporal span."""
        return float(self.times[-1])

    @property
    def span(self) -> tuple[float, float]:
        return self.start, self.end

    def segment(self, index: int) -> Segment:
        """The ``index``-th linear piece (0-based), as a :class:`Segment`."""
        if not 0 <= index < self.num_segments:
            raise IndexError(f"segment index {index} out of range")
        return Segment(
            float(self.times[index]),
            float(self.values[index]),
            float(self.times[index + 1]),
            float(self.values[index + 1]),
        )

    def segments(self) -> Iterator[Segment]:
        """Iterate over all linear pieces in time order."""
        for j in range(self.num_segments):
            yield self.segment(j)

    @property
    def slopes(self) -> np.ndarray:
        """Per-segment slopes ``w_{i,l}`` (length ``n``)."""
        return np.diff(self.values) / np.diff(self.times)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def value(self, t: float) -> float:
        """``g_i(t)``; 0 outside the object's span."""
        if t < self.start or t > self.end:
            return 0.0
        return float(np.interp(t, self.times, self.values))

    def value_many(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value` (0 outside the span)."""
        ts = np.asarray(ts, dtype=np.float64)
        out = np.interp(ts, self.times, self.values)
        outside = (ts < self.start) | (ts > self.end)
        return np.where(outside, 0.0, out)

    # ------------------------------------------------------------------
    # integration (sigma = sum)
    # ------------------------------------------------------------------
    @property
    def prefix_masses(self) -> np.ndarray:
        """``sigma_i(I_{i,l})`` for ``l = 0..n``: cumulative integrals.

        ``prefix_masses[l]`` is the integral of ``g_i`` from ``t_{i,0}``
        to ``t_{i,l}`` — exactly the values EXACT2 attaches to its
        leaf-level data entries.
        """
        if self._prefix is None:
            widths = np.diff(self.times)
            areas = 0.5 * widths * (self.values[:-1] + self.values[1:])
            prefix = np.empty(self.times.size, dtype=np.float64)
            prefix[0] = 0.0
            np.cumsum(areas, out=prefix[1:])
            self._prefix = prefix
        return self._prefix

    @property
    def total_mass(self) -> float:
        """``sigma_i(0, T)``: the integral over the full span."""
        return float(self.prefix_masses[-1])

    def cumulative(self, t: float) -> float:
        """``C_i(t)``: integral of ``g_i`` from its start to ``t``.

        Clamped: returns 0 for ``t <= start`` and the total mass for
        ``t >= end``.  The difference of two cumulatives is the interval
        aggregate, which is how both the prefix-sum identity (Equation
        (2)) and the stabbing-query arithmetic of EXACT3 are realized.
        """
        if t <= self.start:
            return 0.0
        if t >= self.end:
            return self.total_mass
        j = int(np.searchsorted(self.times, t, side="right")) - 1
        seg = self.segment(j)
        prefix = self.prefix_masses
        return float(prefix[j] + seg.integral(seg.t0, t))

    def cumulative_many(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cumulative` (used by index construction)."""
        ts = np.asarray(ts, dtype=np.float64)
        clamped = np.clip(ts, self.start, self.end)
        j = np.searchsorted(self.times, clamped, side="right") - 1
        j = np.clip(j, 0, self.num_segments - 1)
        t0 = self.times[j]
        v0 = self.values[j]
        t1 = self.times[j + 1]
        v1 = self.values[j + 1]
        slope = (v1 - v0) / (t1 - t0)
        dt = clamped - t0
        partial = v0 * dt + 0.5 * slope * dt * dt
        return self.prefix_masses[j] + partial

    def integral(self, a: float, b: float) -> float:
        """``sigma_i(a, b)``: aggregate (sum) score over ``[a, b]``."""
        if b <= a:
            return 0.0
        return self.cumulative(b) - self.cumulative(a)

    # ------------------------------------------------------------------
    # inverse cumulative (BREAKPOINTS2 support)
    # ------------------------------------------------------------------
    def inverse_cumulative(self, target: float) -> float:
        """Smallest ``t`` with ``C_i(t) >= target``.

        Requires a nondecreasing cumulative, i.e. nonnegative scores
        (the breakpoint sweeps run on ``|g|`` when negatives are
        allowed; see :meth:`absolute`).  Returns ``inf`` when the total
        mass never reaches ``target``.
        """
        prefix = self.prefix_masses
        if target <= 0.0:
            return self.start
        if target > prefix[-1]:
            return float("inf")
        # A single left-biased binary search suffices: it returns the
        # last piece whose *starting* mass is strictly below the target,
        # which for zero-mass (flat) runs is the piece *before* the run
        # — exactly where the earliest crossing time lives.  (side=
        # "right" would land past the run and report a later time.)
        j = int(np.searchsorted(prefix, target, side="left")) - 1
        j = max(j, 0)
        seg = self.segment(j)
        need = target - float(prefix[j])
        dt = solve_linear_mass(seg.v0, seg.slope, need, seg.duration)
        return seg.t0 + dt

    # ------------------------------------------------------------------
    # Section 4 extensions
    # ------------------------------------------------------------------
    def absolute(self) -> "PiecewiseLinearFunction":
        """``|g_i|`` as a PLF, splitting segments at zero crossings.

        Used to define the mass ``M`` and breakpoint thresholds when
        scores may be negative (paper Section 4, "Negative values").

        Zero crossings are detected for all segments at once; a knot
        ``(t_cross, 0)`` is spliced in wherever a segment changes sign
        strictly inside its extent.
        """
        v0 = self.values[:-1]
        v1 = self.values[1:]
        cross = ((v0 < 0) & (0 < v1)) | ((v1 < 0) & (0 < v0))
        if not cross.any():
            return PiecewiseLinearFunction(self.times, np.abs(self.values))
        idx = np.flatnonzero(cross)
        t0 = self.times[idx]
        t1 = self.times[idx + 1]
        slope = (v1[idx] - v0[idx]) / (t1 - t0)
        t_cross = t0 - v0[idx] / slope
        strict = (t0 < t_cross) & (t_cross < t1)
        idx = idx[strict]
        t_cross = t_cross[strict]
        new_times = np.insert(self.times, idx + 1, t_cross)
        new_values = np.insert(np.abs(self.values), idx + 1, 0.0)
        return PiecewiseLinearFunction(new_times, new_values)

    def padded(self, t_min: float, t_max: float) -> "PiecewiseLinearFunction":
        """Extend the span to ``[t_min, t_max]`` with zero-score pieces.

        EXACT3's stabbing invariant ("each stabbing query returns
        exactly m entries") assumes every object covers ``[0, T]``;
        padding realizes that assumption without changing any aggregate.
        """
        if t_min > self.start or t_max < self.end:
            raise InvalidFunctionError("padded span must contain the current span")
        # Ramp width: narrow relative to the padded span (negligible
        # added mass) but wide enough that ramp slopes stay numerically
        # benign — absolute-tiny ramps create ~1e10+ slopes that wreck
        # the breakpoint sweeps' running sums.  Boundary gaps below the
        # resolution floor are not padded at all (an object starting
        # within span*1e-12 of the domain edge effectively starts at
        # the edge; padding it would require a near-infinite slope).
        span = t_max - t_min
        ramp = span * _PAD_RAMP_FRACTION
        floor = span * _PAD_RESOLUTION_FRACTION
        times = list(self.times)
        values = list(self.values)
        if t_min < self.start and (self.start - t_min) > floor:
            prepend_t = [t_min]
            prepend_v = [0.0]
            eps = min((self.start - t_min) * 0.5, ramp)
            knot = self.start - eps
            if values[0] != 0.0 and t_min < knot < self.start:
                prepend_t.append(knot)
                prepend_v.append(0.0)
            times = prepend_t + times
            values = prepend_v + values
        if t_max > self.end and (t_max - self.end) > floor:
            append_t = []
            append_v = []
            eps = min((t_max - self.end) * 0.5, ramp)
            knot = self.end + eps
            if values[-1] != 0.0 and self.end < knot < t_max:
                append_t.append(knot)
                append_v.append(0.0)
            append_t.append(t_max)
            append_v.append(0.0)
            times = times + append_t
            values = values + append_v
        return PiecewiseLinearFunction(times, values)

    def restricted(self, a: float, b: float) -> "PiecewiseLinearFunction | None":
        """The function clipped to ``[a, b]``, or None when disjoint.

        Boundary knots are interpolated so integrals over any
        subinterval of ``[a, b]`` are unchanged.  Used by the
        time-partitioned distributed setting, where each node stores
        one temporal slice of every object.
        """
        lo = max(a, self.start)
        hi = min(b, self.end)
        if hi <= lo:
            return None
        inner = (self.times > lo) & (self.times < hi)
        times = np.concatenate([[lo], self.times[inner], [hi]])
        values = np.concatenate(
            [[self.value(lo)], self.values[inner], [self.value(hi)]]
        )
        return PiecewiseLinearFunction(times, values)

    def with_appended(self, t_next: float, v_next: float) -> "PiecewiseLinearFunction":
        """A new PLF with one extra knot at the end (Section 4 updates)."""
        if t_next <= self.end:
            raise InvalidFunctionError("appended knot must extend the span")
        times = np.append(self.times, t_next)
        values = np.append(self.values, v_next)
        return PiecewiseLinearFunction(times, values)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __getstate__(self):
        # Standard slot-state format, minus the derived prefix cache:
        # it is recomputed (bit-identically) on demand, and dropping it
        # keeps persisted databases/indexes ~1/3 smaller.
        return (None, {"times": self.times, "values": self.values})

    def __setstate__(self, state) -> None:
        _, slots = state
        self.times = slots["times"]
        self.values = slots["values"]
        # Files written before the cache was excluded may carry it.
        self._prefix = slots.get("_prefix")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PiecewiseLinearFunction):
            return NotImplemented
        return bool(
            np.array_equal(self.times, other.times)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"PiecewiseLinearFunction(n={self.num_segments}, "
            f"span=[{self.start:g}, {self.end:g}])"
        )


#: Zero-ramp width inserted by :meth:`PiecewiseLinearFunction.padded`
#: (when the function does not already end at score zero), as a
#: fraction of the padded span.
_PAD_RAMP_FRACTION = 1e-7

#: Boundary gaps narrower than this fraction of the padded span are
#: left unpadded (see :meth:`PiecewiseLinearFunction.padded`).
_PAD_RESOLUTION_FRACTION = 1e-12


def from_samples(times: Sequence[float], values: Sequence[float]) -> PiecewiseLinearFunction:
    """Connect consecutive readings into a PLF (the paper's preprocessing).

    Duplicate timestamps are collapsed (keeping the last value), exactly
    as one must when ingesting raw sensor feeds.
    """
    times_arr = np.asarray(times, dtype=np.float64)
    values_arr = np.asarray(values, dtype=np.float64)
    order = np.argsort(times_arr, kind="stable")
    times_arr = times_arr[order]
    values_arr = values_arr[order]
    keep = np.ones(times_arr.size, dtype=bool)
    keep[:-1] = np.diff(times_arr) > 0
    return PiecewiseLinearFunction(times_arr[keep], values_arr[keep])
