"""Top-k answer sets and the bounded priority queue used to build them.

``A(k, t1, t2)`` in the paper is an *ordered* set of object ids with
their aggregate scores.  :class:`TopKResult` is that answer; ties are
broken by object id so exact methods agree bit-for-bit with the brute
force and with each other (needed for the exactness test suite).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, NamedTuple, Sequence


class RankedItem(NamedTuple):
    """One entry of a top-k answer: an object id with its score.

    A named tuple (not a dataclass): the batched query pipelines
    build tens of thousands of these per workload, and tuple
    construction skips the frozen-dataclass ``object.__setattr__``
    per field.  Field access, ``obj_id, score = item`` unpacking,
    equality, and repr are unchanged.
    """

    object_id: int
    score: float


@dataclass(frozen=True)
class TopKResult:
    """An ordered top-k answer ``A(k, t1, t2)`` (or its approximation).

    Items are sorted by descending score, object id ascending on ties.
    """

    items: tuple = field(default_factory=tuple)

    @staticmethod
    def from_pairs(pairs: Iterable) -> "TopKResult":
        """Build from ``(object_id, score)`` pairs (any order)."""
        ranked = sorted(
            (RankedItem(int(o), float(s)) for o, s in pairs),
            key=lambda it: (-it.score, it.object_id),
        )
        return TopKResult(tuple(ranked))

    @property
    def object_ids(self) -> list:
        """Answer object ids in rank order."""
        return [it.object_id for it in self.items]

    @property
    def scores(self) -> list:
        """Answer scores in rank order."""
        return [it.score for it in self.items]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[RankedItem]:
        return iter(self.items)

    def __getitem__(self, rank: int) -> RankedItem:
        """``A(j)``: the item at (0-based) rank ``rank``."""
        return self.items[rank]

    def truncated(self, k: int) -> "TopKResult":
        """The top-``k`` prefix of this answer."""
        return TopKResult(self.items[:k])


def select_top_k(pairs: Iterable, k: int) -> TopKResult:
    """Keep the k highest-scoring ``(object_id, score)`` pairs.

    This is the size-k priority queue every method's last step pushes
    into (paper Section 2); ``O(m log k)`` time, ties by object id.
    """
    if k <= 0:
        return TopKResult()
    heap: list = []  # min-heap of (score, -object_id)
    for object_id, score in pairs:
        entry = (float(score), -int(object_id))
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
    ordered = sorted(heap, key=lambda e: (-e[0], -e[1]))
    return TopKResult(tuple(RankedItem(-neg_id, score) for score, neg_id in ordered))


def top_k_from_arrays(object_ids: Sequence[int], scores: Sequence[float], k: int) -> TopKResult:
    """Vectorized top-k over parallel arrays (numpy-friendly path)."""
    import numpy as np

    ids = np.asarray(object_ids)
    vals = np.asarray(scores, dtype=np.float64)
    if ids.size == 0 or k <= 0:
        return TopKResult()
    k = min(k, ids.size)
    # The answer is the k-prefix of the full lexicographic order
    # (descending score, ascending id) so boundary ties resolve
    # identically across every method.  When k is a small fraction of
    # the pool, an argpartition with canonical boundary-tie repair
    # (the ``top_kmax_of_column`` selection, which provably picks the
    # same k) avoids sorting the whole pool — the batched query
    # pipelines build thousands of answers per workload.
    if 4 * k <= ids.size:
        neg = -vals
        chosen = np.argpartition(neg, k - 1)[:k]
        boundary = neg[chosen].max()
        tied_inside = int(np.count_nonzero(neg[chosen] == boundary))
        tied_total = int(np.count_nonzero(neg == boundary))
        if tied_total != tied_inside:
            below = np.flatnonzero(neg < boundary)
            tied = np.flatnonzero(neg == boundary)
            tied = tied[np.argsort(ids[tied], kind="stable")]
            chosen = np.concatenate([below, tied[: k - below.size]])
        order = chosen[np.lexsort((ids[chosen], neg[chosen]))]
    else:
        order = np.lexsort((ids, -vals))[:k]
    # tolist() converts to native int/float in one C pass.
    top_ids = ids[order].tolist()
    top_vals = vals[order].tolist()
    return TopKResult(tuple(map(RankedItem, top_ids, top_vals)))
