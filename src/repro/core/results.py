"""Top-k answer sets and the bounded priority queue used to build them.

``A(k, t1, t2)`` in the paper is an *ordered* set of object ids with
their aggregate scores.  :class:`TopKResult` is that answer; ties are
broken by object id so exact methods agree bit-for-bit with the brute
force and with each other (needed for the exactness test suite).

Columnar representation
-----------------------
A result stores its answer as two parallel native lists — ``(ids,
scores)`` in rank order — and materializes the :class:`RankedItem`
tuples only when :attr:`TopKResult.items` (or iteration/indexing) is
actually touched.  The batched query pipelines construct thousands of
answers per workload and most are only ever *compared* (equivalence
suites) or reduced again (distributed merges), so skipping the tuple
construction removes the shared answer-construction floor both the
scalar and batched serving paths used to pay (the k<=50 ratio caveat
of the PR 4 bench).  Equality, ordering of fields, repr, and pickling
are unchanged observable behavior.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, NamedTuple, Optional, Sequence


class RankedItem(NamedTuple):
    """One entry of a top-k answer: an object id with its score.

    A named tuple (not a dataclass): the batched query pipelines
    build tens of thousands of these per workload, and tuple
    construction skips the frozen-dataclass ``object.__setattr__``
    per field.  Field access, ``obj_id, score = item`` unpacking,
    equality, and repr are unchanged.
    """

    object_id: int
    score: float


class TopKResult:
    """An ordered top-k answer ``A(k, t1, t2)`` (or its approximation).

    Items are sorted by descending score, object id ascending on ties.
    Value-like and immutable by convention: nothing mutates a result
    after construction, and equality compares the ranked ``(id,
    score)`` columns (bitwise on scores), never object identity.
    """

    __slots__ = ("_ids", "_scores", "_items", "_coverage")

    def __init__(self, items: Iterable = ()) -> None:
        items = tuple(items)
        self._items: Optional[tuple] = items
        self._ids: Optional[list] = None
        self._scores: Optional[list] = None
        self._coverage: float = 1.0

    @classmethod
    def from_columns(cls, ids: list, scores: list) -> "TopKResult":
        """Adopt already-ranked parallel ``(ids, scores)`` lists.

        The columnar constructor of the batch kernels: ``ids`` and
        ``scores`` must be native-typed lists in canonical rank order
        (descending score, ascending id on ties) — typically straight
        from ``ndarray.tolist()``.  The lists are adopted, not copied;
        callers hand over ownership.
        """
        result = cls.__new__(cls)
        result._items = None
        result._ids = ids
        result._scores = scores
        result._coverage = 1.0
        return result

    # ------------------------------------------------------------------
    # degradation annotation (fault-tolerant serving)
    # ------------------------------------------------------------------
    @property
    def coverage(self) -> float:
        """Fraction of the relevant data this answer was computed over.

        ``1.0`` is a full answer; anything less means some partition
        had no surviving replica and the coordinator returned a
        best-effort answer over the survivors.
        """
        return self._coverage

    @property
    def degraded(self) -> bool:
        """True when this is a partial (best-effort) answer."""
        return self._coverage < 1.0

    def with_coverage(self, coverage: float) -> "TopKResult":
        """This answer annotated with ``coverage`` (columns shared).

        Coverage is an annotation, not part of the answer's value:
        equality and hashing still compare the ranked columns only, so
        a degraded answer that happens to match the full one compares
        equal to it (the property the failover equivalence suites
        exercise).
        """
        coverage = float(coverage)
        if coverage >= 1.0:
            return self
        result = TopKResult.__new__(TopKResult)
        result._items = self._items
        result._ids = self._ids
        result._scores = self._scores
        result._coverage = coverage
        return result

    @staticmethod
    def from_pairs(pairs: Iterable) -> "TopKResult":
        """Build from ``(object_id, score)`` pairs (any order)."""
        ranked = sorted(
            (RankedItem(int(o), float(s)) for o, s in pairs),
            key=lambda it: (-it.score, it.object_id),
        )
        return TopKResult(ranked)

    # ------------------------------------------------------------------
    # columns (primary storage) and items (materialized on demand)
    # ------------------------------------------------------------------
    def _columns(self) -> tuple:
        """The internal ``(ids, scores)`` lists (derived once if needed)."""
        if self._ids is None:
            self._ids = [it[0] for it in self._items]
            self._scores = [it[1] for it in self._items]
        return self._ids, self._scores

    @property
    def items(self) -> tuple:
        """The ranked :class:`RankedItem` tuples (materialized lazily)."""
        if self._items is None:
            self._items = tuple(map(RankedItem, self._ids, self._scores))
        return self._items

    @property
    def object_ids(self) -> list:
        """Answer object ids in rank order (a fresh list)."""
        return list(self._columns()[0])

    @property
    def scores(self) -> list:
        """Answer scores in rank order (a fresh list)."""
        return list(self._columns()[1])

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._ids is not None:
            return len(self._ids)
        return len(self._items)

    def __iter__(self) -> Iterator[RankedItem]:
        return iter(self.items)

    def __getitem__(self, rank):
        """``A(j)``: the item at (0-based) rank ``rank``."""
        if isinstance(rank, slice):
            return self.items[rank]
        if self._ids is not None:
            return RankedItem(self._ids[rank], self._scores[rank])
        return self._items[rank]

    def __eq__(self, other) -> bool:
        if not isinstance(other, TopKResult):
            return NotImplemented
        mine = self._columns()
        theirs = other._columns()
        return mine[0] == theirs[0] and mine[1] == theirs[1]

    def __hash__(self) -> int:
        return hash(self.items)

    def __repr__(self) -> str:
        return f"TopKResult(items={self.items!r})"

    # ------------------------------------------------------------------
    # derived answers
    # ------------------------------------------------------------------
    def truncated(self, k: int) -> "TopKResult":
        """The top-``k`` prefix of this answer."""
        if self._ids is not None:
            result = TopKResult.from_columns(self._ids[:k], self._scores[:k])
        else:
            result = TopKResult(self._items[:k])
        return result.with_coverage(self._coverage)

    # ------------------------------------------------------------------
    # pickling (__slots__ classes need explicit state plumbing)
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple:
        ids, scores = self._columns()
        # Full answers keep the historical 2-tuple state (byte-stable
        # pickles); only degraded answers carry the annotation.
        if self._coverage >= 1.0:
            return (ids, scores)
        return (ids, scores, self._coverage)

    def __setstate__(self, state: tuple) -> None:
        self._items = None
        if len(state) == 2:
            self._ids, self._scores = state
            self._coverage = 1.0
        else:
            self._ids, self._scores, self._coverage = state


def select_top_k(pairs: Iterable, k: int) -> TopKResult:
    """Keep the k highest-scoring ``(object_id, score)`` pairs.

    This is the size-k priority queue every method's last step pushes
    into (paper Section 2); ``O(m log k)`` time, ties by object id.
    """
    if k <= 0:
        return TopKResult()
    heap: list = []  # min-heap of (score, -object_id)
    for object_id, score in pairs:
        entry = (float(score), -int(object_id))
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
    ordered = sorted(heap, key=lambda e: (-e[0], -e[1]))
    return TopKResult.from_columns(
        [-neg_id for _, neg_id in ordered], [score for score, _ in ordered]
    )


def top_k_order(object_ids, scores, k: int):
    """Positions of the canonical top ``k`` of parallel arrays.

    The canonical answer order is the ``k``-prefix of the full
    lexicographic order (descending score, ascending id on ties) —
    a *total* order when ids are unique, so the returned prefix is
    uniquely determined and any longer prefix extends it without
    reshuffling (the invariant the TA prefix lists lazily extend on).
    When ``k`` is a small fraction of the pool, an argpartition with
    canonical boundary-tie repair (the ``top_kmax_of_column``
    selection, which provably picks the same k) avoids sorting the
    whole pool.
    """
    import numpy as np

    ids = np.asarray(object_ids)
    vals = np.asarray(scores, dtype=np.float64)
    if ids.size == 0 or k <= 0:
        return np.empty(0, dtype=np.int64)
    k = min(k, ids.size)
    if 4 * k <= ids.size:
        neg = -vals
        chosen = np.argpartition(neg, k - 1)[:k]
        boundary = neg[chosen].max()
        tied_inside = int(np.count_nonzero(neg[chosen] == boundary))
        tied_total = int(np.count_nonzero(neg == boundary))
        if tied_total != tied_inside:
            below = np.flatnonzero(neg < boundary)
            tied = np.flatnonzero(neg == boundary)
            tied = tied[np.argsort(ids[tied], kind="stable")]
            chosen = np.concatenate([below, tied[: k - below.size]])
        return chosen[np.lexsort((ids[chosen], neg[chosen]))]
    return np.lexsort((ids, -vals))[:k]


def top_k_from_arrays(object_ids: Sequence[int], scores: Sequence[float], k: int) -> TopKResult:
    """Vectorized top-k over parallel arrays (numpy-friendly path)."""
    import numpy as np

    ids = np.asarray(object_ids)
    vals = np.asarray(scores, dtype=np.float64)
    if ids.size == 0 or k <= 0:
        return TopKResult()
    order = top_k_order(ids, vals, k)
    # tolist() converts to native int/float in one C pass; the lists
    # are adopted by the columnar result as-is.
    return TopKResult.from_columns(ids[order].tolist(), vals[order].tolist())


# ----------------------------------------------------------------------
# distributed merges (scatter-gather coordinators)
# ----------------------------------------------------------------------
def merge_top_k(shards: Sequence[TopKResult], k: int) -> TopKResult:
    """Columnar k-way merge of per-shard canonical answers.

    Each shard result is already in canonical rank order; the merged
    answer is the canonical top-``k`` of the union — exactly what
    :func:`select_top_k` over the concatenated ``(id, score)`` pairs
    returns, but computed on the answer *columns* without ever
    materializing :class:`RankedItem` tuples.  Object ids must be
    unique across shards (object-partitioned clusters).
    """
    import numpy as np

    ids: List[int] = []
    scores: List[float] = []
    for shard in shards:
        shard_ids, shard_scores = shard._columns()
        ids.extend(shard_ids)
        scores.extend(shard_scores)
    return top_k_from_arrays(
        np.asarray(ids, dtype=np.int64),
        np.asarray(scores, dtype=np.float64),
        k,
    )


def merge_top_k_many(
    per_shard_results: Sequence[Sequence[TopKResult]], ks: Sequence[int]
) -> List[TopKResult]:
    """Batched :func:`merge_top_k`: merge a whole workload's shard answers.

    ``per_shard_results[s][j]`` is shard ``s``'s local answer to query
    ``j``; the return value holds, per query, the canonical top
    ``ks[j]`` of the union of its shard answers — row ``j`` is
    identical to ``merge_top_k([r[j] for r in shards], ks[j])``.  All
    queries are merged in one ragged batch pass
    (:func:`repro.approximate.toplists.top_k_ragged`, imported at call
    time: ``toplists`` imports this module), so the coordinator's
    merge is as batched as the node answers it combines.
    """
    import numpy as np

    from repro.approximate.toplists import top_k_ragged

    pools = []
    for j in range(len(ks)):
        ids: List[int] = []
        scores: List[float] = []
        for results in per_shard_results:
            shard_ids, shard_scores = results[j]._columns()
            ids.extend(shard_ids)
            scores.extend(shard_scores)
        pools.append(
            (
                np.asarray(ids, dtype=np.int64),
                np.asarray(scores, dtype=np.float64),
            )
        )
    return top_k_ragged(pools, ks)
