"""Aggregation functions ``sigma`` (paper Sections 1 and 4).

The paper's primary aggregate is ``sum`` (the time integral of the
score).  Section 4 notes that ``avg`` and other aggregations expressible
through sums — such as F2, the second frequency moment — follow
directly.  Each :class:`Aggregate` knows how to:

* compute the exact interval score of a PLF (``interval``),
* compute a single segment's contribution to a scan (``segment_
  contribution``; used by EXACT1's sequential scan),
* post-process a raw sum into the final score (``finalize``; identity
  for ``sum``, division by interval length for ``avg``).

Holistic aggregates (quantiles/median) are NOT supported — the paper
explicitly leaves them open.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.plf import PiecewiseLinearFunction
from repro.core.geometry import segment_integral


class Aggregate(ABC):
    """Interface for interval aggregation functions."""

    #: Short name used in reports ("sum", "avg", "f2").
    name: str = "abstract"

    #: True when ``interval`` is ``finalize`` applied to the plain
    #: integral of ``g`` — which lets the columnar kernel batch-score
    #: all objects from cumulative masses alone (sum, avg).  F2 needs
    #: the integral of ``g^2`` and stays on the per-object path.
    #: Sum/avg expose this as a property that turns itself off when a
    #: subclass overrides ``interval`` (the batched paths would bypass
    #: the override).
    linear_in_sum: bool = False

    @abstractmethod
    def interval(self, function: PiecewiseLinearFunction, a: float, b: float) -> float:
        """Exact aggregate score of ``function`` over ``[a, b]``."""

    @abstractmethod
    def segment_contribution(
        self, t0: float, v0: float, t1: float, v1: float, a: float, b: float
    ) -> float:
        """Raw contribution of one segment to a running scan."""

    def finalize(self, raw: float, a: float, b: float) -> float:
        """Convert an accumulated raw sum into the final score."""
        return raw

    def finalize_many(self, raw: np.ndarray, a: float, b: float) -> np.ndarray:
        """Vectorized :meth:`finalize` over an array of raw sums.

        The base implementation delegates elementwise to
        :meth:`finalize` so subclasses that override only the scalar
        form stay correct on the batched paths; sum/avg provide truly
        vectorized overrides.
        """
        return np.asarray(
            [self.finalize(float(x), a, b) for x in np.asarray(raw)],
            dtype=np.float64,
        )


class SumAggregate(Aggregate):
    """``sigma = sum``: the integral of the score over the interval."""

    name = "sum"

    @property
    def linear_in_sum(self) -> bool:
        # Kernel batch paths compute finalize(integral); that stands in
        # for interval() only while interval keeps its defining form.
        return type(self).interval is SumAggregate.interval

    def interval(self, function: PiecewiseLinearFunction, a: float, b: float) -> float:
        # Route through finalize (identity here) so a subclass that
        # overrides only finalize sees the same scores on this scalar
        # path as on the kernel-batched finalize(integral) path.
        return self.finalize(function.integral(a, b), a, b)

    def segment_contribution(
        self, t0: float, v0: float, t1: float, v1: float, a: float, b: float
    ) -> float:
        return segment_integral(t0, v0, t1, v1, a, b)

    def finalize_many(self, raw: np.ndarray, a: float, b: float) -> np.ndarray:
        # Vectorized identity — but only while finalize really is the
        # identity; a subclass overriding the scalar form falls back to
        # the base class's correct elementwise delegation.
        if type(self).finalize is not Aggregate.finalize:
            return super().finalize_many(raw, a, b)
        return np.asarray(raw, dtype=np.float64)


class AvgAggregate(Aggregate):
    """``sigma = avg``: sum divided by the interval length.

    Because avg is a fixed linear rescaling of sum for a given query,
    every index built for sum answers avg queries by finalization alone
    — which is exactly the paper's argument for supporting it.
    """

    name = "avg"

    @property
    def linear_in_sum(self) -> bool:
        # Same guard as sum: an overridden interval() must be honored.
        return type(self).interval is AvgAggregate.interval

    def interval(self, function: PiecewiseLinearFunction, a: float, b: float) -> float:
        return self.finalize(function.integral(a, b), a, b)

    def segment_contribution(
        self, t0: float, v0: float, t1: float, v1: float, a: float, b: float
    ) -> float:
        return segment_integral(t0, v0, t1, v1, a, b)

    def finalize(self, raw: float, a: float, b: float) -> float:
        width = b - a
        if width <= 0:
            return 0.0
        return raw / width

    def finalize_many(self, raw: np.ndarray, a: float, b: float) -> np.ndarray:
        # Vectorized counterpart of finalize above; as with sum, a
        # subclass overriding the scalar form gets the safe delegation.
        if type(self).finalize is not AvgAggregate.finalize:
            return Aggregate.finalize_many(self, raw, a, b)
        width = b - a
        if width <= 0:
            return np.zeros_like(np.asarray(raw, dtype=np.float64))
        return np.asarray(raw, dtype=np.float64) / width


class F2Aggregate(Aggregate):
    """``sigma = F2``: the integral of the squared score.

    On a linear piece ``g(x) = v0 + w (x - t0)`` the antiderivative of
    ``g^2`` is ``g^3 / (3 w)`` (or ``v0^2 x`` when flat), giving a
    closed-form per-segment contribution — the "piecewise polynomial"
    route of Section 4 specialized to degree 2.
    """

    name = "f2"

    def interval(self, function: PiecewiseLinearFunction, a: float, b: float) -> float:
        total = 0.0
        for seg in function.segments():
            total += self.segment_contribution(
                seg.t0, seg.v0, seg.t1, seg.v1, a, b
            )
        return total

    def segment_contribution(
        self, t0: float, v0: float, t1: float, v1: float, a: float, b: float
    ) -> float:
        left = max(a, t0)
        right = min(b, t1)
        if right <= left:
            return 0.0
        w = (v1 - v0) / (t1 - t0)
        if w == 0.0:
            return v0 * v0 * (right - left)
        g_left = v0 + w * (left - t0)
        g_right = v0 + w * (right - t0)
        return (g_right**3 - g_left**3) / (3.0 * w)


#: Default aggregate used throughout (the paper's focus).
SUM = SumAggregate()
AVG = AvgAggregate()
F2 = F2Aggregate()
