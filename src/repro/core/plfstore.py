"""Columnar (CSR) store of piecewise linear functions: the batch kernel.

Every hot path of the paper's methods — scoring the ``m`` candidate
objects of a ``top-k(t1, t2)`` query, the BREAKPOINTS1/2 construction
sweeps, top-list materialization, instant ranking — ultimately asks the
same question of *every* object at once: "what is your cumulative mass
(or value) at time ``t``?".  Answering it through ``m`` separate
:class:`~repro.core.plf.PiecewiseLinearFunction` objects pays Python
attribute/``searchsorted`` overhead per object per operation.

:class:`PLFStore` packs all objects' knots into flat CSR-style NumPy
arrays (concatenated ``knot_times`` / ``knot_values``, per-object
``offsets``, precomputed concatenated ``prefix_masses`` and per-segment
``slopes``) and answers the question for all objects in a handful of
vectorized operations:

* :meth:`cumulative_at` — ``C_i(t)`` for every object: one batched
  binary search (``O(m log n)`` work, ~10 NumPy kernels),
* :meth:`integrals` / :meth:`integrals_many` — exact interval
  aggregates for one query or a whole workload,
* :meth:`masses_between` — per-object masses over a breakpoint grid
  (the ``P`` matrix of the QUERY1/QUERY2 constructions),
* :meth:`inverse_cumulative_many` — per-object crossing times
  ``F_i^{-1}(target_i)`` (the BREAKPOINTS2 reset step),
* :meth:`values_at` — ``g_i(t)`` for instant top-k,
* :meth:`top_k` / :meth:`top_k_many` — batched query answering.

Numerical contract
------------------
Every primitive replicates the *scalar* per-object arithmetic of
``PiecewiseLinearFunction`` operation for operation (same piece
selection, same trapezoid formula, same stable quadratic root), so
batch results are bit-identical to the per-object reference.  This is
what lets the breakpoint sweeps route through the kernel and still
produce byte-identical breakpoint sets.

When to use which
-----------------
Per-object PLFs remain the right interface for *single-object* work
(appends, restriction, one-off integrals) and for algorithms that
touch few objects per step (the segment-driven BREAKPOINTS2 sweep).
The store is for *object-parallel* work: anything that loops "for each
object" at query or construction time should go through it.  Stores
are immutable snapshots; after appending segments to the database,
build a fresh store (``TemporalDatabase`` caches and invalidates one
for you).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core import buildcount
from repro.core.errors import ReproError
from repro.core.plf import PiecewiseLinearFunction
from repro.core.results import TopKResult, top_k_from_arrays

#: Cap on temporary elements per chunk in batched many-query kernels;
#: bounds peak memory of (q, m) broadcasts to ~a few hundred MB.
_CHUNK_ELEMENTS = 4 << 20

#: Chunk sizes at or above this locate pieces via the count-matrix
#: pass (one global searchsorted + histogram cumsum) instead of the
#: broadcast bisection; results are bit-identical, only speed differs.
_COUNT_LOCATE_MIN_QUERIES = 16


def isin_sorted(sorted_values: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Exact membership of each query in an ascending-sorted array.

    The batched query pipelines use this to detect knot-coincident
    query times (which the modeled stab arithmetic routes through the
    scalar path); one ``searchsorted`` replaces ``np.isin``'s per-call
    sort of the haystack.
    """
    queries = np.asarray(queries, dtype=np.float64)
    idx = np.searchsorted(sorted_values, queries)
    clamped = np.minimum(idx, sorted_values.size - 1)
    return (idx < sorted_values.size) & (sorted_values[clamped] == queries)


class CSRView:
    """A picklable, shareable view of a store's CSR kernel arrays.

    Process-pool build workers need the batch kernels without the
    ``m`` Python function objects (and their lazy caches) a full
    :class:`PLFStore` drags along: the view bundles exactly the seven
    flat arrays the kernels read, so it pickles cheaply on spawn
    platforms and is inherited copy-on-write under fork.  It exposes
    the two primitives the parallel BREAKPOINTS2 sweep fans out —
    both over an optional contiguous object range ``[lo, hi)``, so
    each worker computes only its own slice.

    The arithmetic here *is* the store's (:class:`PLFStore` delegates
    to its cached view), and every operation is elementwise per
    object, so range results are byte-identical slices of the
    full-store answers.
    """

    __slots__ = (
        "knot_times",
        "knot_values",
        "offsets",
        "prefix_masses",
        "starts",
        "ends",
        "totals",
        "segment",
    )

    def __init__(
        self,
        knot_times: np.ndarray,
        knot_values: np.ndarray,
        offsets: np.ndarray,
        prefix_masses: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        totals: np.ndarray,
        segment: Optional[str] = None,
    ) -> None:
        self.knot_times = knot_times
        self.knot_values = knot_values
        self.offsets = offsets
        self.prefix_masses = prefix_masses
        self.starts = starts
        self.ends = ends
        self.totals = totals
        # Path of the on-disk store segment backing these arrays, when
        # they were mounted (repro.storage.segments) rather than built
        # in memory.  Segment-backed views pickle as just this path —
        # see __reduce__ — so process fan-out ships no array bytes.
        self.segment = segment

    def __reduce__(self):
        if self.segment is not None:
            from repro.storage.segments import open_csr_view

            return (open_csr_view, (self.segment,))
        return (
            CSRView,
            (
                self.knot_times,
                self.knot_values,
                self.offsets,
                self.prefix_masses,
                self.starts,
                self.ends,
                self.totals,
            ),
        )

    @property
    def num_objects(self) -> int:
        """``m``."""
        return int(self.offsets.size - 1)

    def _locate(self, tc: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Flat knot index of the segment containing each clamped time.

        ``tc`` must broadcast to ``(..., hi - lo)`` and satisfy
        ``starts <= tc <= ends`` elementwise over objects
        ``[lo, hi)``.  Returns, per entry, the largest knot index
        ``j`` within the object's segment-left range with
        ``knot_times[j] <= tc`` — the same piece the scalar
        ``searchsorted(times, t, "right") - 1`` selects.  Implemented
        as a shared bisection over the CSR arrays: ``O(log max_n)``
        vectorized rounds instead of per-object Python searches.
        """
        shape = tc.shape
        low = np.broadcast_to(self.offsets[lo:hi], shape).copy()
        # Restrict to segment-left knots so ``j`` always names a piece
        # (times at an object's end map to its last piece with dt = 0
        # before the boundary masks take over).
        high = np.broadcast_to(self.offsets[lo + 1 : hi + 1] - 2, shape).copy()
        while True:
            active = low < high
            if not active.any():
                break
            mid = (low + high + 1) >> 1
            go_up = active & (self.knot_times[mid] <= tc)
            go_down = active & ~go_up
            low[go_up] = mid[go_up]
            high[go_down] = mid[go_down] - 1
        return low

    def locate_grid(self, tc: np.ndarray) -> np.ndarray:
        """:meth:`_locate` for a clamped ``(q, m)`` grid of times.

        Identical index selection (largest segment-left knot with time
        <= ``tc``, clamped to the object's piece range) computed with
        one ``searchsorted`` per object over its own knots instead of
        the ``(q, m)`` broadcast bisection — much faster when ``q``
        is small relative to the knot counts, exactly like
        :meth:`PLFStore.cumulative_at_grid`.  The batched query
        pipelines (EXACT3, instant) locate whole workloads with this.
        """
        q, m = tc.shape
        located = np.empty((m, q), dtype=np.int64)
        knot_times = self.knot_times
        offsets = self.offsets.tolist()
        # Transposed so every per-object searchsorted reads and writes
        # one contiguous lane.
        tc_t = np.ascontiguousarray(tc.T)
        for i in range(m):
            lo = offsets[i]
            hi = offsets[i + 1]
            row = located[i]
            np.add(
                knot_times[lo:hi].searchsorted(tc_t[i], "right"),
                lo - 1,
                out=row,
            )
            np.clip(row, lo, hi - 2, out=row)
        return located.T

    def _cumulative_clamped(self, tc: np.ndarray, j: np.ndarray) -> np.ndarray:
        """``C_i(tc)`` given located pieces; scalar-identical arithmetic.

        Mirrors ``prefix[j] + seg.integral(seg.t0, t)``: the trapezoid
        ``0.5 * dt * (v0 + v_t)`` with ``v_t`` from the segment's chord.
        """
        t0 = self.knot_times[j]
        v0 = self.knot_values[j]
        w = (self.knot_values[j + 1] - v0) / (self.knot_times[j + 1] - t0)
        dt = tc - t0
        v_t = v0 + w * dt
        return self.prefix_masses[j] + 0.5 * dt * (v0 + v_t)

    def cumulative_at(
        self, t: float, lo: int = 0, hi: Optional[int] = None
    ) -> np.ndarray:
        """``C_i(t)`` for objects ``[lo, hi)``: a ``(hi - lo,)`` array.

        Clamped exactly like the scalar :meth:`PiecewiseLinearFunction.
        cumulative`: 0 before the object's span, total mass after it.
        """
        if hi is None:
            hi = self.num_objects
        t = float(t)
        starts = self.starts[lo:hi]
        ends = self.ends[lo:hi]
        tc = np.clip(t, starts, ends)
        cum = self._cumulative_clamped(tc, self._locate(tc, lo, hi))
        return np.where(
            t <= starts,
            0.0,
            np.where(t >= ends, self.totals[lo:hi], cum),
        )

    def inverse_cumulative_many(
        self, targets: np.ndarray, lo: int = 0, hi: Optional[int] = None
    ) -> np.ndarray:
        """Per-object smallest ``t`` with ``C_i(t) >= targets[i - lo]``.

        The batched BREAKPOINTS2 reset step: one call replaces the
        scalar ``inverse_cumulative`` calls for objects ``[lo, hi)``,
        with identical piece selection (left-biased bisection on the
        prefix masses) and the same stable quadratic root, so results
        match bit for bit.  Requires nondecreasing cumulatives (run on
        the absolute store when scores may be negative).  Entries
        whose total mass never reaches the target come back ``inf``.
        """
        if hi is None:
            hi = self.num_objects
        targets = np.asarray(targets, dtype=np.float64)
        low = self.offsets[lo:hi].copy()
        high = self.offsets[lo + 1 : hi + 1] - 2
        # Largest knot j in the object's segment-left range with
        # prefix[j] < target (prefix[start] = 0 < target holds whenever
        # the target is positive; nonpositive targets are masked below).
        while True:
            active = low < high
            if not active.any():
                break
            mid = (low + high + 1) >> 1
            go_up = active & (self.prefix_masses[mid] < targets)
            go_down = active & ~go_up
            low[go_up] = mid[go_up]
            high[go_down] = mid[go_down] - 1
        j = low
        v0 = self.knot_values[j]
        t0 = self.knot_times[j]
        max_dt = self.knot_times[j + 1] - t0
        w = (self.knot_values[j + 1] - v0) / max_dt
        need = targets - self.prefix_masses[j]
        # solve_linear_mass, vectorized with the same operation order.
        disc = np.maximum(v0 * v0 + 2.0 * w * need, 0.0)
        denom = v0 + np.sqrt(disc)
        with np.errstate(divide="ignore", invalid="ignore"):
            x = 2.0 * need / denom
        dt = np.where(denom <= 0, max_dt, np.minimum(x, max_dt))
        crossing = t0 + dt
        out = np.where(targets <= 0.0, self.starts[lo:hi], crossing)
        return np.where(targets > self.totals[lo:hi], np.inf, out)

    def __repr__(self) -> str:
        return (
            f"CSRView(m={self.num_objects}, "
            f"knots={int(self.knot_times.size)})"
        )


class PLFStore:
    """An immutable columnar snapshot of ``m`` piecewise linear functions.

    Parameters
    ----------
    functions:
        The per-object PLFs, in storage order.
    object_ids:
        Optional ids parallel to ``functions`` (default ``0..m-1``).

    Attributes
    ----------
    knot_times, knot_values:
        All objects' knots concatenated (length ``K = sum_i (n_i+1)``).
    offsets:
        ``(m+1,)`` int64; object ``i`` owns knots
        ``[offsets[i], offsets[i+1])``.
    prefix_masses:
        Concatenated per-object cumulative integrals (``C_i`` at each
        knot, restarting at 0 for every object) — exactly each
        function's ``prefix_masses``, so values match the scalar path
        bit for bit.
    """

    __slots__ = (
        "functions",
        "object_ids",
        "knot_times",
        "knot_values",
        "offsets",
        "prefix_masses",
        "starts",
        "ends",
        "totals",
        "_seg_left_knot",
        "_seg_obj",
        "_slopes",
        "_absolute",
        "_csr",
        "_knot_set",
        "_knot_obj",
        "_segment",
    )

    def __init__(
        self,
        functions: Sequence[PiecewiseLinearFunction],
        object_ids: Optional[np.ndarray] = None,
    ) -> None:
        functions = list(functions)
        if not functions:
            raise ReproError("a PLFStore needs at least one function")
        self.functions: List[PiecewiseLinearFunction] = functions
        m = len(functions)
        if object_ids is None:
            object_ids = np.arange(m, dtype=np.int64)
        self.object_ids = np.asarray(object_ids, dtype=np.int64)
        if self.object_ids.size != m:
            raise ReproError("object_ids must parallel functions")
        counts = np.asarray([fn.times.size for fn in functions], dtype=np.int64)
        offsets = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self.offsets = offsets
        self.knot_times = np.concatenate([fn.times for fn in functions])
        self.knot_values = np.concatenate([fn.values for fn in functions])
        # Reuse each function's own (lazily cached) prefix array so the
        # concatenated masses are bit-identical to the scalar path.
        self.prefix_masses = np.concatenate(
            [fn.prefix_masses for fn in functions]
        )
        self.starts = self.knot_times[offsets[:-1]]
        self.ends = self.knot_times[offsets[1:] - 1]
        self.totals = self.prefix_masses[offsets[1:] - 1]
        self._init_lazy(segment=None)
        buildcount.record("store")

    def _init_lazy(self, segment: Optional[str]) -> None:
        self._seg_left_knot: Optional[np.ndarray] = None
        self._seg_obj: Optional[np.ndarray] = None
        self._slopes: Optional[np.ndarray] = None
        self._absolute: Optional["PLFStore"] = None
        self._csr: Optional[CSRView] = None
        self._knot_set: Optional[np.ndarray] = None
        self._knot_obj: Optional[np.ndarray] = None
        self._segment = segment

    @classmethod
    def from_segments(
        cls, path, verify: bool = True
    ) -> "PLFStore":
        """Mount a store zero-copy from an on-disk segment.

        The seven kernel arrays (plus ``object_ids``) become read-only
        ``np.memmap`` views of the segment written by
        :func:`repro.storage.segments.write_store_segment`; per-object
        function objects are trusted zero-copy slices of the same
        arrays (each object's ``prefix_masses`` restarts at 0, so the
        slice *is* the function's own prefix array, bit for bit).
        Nothing is rebuilt and no build counter moves: answers from a
        mounted store are bit-identical to the store that was written.
        """
        from repro.storage.segments import open_segment

        segment = open_segment(path, verify=verify)
        times = segment["knot_times"]
        values = segment["knot_values"]
        offsets = segment["offsets"]
        prefix = segment["prefix_masses"]
        bounds = offsets.tolist()
        functions = [
            PiecewiseLinearFunction._trusted(
                times[lo:hi], values[lo:hi], prefix[lo:hi]
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        self = cls.__new__(cls)
        self.functions = functions
        self.object_ids = segment["object_ids"]
        self.knot_times = times
        self.knot_values = values
        self.offsets = offsets
        self.prefix_masses = prefix
        self.starts = segment["starts"]
        self.ends = segment["ends"]
        self.totals = segment["totals"]
        self._init_lazy(segment=str(segment.path))
        return self

    @property
    def segment_path(self) -> Optional[str]:
        """The backing store segment's path (None for in-memory builds)."""
        return self._segment

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        """``m``."""
        return len(self.functions)

    @property
    def num_knots(self) -> int:
        """``K = sum_i (n_i + 1)``."""
        return int(self.knot_times.size)

    @property
    def num_segments(self) -> int:
        """``N = sum_i n_i``."""
        return self.num_knots - self.num_objects

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the columnar arrays."""
        total = (
            self.knot_times.nbytes
            + self.knot_values.nbytes
            + self.offsets.nbytes
            + self.prefix_masses.nbytes
            + self.starts.nbytes
            + self.ends.nbytes
            + self.totals.nbytes
        )
        if self._slopes is not None:
            total += self._slopes.nbytes
        if self._seg_left_knot is not None:
            total += self._seg_left_knot.nbytes + self._seg_obj.nbytes
        return total

    @property
    def sequential_total_mass(self) -> float:
        """``M = sum_i sigma_i(0, T)`` with the same left-to-right float
        summation order as ``sum(fn.total_mass for fn in ...)`` — kept
        sequential (not pairwise) so thresholds derived from ``M`` match
        the scalar constructions bit for bit."""
        return float(sum(self.totals.tolist()))

    # ------------------------------------------------------------------
    # segment view (lazy)
    # ------------------------------------------------------------------
    def _build_segments(self) -> None:
        keep = np.ones(self.num_knots, dtype=bool)
        keep[self.offsets[1:] - 1] = False  # drop each object's last knot
        self._seg_left_knot = np.flatnonzero(keep)
        counts = np.diff(self.offsets) - 1
        self._seg_obj = np.repeat(
            np.arange(self.num_objects, dtype=np.int64), counts
        )
        left = self._seg_left_knot
        self._slopes = (
            self.knot_values[left + 1] - self.knot_values[left]
        ) / (self.knot_times[left + 1] - self.knot_times[left])

    @property
    def seg_left_knot(self) -> np.ndarray:
        """Flat knot index of each segment's left endpoint (length ``N``)."""
        if self._seg_left_knot is None:
            self._build_segments()
        return self._seg_left_knot

    @property
    def seg_obj(self) -> np.ndarray:
        """Object *row* (0-based storage position) of each segment."""
        if self._seg_obj is None:
            self._build_segments()
        return self._seg_obj

    @property
    def slopes(self) -> np.ndarray:
        """Per-segment slopes ``w_{i,l}`` (length ``N``)."""
        if self._slopes is None:
            self._build_segments()
        return self._slopes

    @property
    def seg_t0(self) -> np.ndarray:
        return self.knot_times[self.seg_left_knot]

    @property
    def seg_v0(self) -> np.ndarray:
        return self.knot_values[self.seg_left_knot]

    @property
    def seg_t1(self) -> np.ndarray:
        return self.knot_times[self.seg_left_knot + 1]

    @property
    def seg_v1(self) -> np.ndarray:
        return self.knot_values[self.seg_left_knot + 1]

    @property
    def seg_prefix_hi(self) -> np.ndarray:
        """``C_i`` at each segment's right endpoint (EXACT2/3 leaf data)."""
        return self.prefix_masses[self.seg_left_knot + 1]

    def segment_table(self, include_prefix: bool = False):
        """All ``N`` segments as index-builder inputs.

        Returns ``(lows, highs, rows)`` with ``rows[:, 0]`` the object
        id (as float64), ``rows[:, 1:3]`` the endpoint values, and —
        with ``include_prefix`` — ``rows[:, 3]`` the prefix mass at the
        right endpoint.  This is the one definition of the store→leaf
        layout shared by the EXACT3 and instant interval trees.
        """
        columns = 4 if include_prefix else 3
        rows = np.empty((self.num_segments, columns), dtype=np.float64)
        rows[:, 0] = self.object_ids[self.seg_obj].astype(np.float64)
        rows[:, 1] = self.seg_v0
        rows[:, 2] = self.seg_v1
        if include_prefix:
            rows[:, 3] = self.seg_prefix_hi
        return self.seg_t0, self.seg_t1, rows

    # ------------------------------------------------------------------
    # batched piece location
    # ------------------------------------------------------------------
    def csr_view(self) -> CSRView:
        """The picklable kernel-array view (cached; arrays are shared).

        Parallel builders ship this to pool workers instead of the
        store itself — no function objects, no lazy caches, same
        arithmetic (the store's own kernels delegate here).
        """
        if self._csr is None:
            self._csr = CSRView(
                self.knot_times,
                self.knot_values,
                self.offsets,
                self.prefix_masses,
                self.starts,
                self.ends,
                self.totals,
                segment=self._segment,
            )
        return self._csr

    def knot_time_set(self) -> np.ndarray:
        """Ascending unique knot times over all objects (cached).

        The batched query pipelines test query times against this with
        :func:`isin_sorted`; stores are immutable, so the sort is paid
        once per snapshot.
        """
        cached = getattr(self, "_knot_set", None)
        if cached is None:
            cached = np.unique(self.knot_times)
            self._knot_set = cached
        return cached

    def _locate(self, tc: np.ndarray) -> np.ndarray:
        """Flat knot index of the segment containing each clamped time
        (see :meth:`CSRView._locate`; full object range)."""
        return self.csr_view()._locate(tc, 0, self.num_objects)

    def _cumulative_clamped(self, tc: np.ndarray, j: np.ndarray) -> np.ndarray:
        """``C_i(tc)`` given located pieces; scalar-identical arithmetic
        (see :meth:`CSRView._cumulative_clamped`)."""
        return self.csr_view()._cumulative_clamped(tc, j)

    # ------------------------------------------------------------------
    # batch primitives
    # ------------------------------------------------------------------
    def cumulative_at(self, t: float) -> np.ndarray:
        """``C_i(t)`` for every object: ``(m,)`` array.

        Clamped exactly like the scalar :meth:`PiecewiseLinearFunction.
        cumulative`: 0 before the object's span, total mass after it.
        """
        return self.csr_view().cumulative_at(t)

    def cumulative_at_many(self, ts: np.ndarray) -> np.ndarray:
        """``C_i(t)`` for every object and every query time: ``(q, m)``.

        Work is chunked over query times so the transient ``(q, m)``
        integer/float broadcasts stay within a bounded footprint.
        Large chunks locate pieces with the count-matrix pass
        (:meth:`_locate_counts` — one global ``searchsorted`` plus a
        per-object histogram cumsum, a handful of array passes) instead
        of the ``O(log max_n)``-round broadcast bisection; piece
        selection and the clamped-trapezoid arithmetic are bit-identical
        either way, so results do not depend on the chunking or the
        path taken.
        """
        ts = np.atleast_1d(np.asarray(ts, dtype=np.float64))
        q = ts.size
        m = self.num_objects
        out = np.empty((q, m), dtype=np.float64)
        step = max(1, _CHUNK_ELEMENTS // max(m, 1))
        for lo_row in range(0, q, step):
            flat = ts[lo_row : lo_row + step]
            if flat.size >= _COUNT_LOCATE_MIN_QUERIES:
                out[lo_row : lo_row + step] = self._cumulative_chunk_counts(
                    flat
                )
                continue
            chunk = flat[:, None]
            tc = np.clip(chunk, self.starts, self.ends)
            cum = self._cumulative_clamped(tc, self._locate(tc))
            out[lo_row : lo_row + step] = np.where(
                chunk <= self.starts,
                0.0,
                np.where(chunk >= self.ends, self.totals, cum),
            )
        return out

    def _locate_counts(self, ts: np.ndarray) -> np.ndarray:
        """:meth:`_locate`'s piece selection for a whole chunk at once.

        ``located[r, i]`` is the flat index of the segment-left knot
        the bisection would pick for time ``ts[r]`` on object ``i`` —
        computed without any ``(q, m)`` bisection rounds.  One global
        ``searchsorted`` ranks every knot among the sorted chunk
        times; a per-object histogram of those ranks, cumsummed, gives
        ``#{knots of i with time <= ts[r]}`` for every pair (a knot
        counts for rank ``r`` iff fewer than ``r + 1`` chunk times lie
        strictly below it, which is exactly ``time <= ts[r]``; ties
        between equal chunk times cannot overcount because any knot
        above them ranks past the whole duplicate run).  Clamping into
        each object's segment-left range matches ``searchsorted(times,
        t, "right") - 1`` — the documented :meth:`CSRView._locate`
        selection — for every in-span time; out-of-span times land on
        the first/last piece, whose value the caller's boundary masks
        replace.
        """
        qc = ts.size
        m = self.num_objects
        order = np.argsort(ts, kind="stable")
        ranks = np.empty(qc, dtype=np.int64)
        ranks[order] = np.arange(qc, dtype=np.int64)
        pos = np.searchsorted(ts[order], self.knot_times, side="left")
        if self._knot_obj is None:
            self._knot_obj = np.repeat(
                np.arange(m, dtype=np.int64), np.diff(self.offsets)
            )
        hist = np.bincount(
            self._knot_obj * (qc + 1) + pos, minlength=m * (qc + 1)
        )
        counts = hist.reshape(m, qc + 1).cumsum(axis=1)
        located = np.ascontiguousarray(counts[:, ranks].T)
        located += self.offsets[:-1] - 1
        np.clip(located, self.offsets[:-1], self.offsets[1:] - 2, out=located)
        return located

    def _cumulative_chunk_counts(self, ts: np.ndarray) -> np.ndarray:
        """One chunk of :meth:`cumulative_at_many` via the count locate.

        Identical arithmetic to :meth:`_cumulative_clamped` — the
        chord slope comes from the precomputed per-segment
        :attr:`slopes` (the very same ``(v1 - v0) / (t1 - t0)``
        division), so every float is bit-identical to the bisection
        path.
        """
        j = self._locate_counts(ts)
        col = ts[:, None]
        tc = np.clip(col, self.starts, self.ends)
        t0 = self.knot_times[j]
        v0 = self.knot_values[j]
        # Segment index of knot j on object i is j - i (each earlier
        # object contributes exactly one non-segment-left final knot).
        w = self.slopes[j - np.arange(self.num_objects, dtype=np.int64)]
        # In-place evaluation of prefix[j] + 0.5 * dt * (v0 + v_t),
        # v_t = v0 + w * dt — the same association order as
        # _cumulative_clamped, with the (q, m) temporaries reused.
        dt = np.subtract(tc, t0, out=tc)
        v_t = np.multiply(w, dt, out=w)
        v_t = np.add(v0, v_t, out=v_t)
        total = np.add(v0, v_t, out=v_t)
        half = np.multiply(0.5, dt, out=dt)
        cum = np.multiply(half, total, out=half)
        cum = np.add(self.prefix_masses[j], cum, out=cum)
        return np.where(
            col <= self.starts,
            0.0,
            np.where(col >= self.ends, self.totals, cum),
        )

    def cumulative_at_grid(self, ts: np.ndarray) -> np.ndarray:
        """:meth:`cumulative_at_many` for a small grid of times.

        Bit-identical results (piece location is pure index selection,
        and the clamped-trapezoid arithmetic is shared), but pieces are
        found with one ``searchsorted`` per object over the grid
        instead of the ``(q, m)`` broadcast bisection — much faster
        when ``q`` is small relative to the knot counts, e.g. the
        breakpoint grids of the QUERY1/QUERY2 index builds.
        """
        ts = np.atleast_1d(np.asarray(ts, dtype=np.float64))
        q = ts.size
        m = self.num_objects
        col = ts[:, None]
        tc = np.clip(col, self.starts, self.ends)
        located = np.empty((q, m), dtype=np.int64)
        knot_times = self.knot_times
        offsets = self.offsets
        for i in range(m):
            lo = offsets[i]
            hi = offsets[i + 1]
            # Largest knot index with time <= tc within the object's
            # segment-left range — exactly _locate's selection.
            piece = np.searchsorted(knot_times[lo:hi], tc[:, i], "right")
            np.clip(piece + (lo - 1), lo, hi - 2, out=located[:, i])
        cum = self._cumulative_clamped(tc, located)
        return np.where(
            col <= self.starts,
            0.0,
            np.where(col >= self.ends, self.totals, cum),
        )

    def integrals(self, t1: float, t2: float) -> np.ndarray:
        """``sigma_i(t1, t2)`` for every object: ``(m,)`` array.

        Bit-identical to ``fn.integral(t1, t2)`` per object.
        """
        if t2 <= t1:
            return np.zeros(self.num_objects, dtype=np.float64)
        return self.cumulative_at(t2) - self.cumulative_at(t1)

    def integrals_many(self, queries: np.ndarray) -> np.ndarray:
        """``sigma_i`` for a whole workload: ``(q, m)`` from ``(q, 2)``.

        Row ``j`` holds every object's aggregate over ``queries[j] =
        (t1, t2)``; reversed intervals score 0, matching the scalar
        convention.
        """
        queries = np.asarray(queries, dtype=np.float64).reshape(-1, 2)
        low = self.cumulative_at_many(queries[:, 0])
        high = self.cumulative_at_many(queries[:, 1])
        scores = high - low
        reversed_rows = queries[:, 1] <= queries[:, 0]
        if reversed_rows.any():
            scores[reversed_rows] = 0.0
        return scores

    def masses_between(self, grid: np.ndarray) -> np.ndarray:
        """Per-object masses over consecutive grid cells: ``(m, r-1)``.

        ``masses_between(bp.times)[i, j]`` is ``sigma_i(b_j, b_{j+1})``
        — the quantity both breakpoint constructions bound by
        ``eps * M`` (Lemma 2) and the top-list builders difference.
        """
        cums = self.cumulative_at_many(grid)
        return np.diff(cums, axis=0).T

    def values_at(self, t: float) -> np.ndarray:
        """``g_i(t)`` for every object (0 outside each span): ``(m,)``."""
        t = float(t)
        tc = np.clip(t, self.starts, self.ends)
        j = self._locate(tc)
        t0 = self.knot_times[j]
        v0 = self.knot_values[j]
        w = (self.knot_values[j + 1] - v0) / (self.knot_times[j + 1] - t0)
        values = v0 + w * (tc - t0)
        # At an object's final knot the chord evaluation can be 1 ulp
        # off the stored value (every other knot falls on a segment
        # *start*, where dt = 0 gives the knot value exactly); return
        # the stored value so results match the scalar path bit for bit.
        values = np.where(
            t == self.ends, self.knot_values[self.offsets[1:] - 1], values
        )
        outside = (t < self.starts) | (t > self.ends)
        return np.where(outside, 0.0, values)

    def values_at_many(self, ts: np.ndarray) -> np.ndarray:
        """``g_i(t)`` for every object and every query time: ``(q, m)``.

        Row ``j`` is bit-identical to ``values_at(ts[j])`` — the same
        clamp, chord interpolation, final-knot exactness fix, and
        outside-span zeroing, broadcast over query times and chunked
        like :meth:`cumulative_at_many` to bound the transient
        ``(q, m)`` footprint.
        """
        ts = np.atleast_1d(np.asarray(ts, dtype=np.float64))
        q = ts.size
        m = self.num_objects
        out = np.empty((q, m), dtype=np.float64)
        last_values = self.knot_values[self.offsets[1:] - 1]
        step = max(1, _CHUNK_ELEMENTS // max(m, 1))
        for lo_row in range(0, q, step):
            chunk = ts[lo_row : lo_row + step, None]
            tc = np.clip(chunk, self.starts, self.ends)
            j = self._locate(tc)
            t0 = self.knot_times[j]
            v0 = self.knot_values[j]
            w = (self.knot_values[j + 1] - v0) / (self.knot_times[j + 1] - t0)
            values = v0 + w * (tc - t0)
            values = np.where(chunk == self.ends, last_values, values)
            outside = (chunk < self.starts) | (chunk > self.ends)
            out[lo_row : lo_row + step] = np.where(outside, 0.0, values)
        return out

    def inverse_cumulative_many(self, targets: np.ndarray) -> np.ndarray:
        """Per-object smallest ``t`` with ``C_i(t) >= targets[i]``.

        The batched BREAKPOINTS2 reset step (see
        :meth:`CSRView.inverse_cumulative_many`; full object range).
        """
        return self.csr_view().inverse_cumulative_many(targets)

    # ------------------------------------------------------------------
    # query answering
    # ------------------------------------------------------------------
    def top_k(self, t1: float, t2: float, k: int) -> TopKResult:
        """Batched brute-force ``top-k(t1, t2, sum)`` over all objects."""
        return top_k_from_arrays(self.object_ids, self.integrals(t1, t2), k)

    def top_k_many(self, queries: np.ndarray, k: int) -> List[TopKResult]:
        """Answer a whole workload in one kernel pass.

        ``queries`` is ``(q, 2)``; all ``q * m`` scores come from two
        chunked :meth:`cumulative_at_many` calls, then each row is
        reduced to its top ``k``.
        """
        scores = self.integrals_many(queries)
        return [
            top_k_from_arrays(self.object_ids, row, k) for row in scores
        ]

    # ------------------------------------------------------------------
    # Section 4: negative scores
    # ------------------------------------------------------------------
    def absolute(self) -> "PLFStore":
        """The store over ``|g_i|`` (cached; knots split at crossings)."""
        if self._absolute is None:
            self._absolute = PLFStore(
                [fn.absolute() for fn in self.functions], self.object_ids
            )
        return self._absolute

    def __repr__(self) -> str:
        return (
            f"PLFStore(m={self.num_objects}, N={self.num_segments}, "
            f"knots={self.num_knots})"
        )
