"""Exception hierarchy for the repro package.

One taxonomy, one base class: every error this package raises on
purpose derives from :class:`ReproError`, so ``except ReproError``
catches exactly "the repro stack reported a structured failure" and
nothing else.  The storage- and distributed-tier classes live here
(rather than in their subsystems) because the fault-tolerance layer
crosses tiers: a cluster coordinator must classify a shard's
:class:`BlockDeviceError` or a replica's :class:`NodeUnavailable`
without importing the subsystem that raised it.

The historical definition sites re-export these names
(``repro.storage.device.BlockDeviceError``,
``repro.storage.persistence.PersistenceError``), so existing
``except`` clauses and imports keep working unchanged.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class InvalidFunctionError(ReproError):
    """A piecewise function's knots/values are malformed."""


class InvalidQueryError(ReproError):
    """A query's parameters are out of range (t1 > t2, k < 1, ...)."""


class IndexStateError(ReproError):
    """An index was used before being built, or after being invalidated."""


class BlockDeviceError(ReproError):
    """Raised on invalid block accesses (bad id, freed block, corrupt
    read, mutation from a non-owner process)."""


class PersistenceError(ReproError):
    """Raised when a persisted file is malformed or incompatible."""


class NodeUnavailable(ReproError):
    """A storage node (or one replica of it) failed to serve a call.

    ``transient`` distinguishes a retryable blip (injected transient
    error, timeout) from a permanent condition (crashed replica, every
    replica exhausted): retry policies re-attempt transient failures
    and fail over — or give up — on permanent ones.
    """

    def __init__(
        self,
        message: str,
        node_id: Optional[int] = None,
        replica: Optional[int] = None,
        transient: bool = False,
    ) -> None:
        super().__init__(message)
        self.node_id = node_id
        self.replica = replica
        self.transient = transient


class DeadlineExceeded(ReproError):
    """A call (or serving request) ran past its deadline.

    Structured replacement for an unbounded await: the caller gets a
    clean error carrying the budget that was blown instead of hanging
    forever on a wedged shard.
    """

    def __init__(self, message: str, deadline: Optional[float] = None) -> None:
        super().__init__(message)
        self.deadline = deadline


class PartialResultError(ReproError):
    """A query could only be answered over part of the data.

    Raised by cluster coordinators running with ``allow_partial=False``
    when no replica survives for some partition; carries the
    best-effort ``result`` (already coverage-annotated) so a caller
    that would rather degrade than fail can still use it.
    """

    def __init__(self, message: str, result=None, coverage: float = 0.0) -> None:
        super().__init__(message)
        self.result = result
        self.coverage = float(coverage)


class CoordinatorShutdown(ReproError):
    """The serving coordinator shut down before answering a request.

    Set on still-pending request futures by
    :meth:`~repro.serving.coordinator.ServingCoordinator.close` when
    the drain timeout expires — a structured failure instead of a
    forever-hanging await.
    """
