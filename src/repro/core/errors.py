"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class InvalidFunctionError(ReproError):
    """A piecewise function's knots/values are malformed."""


class InvalidQueryError(ReproError):
    """A query's parameters are out of range (t1 > t2, k < 1, ...)."""


class IndexStateError(ReproError):
    """An index was used before being built, or after being invalidated."""
