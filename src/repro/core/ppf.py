"""Piecewise polynomial score functions (paper Section 4).

The paper observes that every method carries over to piecewise
*polynomial* representations: the only change is that the per-piece
integral ``sigma_i(I)`` is computed from the polynomial antiderivative
instead of the trapezoid rule.  :class:`PiecewisePolynomialFunction`
provides exactly that, and :func:`square_plf` builds the degree-2 PPF
``g^2`` used by the F2 aggregate (second frequency moment).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import InvalidFunctionError
from repro.core.plf import PiecewiseLinearFunction


class PiecewisePolynomialFunction:
    """A piecewise polynomial defined on knots with per-piece coefficients.

    Parameters
    ----------
    times:
        Strictly increasing knot times, length ``n + 1``.
    coefficients:
        Array of shape ``(n, d + 1)``: piece ``j`` evaluates to
        ``sum_k coefficients[j, k] * (t - times[j])**k`` for
        ``t in [times[j], times[j+1]]`` (local coordinates keep the
        evaluation numerically stable far from the origin).
    """

    __slots__ = ("times", "coefficients", "_prefix")

    def __init__(self, times: Sequence[float], coefficients: np.ndarray) -> None:
        times_arr = np.asarray(times, dtype=np.float64)
        coeff_arr = np.asarray(coefficients, dtype=np.float64)
        if times_arr.ndim != 1 or times_arr.size < 2:
            raise InvalidFunctionError("need at least two knot times")
        if not np.all(np.diff(times_arr) > 0):
            raise InvalidFunctionError("knot times must be strictly increasing")
        if coeff_arr.ndim != 2 or coeff_arr.shape[0] != times_arr.size - 1:
            raise InvalidFunctionError(
                "coefficients must have one row per piece "
                f"(got {coeff_arr.shape}, expected ({times_arr.size - 1}, d+1))"
            )
        self.times = times_arr
        self.coefficients = coeff_arr
        self._prefix: np.ndarray | None = None

    @property
    def num_pieces(self) -> int:
        return self.times.size - 1

    @property
    def degree(self) -> int:
        return self.coefficients.shape[1] - 1

    @property
    def start(self) -> float:
        return float(self.times[0])

    @property
    def end(self) -> float:
        return float(self.times[-1])

    def value(self, t: float) -> float:
        """Evaluate the polynomial; 0 outside the span."""
        if t < self.start or t > self.end:
            return 0.0
        j = int(np.searchsorted(self.times, t, side="right")) - 1
        j = min(max(j, 0), self.num_pieces - 1)
        x = t - float(self.times[j])
        # Horner evaluation of the local-coordinate polynomial.
        result = 0.0
        for c in self.coefficients[j, ::-1]:
            result = result * x + float(c)
        return result

    def _piece_integral(self, j: int, x: float) -> float:
        """Integral of piece ``j`` from its left knot to local offset x."""
        total = 0.0
        power = x
        for k, c in enumerate(self.coefficients[j]):
            total += float(c) * power / (k + 1)
            power *= x
        return total

    @property
    def prefix_masses(self) -> np.ndarray:
        """Cumulative integrals at the knots (analogue of PLF prefix sums)."""
        if self._prefix is None:
            prefix = np.zeros(self.times.size, dtype=np.float64)
            for j in range(self.num_pieces):
                width = float(self.times[j + 1] - self.times[j])
                prefix[j + 1] = prefix[j] + self._piece_integral(j, width)
            self._prefix = prefix
        return self._prefix

    @property
    def total_mass(self) -> float:
        return float(self.prefix_masses[-1])

    def cumulative(self, t: float) -> float:
        """Integral from the span's start to ``t`` (clamped)."""
        if t <= self.start:
            return 0.0
        if t >= self.end:
            return self.total_mass
        j = int(np.searchsorted(self.times, t, side="right")) - 1
        j = min(max(j, 0), self.num_pieces - 1)
        return float(self.prefix_masses[j]) + self._piece_integral(
            j, t - float(self.times[j])
        )

    def integral(self, a: float, b: float) -> float:
        """Aggregate (sum) score over ``[a, b]``."""
        if b <= a:
            return 0.0
        return self.cumulative(b) - self.cumulative(a)

    def __repr__(self) -> str:
        return (
            f"PiecewisePolynomialFunction(pieces={self.num_pieces}, "
            f"degree={self.degree}, span=[{self.start:g}, {self.end:g}])"
        )


def from_plf(plf: PiecewiseLinearFunction) -> PiecewisePolynomialFunction:
    """Represent a PLF as a degree-1 PPF (coefficients ``[v_j, w_j]``)."""
    slopes = plf.slopes
    coefficients = np.stack([plf.values[:-1], slopes], axis=1)
    return PiecewisePolynomialFunction(plf.times, coefficients)


def square_plf(plf: PiecewiseLinearFunction) -> PiecewisePolynomialFunction:
    """``g^2`` as a degree-2 PPF.

    On piece ``j``, ``g(t) = v_j + w_j x`` with ``x = t - t_j``, so
    ``g(t)^2 = v_j^2 + 2 v_j w_j x + w_j^2 x^2``.  Integrating this is
    exactly the F2 (second frequency moment) aggregate the paper lists
    among the sum-expressible aggregations.
    """
    v = plf.values[:-1]
    w = plf.slopes
    coefficients = np.stack([v * v, 2.0 * v * w, w * w], axis=1)
    return PiecewisePolynomialFunction(plf.times, coefficients)
