"""EXACT2: a forest of per-object prefix-sum B+-trees.

Paper Section 2 ("A forest of B+-trees"): for each object ``o_i``,
precompute the prefix aggregates ``sigma_i(I_{i,l})`` over the nested
intervals ``I_{i,l} = [t_{i,0}, t_{i,l}]`` and index the leaf entries
``e_{i,l} = (t_{i,l}, (g_{i,l}, sigma_i(I_{i,l})))`` in a B+-tree
``T_i``.  An arbitrary interval aggregate then needs two successor
lookups and Equation (2)::

    sigma_i(t1, t2) = sigma_i(I_R) - sigma_i(I_L)
                      + sigma_i(t1, t_L) - sigma_i(t2, t_R)

Query cost is ``O(sum_i log_B n_i)`` IOs — *plus*, in practice, the
overhead of opening ``m`` separate disk files, which is exactly why the
paper then folds everything into one interval tree (EXACT3).  We model
each tree on its own device (file) and charge one IO per per-object
file touch per query, mirroring that observation.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.aggregates import SUM, Aggregate
from repro.core.database import TemporalDatabase
from repro.core.geometry import segment_integral
from repro.core.queries import TopKQuery
from repro.core.results import TopKResult, top_k_from_arrays
from repro.exact.base import RankingMethod
from repro.storage.device import BlockDevice
from repro.storage.stats import IOStats
from repro.btree.tree import BPlusTree

#: Value-row layout for prefix entries: seg_t0, seg_v0, seg_t1, seg_v1,
#: prefix mass at seg_t1.
_PREFIX_COLUMNS = 5

#: IOs charged for opening one per-object tree file during a query.
FILE_OPEN_IOS = 1


def build_prefix_entries(times: np.ndarray, values: np.ndarray, prefix: np.ndarray):
    """Leaf entries ``e_{i,l}`` for one object.

    Returns ``(keys, rows)`` with keys = right endpoints ``t_{i,l}``
    (``l = 1..n``) and rows carrying the segment and its prefix mass.
    """
    keys = times[1:]
    rows = np.stack(
        [times[:-1], values[:-1], times[1:], values[1:], prefix[1:]], axis=1
    )
    return keys, rows


def cumulative_from_prefix_tree(tree: BPlusTree, t: float, total: float) -> float:
    """``C_i(t)``: prefix mass from the object's start to ``t``.

    Implements the Equation (2) arithmetic: find the successor entry
    ``e_L`` (first right endpoint >= t), subtract the within-segment
    part ``sigma_i(t, t_L)`` from the stored prefix.  Clamps to the
    object's span.
    """
    hit = tree.successor(t)
    if hit is None:
        # t is past the object's end: full mass.
        return total
    key, row = hit
    s0, v0, s1, v1, prefix_right = (
        float(row[0]), float(row[1]), float(row[2]), float(row[3]), float(row[4]),
    )
    if t <= s0:
        # t precedes this segment entirely (only possible for the first
        # entry, i.e. t before the object's start).
        return prefix_right - segment_integral(s0, v0, s1, v1, s0, s1)
    return prefix_right - segment_integral(s0, v0, s1, v1, t, s1)


class Exact2(RankingMethod):
    """The EXACT2 method (one prefix-sum B+-tree per object)."""

    name = "EXACT2"

    def __init__(
        self,
        aggregate: Aggregate = SUM,
        block_bytes: int = 4096,
        stats: IOStats = None,
    ) -> None:
        super().__init__()
        self.aggregate = aggregate
        self.block_bytes = block_bytes
        # APPX2+ embeds an EXACT2 forest and accounts both under one
        # counter by passing a shared IOStats here.
        self._stats = stats if stats is not None else IOStats()
        self.trees: Dict[int, BPlusTree] = {}
        self._devices: List[BlockDevice] = []
        self._totals: Dict[int, float] = {}
        self._modeled_query_ios = 0

    # ------------------------------------------------------------------
    def _build(self, database: TemporalDatabase) -> None:
        # Prime the columnar store: construction shares the per-object
        # prefix arrays the forest needs anyway, and a warm store lets
        # _query take the batched kernel path from the first query.
        database.store()
        for obj in database:
            fn = obj.function
            keys, rows = build_prefix_entries(fn.times, fn.values, fn.prefix_masses)
            device = BlockDevice(
                block_bytes=self.block_bytes,
                name=f"exact2-object-{obj.object_id}",
                stats=self._stats,
            )
            tree = BPlusTree(device, value_columns=_PREFIX_COLUMNS)
            tree.bulk_load(keys, rows)
            self.trees[obj.object_id] = tree
            self._devices.append(device)
            self._totals[obj.object_id] = fn.total_mass
        self._refresh_modeled_ios()

    def _refresh_modeled_ios(self) -> None:
        """Cache the per-query modeled IO charge (changes only on
        build/append, so recomputing the O(m) sum per query would cost
        as much as the batched scoring it accompanies)."""
        self._modeled_query_ios = sum(
            FILE_OPEN_IOS + 2 * tree.height for tree in self.trees.values()
        )

    def score(self, object_id: int, t1: float, t2: float) -> float:
        """``sigma_i(t1, t2)`` via Equation (2) (two successor lookups)."""
        tree = self.trees[object_id]
        total = self._totals[object_id]
        high = cumulative_from_prefix_tree(tree, t2, total)
        low = cumulative_from_prefix_tree(tree, t1, total)
        return high - low

    def _query(self, query: TopKQuery) -> TopKResult:
        """Batched Equation (2): score all ``m`` objects in one kernel pass.

        When the database's columnar store is warm (the build primes
        it), scores come from one batched kernel call and the IO model
        charges what the forest would have cost — one file open per
        object plus two root-to-leaf successor walks per tree — so the
        paper's "m file opens dominate" observation survives the fast
        scoring path.  When an append has invalidated the store
        (streaming ticks), the historical per-tree path answers the
        query instead: rebuilding the O(N) snapshot per tick would
        defeat EXACT2's O(log_B n_i) update cost.  A read burst with
        no further appends re-arms the rebuild after a few fallbacks
        (see TemporalDatabase.note_scalar_fallback).
        """
        ids = np.fromiter(self.trees.keys(), dtype=np.int64, count=len(self.trees))
        if self.database.wants_store:
            self._stats.reads += self._modeled_query_ios
            raw = self.database.store().integrals(query.t1, query.t2)
            scores = self.aggregate.finalize_many(raw, query.t1, query.t2)
            return top_k_from_arrays(ids, scores, query.k)
        self.database.note_scalar_fallback()
        scores = np.empty(ids.size, dtype=np.float64)
        for pos, object_id in enumerate(ids):
            tree = self.trees[int(object_id)]
            before = self._stats.reads
            raw = self.score(int(object_id), query.t1, query.t2)
            # Normalize to the modeled charge (file open + two
            # root-to-leaf walks): actual successor traversals pay an
            # occasional extra next-leaf hop, and reported IO figures
            # must not depend on which scoring path answered the query.
            self._stats.reads = before + FILE_OPEN_IOS + 2 * tree.height
            scores[pos] = self.aggregate.finalize(raw, query.t1, query.t2)
        return top_k_from_arrays(ids, scores, query.k)

    def _append(self, object_id: int, t_next: float, v_next: float) -> None:
        """Extend ``T_i`` with one entry: ``O(log_B n_i)`` IOs."""
        tree = self.trees[object_id]
        last_key, last_row = tree.last_entry()
        prev_prefix = float(last_row[4])
        t_prev = last_key
        v_prev = float(last_row[3])
        area = 0.5 * (t_next - t_prev) * (v_prev + v_next)
        new_prefix = prev_prefix + area
        row = np.asarray([t_prev, v_prev, t_next, v_next, new_prefix])
        height_before = tree.height
        tree.insert(t_next, row)
        self._totals[object_id] = new_prefix
        # Only this tree's height can have changed; adjust the cached
        # modeled-IO charge by the delta (keeps appends O(log_B n_i)).
        self._modeled_query_ios += 2 * (tree.height - height_before)

    # ------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self._stats

    @property
    def index_size_bytes(self) -> int:
        return sum(device.size_bytes for device in self._devices)
