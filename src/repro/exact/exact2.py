"""EXACT2: a forest of per-object prefix-sum B+-trees.

Paper Section 2 ("A forest of B+-trees"): for each object ``o_i``,
precompute the prefix aggregates ``sigma_i(I_{i,l})`` over the nested
intervals ``I_{i,l} = [t_{i,0}, t_{i,l}]`` and index the leaf entries
``e_{i,l} = (t_{i,l}, (g_{i,l}, sigma_i(I_{i,l})))`` in a B+-tree
``T_i``.  An arbitrary interval aggregate then needs two successor
lookups and Equation (2)::

    sigma_i(t1, t2) = sigma_i(I_R) - sigma_i(I_L)
                      + sigma_i(t1, t_L) - sigma_i(t2, t_R)

Query cost is ``O(sum_i log_B n_i)`` IOs — *plus*, in practice, the
overhead of opening ``m`` separate disk files, which is exactly why the
paper then folds everything into one interval tree (EXACT3).  We model
each tree on its own device (file) and charge one IO per per-object
file touch per query, mirroring that observation.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.aggregates import SUM, Aggregate
from repro.core.database import TemporalDatabase
from repro.core.geometry import segment_integral
from repro.core.queries import TopKQuery
from repro.core.results import TopKResult, top_k_from_arrays
from repro.exact.base import RankingMethod
from repro.storage.device import BlockDevice
from repro.storage.stats import IOStats
from repro.btree.node import leaf_capacity
from repro.btree.tree import BPlusTree

#: Value-row layout for prefix entries: seg_t0, seg_v0, seg_t1, seg_v1,
#: prefix mass at seg_t1.
_PREFIX_COLUMNS = 5

#: IOs charged for opening one per-object tree file during a query.
FILE_OPEN_IOS = 1


def build_prefix_entries(times: np.ndarray, values: np.ndarray, prefix: np.ndarray):
    """Leaf entries ``e_{i,l}`` for one object.

    Returns ``(keys, rows)`` with keys = right endpoints ``t_{i,l}``
    (``l = 1..n``) and rows carrying the segment and its prefix mass.
    """
    keys = times[1:]
    rows = np.stack(
        [times[:-1], values[:-1], times[1:], values[1:], prefix[1:]], axis=1
    )
    return keys, rows


def cumulative_from_prefix_tree(tree: BPlusTree, t: float, total: float) -> float:
    """``C_i(t)``: prefix mass from the object's start to ``t``.

    Implements the Equation (2) arithmetic: find the successor entry
    ``e_L`` (first right endpoint >= t), subtract the within-segment
    part ``sigma_i(t, t_L)`` from the stored prefix.  Clamps to the
    object's span.
    """
    hit = tree.successor(t)
    if hit is None:
        # t is past the object's end: full mass.
        return total
    key, row = hit
    s0, v0, s1, v1, prefix_right = (
        float(row[0]), float(row[1]), float(row[2]), float(row[3]), float(row[4]),
    )
    if t <= s0:
        # t precedes this segment entirely (only possible for the first
        # entry, i.e. t before the object's start).
        return prefix_right - segment_integral(s0, v0, s1, v1, s0, s1)
    return prefix_right - segment_integral(s0, v0, s1, v1, t, s1)


def _eq2_cumulative_batch(
    store, rows: np.ndarray, t, totals: np.ndarray, leaf_cap: int
):
    """Vectorized :func:`cumulative_from_prefix_tree` over store rows.

    ``t`` is either one shared query time (a scalar: the per-query
    candidate rescoring) or one time per row (an array: the whole-
    workload triple rescoring of ``score_triples``) — every operation
    below is elementwise, so both shapes produce, row for row, the
    bits the scalar ``t`` path produces.

    Returns ``(cumulatives, extra_leaf_hops)``.  The arithmetic
    replicates the scalar path bit for bit: the successor segment is
    the first whose right endpoint is >= ``t`` (a shared lower-bound
    bisection over the CSR knot arrays), and the within-segment part
    subtracted from the stored prefix uses exactly the
    ``segment_integral``/``interpolate`` operation order.  The hop
    count is the number of next-leaf reads a bulk-loaded tree's
    successor walk pays beyond its root-to-leaf descent: the walk
    lands in the last leaf whose min key is <= ``t`` and hops once
    when the successor entry lives in the following leaf.
    """
    t = np.asarray(t, dtype=np.float64)
    off_lo = store.offsets[rows]
    off_hi = store.offsets[rows + 1]
    ends = store.knot_times[off_hi - 1]
    past = t > ends
    # Lower bound: first knot index in [off_lo + 1, off_hi - 1] whose
    # time is >= t (for past rows the bisection parks at the last
    # knot; the result is masked below).
    lo = off_lo + 1
    hi = off_hi - 1
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        less = active & (store.knot_times[mid] < t)
        stop = active & ~less
        lo[less] = mid[less] + 1
        hi[stop] = mid[stop]
    right = lo
    j = right - 1
    s0 = store.knot_times[j]
    v0 = store.knot_values[j]
    s1 = store.knot_times[right]
    v1 = store.knot_values[right]
    prefix_right = store.prefix_masses[right]
    # segment_integral(s0, v0, s1, v1, max(t, s0), s1), vectorized with
    # the same operation order (chord slope, interpolate both ends,
    # trapezoid; empty overlap contributes exactly 0).
    w = (v1 - v0) / (s1 - s0)
    t_left = np.maximum(t, s0)
    width = s1 - t_left
    v_left = v0 + w * (t_left - s0)
    v_right = v0 + w * (s1 - s0)
    area = 0.5 * width * (v_left + v_right)
    integral = np.where(width > 0, area, 0.0)
    cum = np.where(past, totals, prefix_right - integral)
    # IO model: successor position s among the tree's keys (the right
    # endpoints), and the leaf the descent lands in.
    succ = right - off_lo - 1
    has_successor = ~past
    ties = has_successor & (s1 == t)
    landed = np.maximum((succ + ties - 1) // leaf_cap, 0)
    hops = np.where(has_successor, succ // leaf_cap - landed, 0)
    return cum, hops


class Exact2(RankingMethod):
    """The EXACT2 method (one prefix-sum B+-tree per object)."""

    name = "EXACT2"

    def __init__(
        self,
        aggregate: Aggregate = SUM,
        block_bytes: int = 4096,
        stats: IOStats = None,
    ) -> None:
        super().__init__()
        self.aggregate = aggregate
        self.block_bytes = block_bytes
        # APPX2+ embeds an EXACT2 forest and accounts both under one
        # counter by passing a shared IOStats here.
        self._stats = stats if stats is not None else IOStats()
        self.trees: Dict[int, BPlusTree] = {}
        self._devices: List[BlockDevice] = []
        self._totals: Dict[int, float] = {}
        self._modeled_query_ios = 0
        # True while every tree is exactly its bulk-loaded form; the
        # batched candidate-rescoring IO model (score_many) relies on
        # the packed leaf layout, so any insert disables it.
        self._bulk_only = True
        self._row_cache = None

    # ------------------------------------------------------------------
    def _build(self, database: TemporalDatabase) -> None:
        # Prime the columnar store: construction shares the per-object
        # prefix arrays the forest needs anyway, and a warm store lets
        # _query take the batched kernel path from the first query.
        database.store()
        self._bulk_only = True
        self._row_cache = None
        for obj in database:
            fn = obj.function
            keys, rows = build_prefix_entries(fn.times, fn.values, fn.prefix_masses)
            device = BlockDevice(
                block_bytes=self.block_bytes,
                name=f"exact2-object-{obj.object_id}",
                stats=self._stats,
            )
            tree = BPlusTree(device, value_columns=_PREFIX_COLUMNS)
            tree.bulk_load(keys, rows)
            self.trees[obj.object_id] = tree
            self._devices.append(device)
            self._totals[obj.object_id] = fn.total_mass
        self._refresh_modeled_ios()

    def _refresh_modeled_ios(self) -> None:
        """Cache the per-query modeled IO charge (changes only on
        build/append, so recomputing the O(m) sum per query would cost
        as much as the batched scoring it accompanies)."""
        self._modeled_query_ios = sum(
            FILE_OPEN_IOS + 2 * tree.height for tree in self.trees.values()
        )

    def score(self, object_id: int, t1: float, t2: float) -> float:
        """``sigma_i(t1, t2)`` via Equation (2) (two successor lookups)."""
        tree = self.trees[object_id]
        total = self._totals[object_id]
        high = cumulative_from_prefix_tree(tree, t2, total)
        low = cumulative_from_prefix_tree(tree, t1, total)
        return high - low

    def score_many(
        self, object_ids: np.ndarray, t1: float, t2: float
    ) -> np.ndarray:
        """Batched :meth:`score` for a candidate subset (APPX2+).

        When the database's columnar store is warm and every tree is
        still in bulk-loaded form, all candidates are scored in one
        vectorized Equation-(2) pass that replicates the per-tree
        arithmetic operation for operation — results are bit-identical
        to the scalar loop — and the IO model charges exactly what the
        ``2 |K|`` successor walks would have read (two root-to-leaf
        descents per candidate plus any next-leaf hop the landed leaf
        would miss).  Otherwise the historical per-candidate loop
        answers (appends both invalidate the store and repack leaves).
        """
        ids = np.asarray(object_ids, dtype=np.int64)
        if ids.size == 0:
            return np.zeros(0, dtype=np.float64)
        # getattr: forests unpickled from pre-batching index files have
        # no bulk-layout marker; treat them as insert-touched (scalar).
        usable = (
            getattr(self, "_bulk_only", False)
            and self.database is not None
            and self.database.wants_store
        )
        if not usable:
            if self.database is not None and not self.database.wants_store:
                self.database.note_scalar_fallback()
            return np.asarray(
                [self.score(int(i), t1, t2) for i in ids], dtype=np.float64
            )
        store = self.database.store()
        rows_lut, totals_lut, heights_lut = self._batch_lut(store)
        rows = rows_lut[ids]
        totals = totals_lut[ids]
        cap = leaf_capacity(_PREFIX_COLUMNS, self.block_bytes)
        high, hops_high = _eq2_cumulative_batch(store, rows, t2, totals, cap)
        low, hops_low = _eq2_cumulative_batch(store, rows, t1, totals, cap)
        heights = int(heights_lut[ids].sum())
        self._stats.reads += int(2 * heights + hops_high.sum() + hops_low.sum())
        return high - low

    def score_triples(
        self, object_ids: np.ndarray, t1s: np.ndarray, t2s: np.ndarray
    ) -> np.ndarray:
        """``sigma_i(t1, t2)`` for a whole workload's rescore triples.

        The batched-query analogue of :meth:`score_many`: row ``j``
        scores object ``object_ids[j]`` over ``[t1s[j], t2s[j]]``.
        APPX2+'s ``query_many`` concatenates every query's candidate
        set into one call, so the entire batch pays two vectorized
        Equation-(2) passes instead of two per query.  Scores and the
        modeled IO charge are bit-identical to calling
        :meth:`score_many` once per query with that query's candidate
        ids (the hop terms are computed per row either way).
        """
        ids = np.asarray(object_ids, dtype=np.int64)
        if ids.size == 0:
            return np.zeros(0, dtype=np.float64)
        t1s = np.asarray(t1s, dtype=np.float64)
        t2s = np.asarray(t2s, dtype=np.float64)
        usable = (
            getattr(self, "_bulk_only", False)
            and self.database is not None
            and self.database.wants_store
        )
        if not usable:
            if self.database is not None and not self.database.wants_store:
                self.database.note_scalar_fallback()
            return np.asarray(
                [
                    self.score(int(i), float(a), float(b))
                    for i, a, b in zip(ids, t1s, t2s)
                ],
                dtype=np.float64,
            )
        store = self.database.store()
        rows_lut, totals_lut, heights_lut = self._batch_lut(store)
        rows = rows_lut[ids]
        totals = totals_lut[ids]
        cap = leaf_capacity(_PREFIX_COLUMNS, self.block_bytes)
        # Both endpoints in one kernel call (elementwise arithmetic:
        # splitting the halves afterwards is bit-identical to two
        # separate passes, at half the fixed NumPy dispatch cost).
        cum, hops = _eq2_cumulative_batch(
            store,
            np.concatenate([rows, rows]),
            np.concatenate([t2s, t1s]),
            np.concatenate([totals, totals]),
            cap,
        )
        heights = int(heights_lut[ids].sum())
        self._stats.reads += int(2 * heights + hops.sum())
        return cum[: ids.size] - cum[ids.size :]

    def _batch_lut(self, store):
        """Dense id -> (store row, total, tree height) tables.

        Cached per store snapshot so batched rescoring indexes with
        one fancy-gather per array instead of a Python dict lookup per
        candidate.  Totals and heights can only drift through appends,
        which clear ``_bulk_only`` and route around this path.
        """
        cache = self._row_cache
        if cache is None or cache[0] is not store:
            oids = np.fromiter(
                self.trees.keys(), dtype=np.int64, count=len(self.trees)
            )
            size = int(max(oids.max(), store.object_ids.max())) + 1
            rows_lut = np.full(size, -1, dtype=np.int64)
            rows_lut[store.object_ids] = np.arange(store.object_ids.size)
            totals_lut = np.zeros(size, dtype=np.float64)
            heights_lut = np.zeros(size, dtype=np.int64)
            for oid in oids:
                totals_lut[oid] = self._totals[int(oid)]
                heights_lut[oid] = self.trees[int(oid)].height
            cache = (store, rows_lut, totals_lut, heights_lut)
            self._row_cache = cache
        return cache[1], cache[2], cache[3]

    def _query(self, query: TopKQuery) -> TopKResult:
        """Batched Equation (2): score all ``m`` objects in one kernel pass.

        When the database's columnar store is warm (the build primes
        it), scores come from one batched kernel call and the IO model
        charges what the forest would have cost — one file open per
        object plus two root-to-leaf successor walks per tree — so the
        paper's "m file opens dominate" observation survives the fast
        scoring path.  When an append has invalidated the store
        (streaming ticks), the historical per-tree path answers the
        query instead: rebuilding the O(N) snapshot per tick would
        defeat EXACT2's O(log_B n_i) update cost.  A read burst with
        no further appends re-arms the rebuild after a few fallbacks
        (see TemporalDatabase.note_scalar_fallback).
        """
        ids = np.fromiter(self.trees.keys(), dtype=np.int64, count=len(self.trees))
        if self.database.wants_store:
            self._stats.reads += self._modeled_query_ios
            raw = self.database.store().integrals(query.t1, query.t2)
            scores = self.aggregate.finalize_many(raw, query.t1, query.t2)
            return top_k_from_arrays(ids, scores, query.k)
        self.database.note_scalar_fallback()
        scores = np.empty(ids.size, dtype=np.float64)
        for pos, object_id in enumerate(ids):
            tree = self.trees[int(object_id)]
            before = self._stats.reads
            raw = self.score(int(object_id), query.t1, query.t2)
            # Normalize to the modeled charge (file open + two
            # root-to-leaf walks): actual successor traversals pay an
            # occasional extra next-leaf hop, and reported IO figures
            # must not depend on which scoring path answered the query.
            self._stats.reads = before + FILE_OPEN_IOS + 2 * tree.height
            scores[pos] = self.aggregate.finalize(raw, query.t1, query.t2)
        return top_k_from_arrays(ids, scores, query.k)

    def _query_many(self, t1s, t2s, ks, executor=None):
        """Batched EXACT2: one ``integrals_many`` pass over the workload.

        The scalar ``_query`` already answers from the store kernel
        with a cached modeled IO charge per query; the batch keeps
        both (``integrals_many`` rows are bit-identical to per-query
        ``integrals``) and only removes the per-query Python
        round-trips.  Falls back to the loop while the store is stale.
        """
        if not self.database.wants_store:
            return self._scalar_loop(t1s, t2s, ks)
        ids = np.fromiter(
            self.trees.keys(), dtype=np.int64, count=len(self.trees)
        )
        self._stats.reads += self._modeled_query_ios * int(t1s.size)
        raw = self.database.store().integrals_many(
            np.stack([t1s, t2s], axis=1)
        )
        results = []
        for row in range(t1s.size):
            scores = self.aggregate.finalize_many(
                raw[row], float(t1s[row]), float(t2s[row])
            )
            results.append(top_k_from_arrays(ids, scores, int(ks[row])))
        return results

    def _append(self, object_id: int, t_next: float, v_next: float) -> None:
        """Extend ``T_i`` with one entry: ``O(log_B n_i)`` IOs."""
        tree = self.trees[object_id]
        last_key, last_row = tree.last_entry()
        prev_prefix = float(last_row[4])
        t_prev = last_key
        v_prev = float(last_row[3])
        area = 0.5 * (t_next - t_prev) * (v_prev + v_next)
        new_prefix = prev_prefix + area
        row = np.asarray([t_prev, v_prev, t_next, v_next, new_prefix])
        height_before = tree.height
        self._bulk_only = False
        tree.insert(t_next, row)
        self._totals[object_id] = new_prefix
        # Only this tree's height can have changed; adjust the cached
        # modeled-IO charge by the delta (keeps appends O(log_B n_i)).
        self._modeled_query_ios += 2 * (tree.height - height_before)

    # ------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self._stats

    @property
    def index_size_bytes(self) -> int:
        return sum(device.size_bytes for device in self._devices)
