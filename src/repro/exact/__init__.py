"""Exact aggregate top-k methods (paper Section 2)."""

from repro.exact.base import QueryCost, RankingMethod
from repro.exact.exact1 import Exact1
from repro.exact.exact2 import Exact2
from repro.exact.exact3 import Exact3

__all__ = ["RankingMethod", "QueryCost", "Exact1", "Exact2", "Exact3"]
