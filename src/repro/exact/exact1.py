"""EXACT1: a single B+-tree over all segments, scanned per query.

The paper's improved baseline (Section 2): index the ``N`` line
segments of all objects in one B+-tree keyed by the left endpoint time;
a query walks to ``t1`` in ``O(log_B N)`` IOs, scans sequentially to
``t2`` maintaining ``m`` running sums (Equation (1) per overlapping
segment), and finishes with a size-``k`` priority queue.

Query cost is ``O(log_B N + sum_i q_i / B)`` IOs, which degrades to
``O(N/B)`` when the query interval is wide — the non-scalability that
motivates EXACT2/EXACT3.

One practical detail the paper leaves implicit: segments *straddling*
``t1`` have left endpoints earlier than ``t1``.  We track the maximum
segment duration ``D`` among *typical* segments at build time and
start the scan at ``t1 - D``; the few unusually long segments (e.g.
zero-score padding pieces spanning a large part of the domain) would
blow that window up, so they are kept in a separate side list of
packed blocks that every query scans wholesale — a handful of IOs
instead of a scan-back across a large fraction of the domain.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregates import SUM, Aggregate
from repro.core.database import TemporalDatabase
from repro.core.geometry import segment_integrals
from repro.core.queries import TopKQuery
from repro.core.results import TopKResult, top_k_from_arrays
from repro.exact.base import RankingMethod
from repro.storage.cache import LRUCache
from repro.storage.device import BlockDevice
from repro.storage.stats import IOStats
from repro.btree.tree import BPlusTree

#: Value-row layout for segment entries: obj_id, t0, v0, t1, v1.
_SEGMENT_COLUMNS = 5


class Exact1(RankingMethod):
    """The EXACT1 method (segment B+-tree + sequential scan)."""

    name = "EXACT1"

    def __init__(
        self,
        aggregate: Aggregate = SUM,
        block_bytes: int = 4096,
        cache_blocks: int = 0,
    ) -> None:
        super().__init__()
        self.aggregate = aggregate
        self._cache = LRUCache(cache_blocks) if cache_blocks > 0 else None
        self.device = BlockDevice(block_bytes=block_bytes, cache=self._cache, name="exact1")
        self.tree = BPlusTree(self.device, value_columns=_SEGMENT_COLUMNS)
        self.max_segment_duration = 0.0
        self._object_ids = np.empty(0, dtype=np.int64)
        self._slot_of = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def _build(self, database: TemporalDatabase) -> None:
        segments = database.all_segments()
        # Object ids need not be dense (e.g. sampled sub-databases);
        # map them onto contiguous running-sum slots.
        self._object_ids = database.object_ids()
        self._slot_of = np.full(int(self._object_ids.max()) + 1, -1, dtype=np.int64)
        self._slot_of[self._object_ids] = np.arange(self._object_ids.size)
        durations = segments[:, 3] - segments[:, 1]
        # Tail segments go to the side list; they would otherwise
        # stretch the straddler scan-back window across much of the
        # domain (zero-score padding pieces especially).  "Long" means
        # both far above the median and in the distribution's tail.
        threshold = min(
            float(np.quantile(durations, 0.98)),
            16.0 * float(np.median(durations)),
        )
        long_mask = durations > threshold
        if long_mask.sum() > segments.shape[0] // 10:
            # Degenerate distribution; fall back to one big group.
            long_mask = np.zeros(segments.shape[0], dtype=bool)
        short = segments[~long_mask]
        self.max_segment_duration = float(
            (short[:, 3] - short[:, 1]).max() if short.size else 0.0
        )
        self._long_blocks = []
        long_rows = segments[long_mask]
        capacity = max(1, self.device.block_bytes // (8 * _SEGMENT_COLUMNS))
        for lo in range(0, long_rows.shape[0], capacity):
            self._long_blocks.append(
                self.device.allocate(long_rows[lo : lo + capacity].copy())
            )
        self.tree.bulk_load(short[:, 1], short)

    def _query(self, query: TopKQuery) -> TopKResult:
        sums = np.zeros(self._object_ids.size, dtype=np.float64)
        # Long-segment side list: scanned wholesale (few blocks).
        for block_id in self._long_blocks:
            rows = self.device.read(block_id)
            contrib = self._contributions(rows, query.t1, query.t2)
            slots = self._slot_of[rows[:, 0].astype(np.int64)]
            np.add.at(sums, slots, contrib)
        scan_start = query.t1 - self.max_segment_duration
        for keys, rows in self.tree.scan_from(scan_start):
            if keys.size == 0:
                continue
            if keys[0] > query.t2:
                break
            cut = int(np.searchsorted(keys, query.t2, side="right"))
            rows = rows[:cut]
            if rows.shape[0]:
                contrib = self._contributions(rows, query.t1, query.t2)
                slots = self._slot_of[rows[:, 0].astype(np.int64)]
                np.add.at(sums, slots, contrib)
            if cut < keys.size:
                break
        if self.aggregate is not SUM:
            sums = np.asarray(
                [self.aggregate.finalize(s, query.t1, query.t2) for s in sums]
            )
        return top_k_from_arrays(self._object_ids, sums, query.k)

    def _contributions(self, rows: np.ndarray, t1: float, t2: float) -> np.ndarray:
        """Per-segment raw contributions for the active aggregate.

        sum/avg share the vectorized trapezoid path; other aggregates
        (e.g. F2) use their own per-segment closed forms.
        """
        # Fast path: aggregates whose raw contribution is the trapezoid
        # integral (sum, avg).
        from repro.core.aggregates import AvgAggregate, SumAggregate

        if isinstance(self.aggregate, (SumAggregate, AvgAggregate)):
            return segment_integrals(
                rows[:, 1], rows[:, 2], rows[:, 3], rows[:, 4], t1, t2
            )
        return np.asarray(
            [
                self.aggregate.segment_contribution(
                    row[1], row[2], row[3], row[4], t1, t2
                )
                for row in rows
            ]
        )

    def _append(self, object_id: int, t_next: float, v_next: float) -> None:
        """Insert the new segment's entry: ``O(log_B N)`` IOs."""
        obj = self.database.get(object_id)
        fn = obj.function
        t_prev = float(fn.times[-2])
        v_prev = float(fn.values[-2])
        row = np.asarray([object_id, t_prev, v_prev, t_next, v_next])
        self.tree.insert(t_prev, row)
        self.max_segment_duration = max(self.max_segment_duration, t_next - t_prev)

    # ------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self.device.stats

    @property
    def index_size_bytes(self) -> int:
        return self.device.size_bytes

    def drop_caches(self) -> None:
        self.device.drop_cache()
