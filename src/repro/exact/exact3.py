"""EXACT3: one external interval tree, two stabbing queries per query.

Paper Section 2 ("Using one interval tree"): take EXACT2's data entries
but key each by the *elementary* interval ``I^-_{i,l} = [t_{i,l-1},
t_{i,l}]`` instead of a time point, and put all ``N`` entries from all
objects into a single disk-based interval tree ``S``.  Because each
object's elementary intervals partition ``[0, T]``, a stabbing query at
any ``t`` returns exactly one entry per object; two stabbing queries
(at ``t1`` and ``t2``) supply everything Equation (2) needs for all
``m`` objects at once.

Query cost: ``O(log_B N + m/B)`` IOs for the stabs plus the size-``k``
priority queue — the best exact method in the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.aggregates import SUM, Aggregate
from repro.core.database import TemporalDatabase
from repro.core.plfstore import _CHUNK_ELEMENTS, isin_sorted
from repro.core.queries import TopKQuery
from repro.core.results import TopKResult, top_k_from_arrays
from repro.exact.base import RankingMethod
from repro.parallel.executor import (
    OVERSUBSCRIPTION,
    chunk_ranges,
)
from repro.storage.cache import LRUCache
from repro.storage.device import BlockDevice
from repro.storage.stats import IOStats
from repro.intervaltree.tree import ExternalIntervalTree

#: Value-row layout (after the implicit lo/hi columns): obj_id,
#: v_at_lo, v_at_hi, prefix mass at hi.
_VALUE_COLUMNS = 4


def stab_cumulatives_many(view, ts: np.ndarray) -> np.ndarray:
    """``C_i(t)`` for every object and query time: the batched stab.

    Replicates :meth:`Exact3._cumulatives_at`'s arithmetic bit for bit
    for query times that are not knot times of any object (the caller
    routes knot-coincident times through real stabs): the containing
    elementary segment is located on the CSR arrays, and the
    cumulative is the stab entry's ``prefix_hi`` minus the same
    clamped-trapezoid tail, in the same operation order.  Objects the
    stab would miss (``t`` outside their span) take the scalar path's
    fallback values — 0 before the span, the total mass after it.

    ``view`` is a :class:`~repro.core.plfstore.CSRView`, so process
    workers can run this without the full store.
    """
    ts = np.atleast_1d(np.asarray(ts, dtype=np.float64))
    q = ts.size
    m = view.num_objects
    starts, ends, totals = view.starts, view.ends, view.totals
    out = np.empty((q, m), dtype=np.float64)
    step = max(1, _CHUNK_ELEMENTS // max(m, 1))
    for lo_row in range(0, q, step):
        col = ts[lo_row : lo_row + step, None]
        tc = np.clip(col, starts, ends)
        j = view.locate_grid(tc)
        lo = view.knot_times[j]
        hi = view.knot_times[j + 1]
        v_lo = view.knot_values[j]
        v_hi = view.knot_values[j + 1]
        prefix_hi = view.prefix_masses[j + 1]
        width = hi - lo
        slope = np.where(
            width > 0, (v_hi - v_lo) / np.where(width > 0, width, 1.0), 0.0
        )
        t_clamped = np.clip(col, lo, hi)
        v_at_t = v_lo + slope * (t_clamped - lo)
        tail = 0.5 * (hi - t_clamped) * (v_at_t + v_hi)
        cum = prefix_hi - tail
        # The scalar path fills stab-missed objects from the store
        # kernel, whose clamp yields exactly 0 / total outside the
        # span (non-knot t is never equal to a span endpoint).
        out[lo_row : lo_row + step] = np.where(
            col < starts, 0.0, np.where(col > ends, totals, cum)
        )
    return out


def exact3_batch_answers(
    view,
    object_ids: np.ndarray,
    aggregate: Aggregate,
    t1s: np.ndarray,
    t2s: np.ndarray,
    ks: np.ndarray,
) -> List[TopKResult]:
    """Batched EXACT3 answers for non-knot query times.

    Pure function of the CSR view — no devices, no IO counters — so
    the engine facade can fan contiguous query chunks across pool
    workers and merge answers in submission order (every backend
    computes the same elementwise arithmetic, hence identical bits).
    """
    from repro.approximate.toplists import top_k_rows

    # One kernel pass over both endpoints (elementwise arithmetic, so
    # splitting afterwards is bit-identical to two separate passes).
    cums = stab_cumulatives_many(view, np.concatenate([t1s, t2s]))
    low_cum = cums[: t1s.size]
    high_cum = cums[t1s.size :]
    raw = high_cum - low_cum
    for row in range(t1s.size):
        raw[row] = aggregate.finalize_many(
            raw[row], float(t1s[row]), float(t2s[row])
        )
    return top_k_rows(object_ids, raw, ks)


class Exact3(RankingMethod):
    """The EXACT3 method (single interval tree + stabbing queries)."""

    name = "EXACT3"

    def __init__(
        self,
        aggregate: Aggregate = SUM,
        block_bytes: int = 4096,
        cache_blocks: int = 0,
    ) -> None:
        super().__init__()
        self.aggregate = aggregate
        self._cache = LRUCache(cache_blocks) if cache_blocks > 0 else None
        self.device = BlockDevice(block_bytes=block_bytes, cache=self._cache, name="exact3")
        self.tree = ExternalIntervalTree(self.device, value_columns=_VALUE_COLUMNS)
        self._object_ids = np.empty(0, dtype=np.int64)
        self._slot_of = np.empty(0, dtype=np.int64)
        # Frontier metadata for appends: object -> (end time, end value,
        # total prefix).  Small (O(m)) and in memory, standing in for
        # the O(log_B N) frontier lookup the paper describes.
        self._frontier: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def _build(self, database: TemporalDatabase) -> None:
        store = database.store()
        self._object_ids = store.object_ids
        self._slot_of = np.full(int(self._object_ids.max()) + 1, -1, dtype=np.int64)
        self._slot_of[self._object_ids] = np.arange(self._object_ids.size)
        # All N leaf entries straight from the columnar store.
        lows, highs, rows = store.segment_table(include_prefix=True)
        for slot, object_id in enumerate(self._object_ids):
            self._frontier[int(object_id)] = (
                float(store.ends[slot]),
                float(store.knot_values[store.offsets[slot + 1] - 1]),
                float(store.totals[slot]),
            )
        self.tree.build(lows, highs, rows)

    def _cumulatives_at(self, t: float) -> np.ndarray:
        """``C_i(t)`` for every object, from one stabbing query.

        The stab returns rows ``(lo, hi, obj, v_lo, v_hi, prefix_hi)``;
        the cumulative is ``prefix_hi - sigma(t, hi)`` with the
        within-segment trapezoid.  When ``t`` coincides with a shared
        segment endpoint both adjacent entries are returned and agree,
        so duplicates are collapsed by keeping the first per object.
        """
        rows = self.tree.stab(t)
        obj = rows[:, 2].astype(np.int64)
        lo = rows[:, 0]
        hi = rows[:, 1]
        v_lo = rows[:, 3]
        v_hi = rows[:, 4]
        prefix_hi = rows[:, 5]
        width = hi - lo
        slope = np.where(width > 0, (v_hi - v_lo) / np.where(width > 0, width, 1.0), 0.0)
        t_clamped = np.clip(t, lo, hi)
        v_at_t = v_lo + slope * (t_clamped - lo)
        tail = 0.5 * (hi - t_clamped) * (v_at_t + v_hi)
        cumulative_rows = prefix_hi - tail
        out = np.full(self._object_ids.size, np.nan, dtype=np.float64)
        # Keep the first row per object (duplicates agree; see docstring).
        first = np.unique(obj, return_index=True)[1]
        out[self._slot_of[obj[first]]] = cumulative_rows[first]
        missing = np.isnan(out)
        if missing.any():
            # Objects missed by the stab lie entirely left/right of t;
            # a padded database never hits this, but stay correct.  Use
            # the kernel only when the store is already warm — forcing
            # an O(N) rebuild after every streaming append just to fill
            # a few slots would defeat the O(log N) incremental insert.
            if self.database.has_store:
                out[missing] = self.database.store().cumulative_at(t)[missing]
            else:
                for slot in np.flatnonzero(missing):
                    fn = self.database.get(int(self._object_ids[slot])).function
                    out[slot] = fn.cumulative(t)
        return out

    def _query(self, query: TopKQuery) -> TopKResult:
        low_cum = self._cumulatives_at(query.t1)
        high_cum = self._cumulatives_at(query.t2)
        raw = high_cum - low_cum
        raw = self.aggregate.finalize_many(raw, query.t1, query.t2)
        return top_k_from_arrays(self._object_ids, raw, query.k)

    def _query_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
        executor=None,
    ) -> List[TopKResult]:
        """Batched EXACT3: one vectorized stab-arithmetic pass.

        Scores come from :func:`stab_cumulatives_many` (bit-identical
        to the per-query stabs), and the IO model charges, per query,
        exactly the block reads its two stabbing walks would perform
        (:meth:`ExternalIntervalTree.modeled_stab_reads_many`).  Query
        times that coincide with a knot — where a stab returns two
        agreeing entries and the replicated arithmetic could pick the
        other one — take the real scalar path, as does the whole batch
        while preconditions for the model fail: a pending overflow
        buffer (appends) or a stale store.

        With an attached buffer pool (``cache_blocks > 0``) the batch
        stays on the kernel: the scalar loop's block access stream is
        *replayed*, in query order, through
        :meth:`~repro.storage.device.BlockDevice.replay_reads` using
        the modeled per-stab block sequences, so cache hits, read
        charges, and the final LRU contents are identical to the
        scalar loop's.

        ``executor`` fans contiguous query chunks across workers; the
        chunk task is a pure function of the picklable
        :class:`~repro.core.plfstore.CSRView`, so serial, thread, and
        process backends return identical answers in query order.
        """
        usable = not self.tree.has_overflow and self.database.wants_store
        if not usable:
            if not self.database.wants_store:
                self.database.note_scalar_fallback()
            return self._scalar_loop(t1s, t2s, ks)
        store = self.database.store()
        knots = store.knot_time_set()
        boundary = isin_sorted(knots, t1s) | isin_sorted(knots, t2s)
        results: List[TopKResult] = [None] * t1s.size
        if self.device.has_cache:
            # LRU replay: charge (and update the pool with) the exact
            # scalar access stream — per query, the t1 stab's block
            # sequence then the t2 stab's; knot-coincident queries run
            # the real scalar path in sequence, touching the pool the
            # same way.
            for idx in range(t1s.size):
                if boundary[idx]:
                    results[idx] = self._query(
                        TopKQuery(
                            float(t1s[idx]), float(t2s[idx]), int(ks[idx])
                        )
                    )
                else:
                    self.device.replay_reads(
                        self.tree.modeled_stab_blocks(t1s[idx])
                    )
                    self.device.replay_reads(
                        self.tree.modeled_stab_blocks(t2s[idx])
                    )
        else:
            for idx in np.flatnonzero(boundary):
                results[idx] = self._query(
                    TopKQuery(float(t1s[idx]), float(t2s[idx]), int(ks[idx]))
                )
        regular = np.flatnonzero(~boundary)
        if regular.size == 0:
            return results
        if not self.device.has_cache:
            reads = self.tree.modeled_stab_reads_many(
                t1s[regular]
            ) + self.tree.modeled_stab_reads_many(t2s[regular])
            self.device.stats.record_reads(int(reads.sum()))
        view = store.csr_view()
        rt1, rt2, rk = t1s[regular], t2s[regular], ks[regular]
        if executor is None or executor.is_serial or regular.size < 2:
            answers = exact3_batch_answers(
                view, self._object_ids, self.aggregate, rt1, rt2, rk
            )
        else:
            from repro.parallel.workers import exact3_topk_chunk

            chunks = chunk_ranges(
                int(regular.size), executor.workers * OVERSUBSCRIPTION
            )
            state = (view, self._object_ids, self.aggregate, rt1, rt2, rk)
            with executor.session(state) as session:
                parts = session.map(exact3_topk_chunk, chunks)
            answers = [result for part in parts for result in part]
        for pos, idx in enumerate(regular):
            results[idx] = answers[pos]
        return results

    def _append(self, object_id: int, t_next: float, v_next: float) -> None:
        """Insert the new elementary interval: amortized ``O(log N)``."""
        t_prev, v_prev, prefix_prev = self._frontier[object_id]
        area = 0.5 * (t_next - t_prev) * (v_prev + v_next)
        new_prefix = prefix_prev + area
        row = np.asarray([object_id, v_prev, v_next, new_prefix])
        self.tree.insert(t_prev, t_next, row)
        self._frontier[object_id] = (t_next, v_next, new_prefix)

    # ------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self.device.stats

    @property
    def index_size_bytes(self) -> int:
        return self.device.size_bytes

    def drop_caches(self) -> None:
        self.device.drop_cache()
