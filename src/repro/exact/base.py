"""Common interface for every ranking method (exact and approximate).

All six paper methods answer the same query (``top-k(t1, t2, sum)``)
and are compared on the same four axes: index size, construction cost,
query cost (IOs and time), and update cost.  :class:`RankingMethod`
fixes that contract so benchmarks can sweep methods uniformly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core import buildcount
from repro.core.database import TemporalDatabase
from repro.core.queries import TopKQuery, workload_arrays
from repro.core.results import TopKResult
from repro.storage.stats import IOStats


@dataclass
class QueryCost:
    """Measured cost of one query."""

    ios: int
    seconds: float
    result: TopKResult


class RankingMethod(ABC):
    """A built index that answers aggregate top-k queries.

    Subclasses implement :meth:`_build` and :meth:`_query`; the public
    wrappers add timing, IO measurement, and state checks.
    """

    #: Paper name of the method ("EXACT1", "APPX2+", ...).
    name: str = "abstract"

    def __init__(self) -> None:
        self.database: Optional[TemporalDatabase] = None
        self.build_seconds: float = 0.0
        self._built = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def build(self, database: TemporalDatabase) -> "RankingMethod":
        """Construct the index over ``database``; returns self."""
        start = time.perf_counter()
        buildcount.record("index")
        self.database = database
        self._build(database)
        self.build_seconds = time.perf_counter() - start
        self._built = True
        return self

    def query(self, query: TopKQuery) -> TopKResult:
        """Answer ``top-k(t1, t2, sum)``."""
        self._check_built()
        return self._query(query)

    def measured_query(self, query: TopKQuery, cold: bool = True) -> QueryCost:
        """Answer a query and report its IOs and wall time.

        ``cold=True`` drops buffer pools first, so IO counts match the
        paper's uncached measurements.
        """
        self._check_built()
        if cold:
            self.drop_caches()
        stats = self.io_stats
        before = stats.snapshot()
        start = time.perf_counter()
        result = self._query(query)
        seconds = time.perf_counter() - start
        delta = stats.snapshot() - before
        return QueryCost(ios=delta.reads + delta.writes, seconds=seconds, result=result)

    def query_many(self, queries, executor=None) -> List[TopKResult]:
        """Answer a whole workload of ``top-k(t1, t2, sum)`` queries.

        ``queries`` is anything :func:`repro.core.queries.
        workload_arrays` accepts — a ``(q, 3)`` array of ``(t1, t2,
        k)`` rows, a list of :class:`TopKQuery`, or a sampled
        workload batch.  Answers come back in query order and are
        guaranteed identical — scores, tie-breaks, and total IO
        charges — to looping :meth:`query` over the workload; methods
        with a vectorized pipeline override :meth:`_query_many` and
        fall back to the loop whenever a precondition for the modeled
        IO accounting fails (buffer pools, pending appends).

        ``executor`` is forwarded to pipelines that can fan query
        chunks across workers (EXACT3); others ignore it.
        """
        self._check_built()
        t1s, t2s, ks = workload_arrays(queries)
        return self._query_many(t1s, t2s, ks, executor)

    def _query_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
        executor=None,
    ) -> List[TopKResult]:
        """Default batched path: the scalar per-query loop."""
        return self._scalar_loop(t1s, t2s, ks)

    def _scalar_loop(
        self, t1s: np.ndarray, t2s: np.ndarray, ks: np.ndarray
    ) -> List[TopKResult]:
        """The reference loop every batched pipeline must reproduce."""
        return [
            self._query(TopKQuery(float(t1), float(t2), int(k)))
            for t1, t2, k in zip(t1s, t2s, ks)
        ]

    def append(self, object_id: int, t_next: float, v_next: float) -> None:
        """Apply a Section 4 update (append one segment to one object).

        The database itself must be updated separately (or first) via
        :meth:`TemporalDatabase.append_segment`; this method maintains
        the index.  Methods that cannot update incrementally rebuild.
        """
        self._check_built()
        self._append(object_id, t_next, v_next)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def io_stats(self) -> IOStats:
        """Combined IO counters across every device the method owns."""

    @property
    @abstractmethod
    def index_size_bytes(self) -> int:
        """On-"disk" footprint of the built index."""

    def drop_caches(self) -> None:
        """Clear any buffer pools (default: nothing to clear)."""

    # ------------------------------------------------------------------
    # subclass API
    # ------------------------------------------------------------------
    @abstractmethod
    def _build(self, database: TemporalDatabase) -> None: ...

    @abstractmethod
    def _query(self, query: TopKQuery) -> TopKResult: ...

    def _append(self, object_id: int, t_next: float, v_next: float) -> None:
        raise NotImplementedError(f"{self.name} does not support appends")

    def _check_built(self) -> None:
        if not self._built:
            from repro.core.errors import IndexStateError

            raise IndexStateError(f"{self.name} has not been built")

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return f"{type(self).__name__}({state})"
