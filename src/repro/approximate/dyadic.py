"""QUERY2: dyadic-interval top lists (paper Section 3.2).

Instead of all ``O(r^2)`` breakpoint pairs, QUERY2 stores a top-
``k_max`` list only for every *dyadic* interval — the spans of the
nodes of a balanced binary tree over the ``r - 1`` elementary
breakpoint gaps (< ``2r`` intervals in total).  Any snapped query
interval decomposes into at most ``2 log r`` disjoint dyadic
intervals; the candidate set ``K`` is the union of their top lists,
with scores of repeated objects added.

Guarantees (Lemmas 4-5): an ``(eps, 2 log r)``-approximation, size
``Theta(r k_max / B)``, query ``O(k log r log_B k)`` IOs.  The score
returned for a candidate is a *lower bound* on its snapped-interval
aggregate (missing dyadic lists contribute 0), which is why APPX2+
re-scores candidates exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import InvalidQueryError
from repro.core.results import TopKResult, top_k_from_arrays
from repro.storage.device import BlockDevice
from repro.btree.batch import modeled_successor_many, supports_model
from repro.btree.tree import BPlusTree
from repro.parallel.executor import (
    OVERSUBSCRIPTION,
    ParallelExecutor,
    chunk_ranges,
    get_executor,
)
from repro.parallel.workers import dyadic_toplists_chunk
from repro.approximate.breakpoints import Breakpoints
from repro.approximate.toplists import (
    StoredTopList,
    TopListBatcher,
    cumulative_matrix,
    cumulative_matrix_T,
    top_k_ragged,
    top_kmax_of_column,
)


@dataclass
class _DyadicNode:
    """One segment-tree node: an elementary-gap range and its top list.

    When the ``k_max`` list fits in the node's own block (16 bytes per
    entry), it is stored *inline* — reading the node yields the list
    with no extra IO and no second block, which keeps the structure at
    its ``Theta(r k_max / B)`` size with a small constant.  Larger
    lists fall back to a packed :class:`StoredTopList`.
    """

    lo: int
    hi: int
    top_list: Optional[StoredTopList] = None
    inline_rows: Optional[object] = None  # (ids, scores) ndarray pair
    left: Optional[int] = None
    right: Optional[int] = None


class DyadicIndex:
    """The QUERY2 structure: a segment tree of top-``k_max`` lists."""

    def __init__(
        self,
        device: BlockDevice,
        breakpoints: Breakpoints,
        kmax: int,
    ) -> None:
        self.device = device
        self.breakpoints = breakpoints
        self.kmax = kmax
        self.root_id: Optional[int] = None
        self.num_nodes = 0
        self.snap_tree = BPlusTree(device, value_columns=1)
        # Batched-query walk metadata (see _topology) and memoized
        # decompositions (snapped pairs repeat across workloads; the
        # cache is bounded by the O(r^2) distinct pairs).
        self._topo_cache: Optional[Dict[int, tuple]] = None
        self._decomp_cache: Dict[Tuple[int, int], Tuple[List[int], int]] = {}

    # ------------------------------------------------------------------
    def build(
        self,
        database: TemporalDatabase,
        batched: bool = True,
        executor: Optional[ParallelExecutor] = None,
    ) -> "DyadicIndex":
        """Materialize every dyadic node list and wire the segment tree.

        The batched path (default) first enumerates all node ``(lo,
        hi)`` ranges in the recursion's preorder, materializes every
        node's top list in one :class:`TopListBatcher` pass over the
        row differences ``P_T[lo] - P_T[hi]``, then wires the tree
        with the same allocation/write sequence as the recursive
        build — node lists, device layout, and IO charges are all
        byte-identical to ``batched=False`` (the historical per-frame
        recursion).

        ``executor`` (default: the environment-resolved
        :func:`repro.parallel.get_executor`) fans contiguous chunks
        of the preorder node columns out across workers; row results
        are per-row independent, so the concatenated matrices — and
        the tree wired from them on the coordinator — are
        byte-identical on every backend.
        """
        times = self.breakpoints.times
        num_gaps = times.size - 1
        self._topo_cache = None
        self._decomp_cache = {}
        if batched:
            ids, p_t = cumulative_matrix_T(database, times)
            los, his = self._enumerate_nodes(0, num_gaps)
            nonneg = bool(database.store().knot_values.min() >= 0.0)
            if executor is None:
                executor = get_executor()
            if executor.is_serial:
                neg = np.ascontiguousarray(p_t[los] - p_t[his])
                batcher = TopListBatcher(ids, los.size, self.kmax, nonneg)
                top_ids, top_scores, _ = batcher.top_lists(neg)
            else:
                chunks = chunk_ranges(
                    int(los.size), executor.workers * OVERSUBSCRIPTION
                )
                state = (ids, p_t, los, his, self.kmax, nonneg)
                with executor.session(state) as session:
                    parts = session.map(dyadic_toplists_chunk, chunks)
                top_ids = np.concatenate([part[0] for part in parts])
                top_scores = np.concatenate([part[1] for part in parts])
            cursor = [0]
            self.root_id = self._wire_node(
                top_ids, top_scores, cursor, 0, num_gaps
            )
        else:
            ids, matrix = cumulative_matrix(database, times)
            self.root_id = self._build_node(ids, matrix, 0, num_gaps)
        self.snap_tree.bulk_load(
            times, np.arange(times.size, dtype=np.float64).reshape(-1, 1)
        )
        return self

    @staticmethod
    def _enumerate_nodes(lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """All node ranges in recursion preorder: (los, his) arrays."""
        los: List[int] = []
        his: List[int] = []
        stack = [(lo, hi)]
        while stack:
            node_lo, node_hi = stack.pop()
            los.append(node_lo)
            his.append(node_hi)
            if node_hi - node_lo > 1:
                mid = (node_lo + node_hi) // 2
                # Push right first so the left subtree pops next
                # (preorder, matching the recursive build).
                stack.append((mid, node_hi))
                stack.append((node_lo, mid))
        return np.asarray(los, dtype=np.int64), np.asarray(his, dtype=np.int64)

    def _make_node(
        self, lo: int, hi: int, top_ids: np.ndarray, top_scores: np.ndarray
    ) -> Tuple[_DyadicNode, int]:
        """Allocate one node holding the given (already sorted) list."""
        # Inline when the list shares the node's block comfortably
        # (leave ~1/8 of the block for the node metadata).
        inline_budget = (StoredTopList.capacity(self.device) * 7) // 8
        if top_ids.size <= inline_budget:
            node = _DyadicNode(lo=lo, hi=hi, inline_rows=(top_ids, top_scores))
        else:
            stored = StoredTopList.store(self.device, top_ids, top_scores)
            node = _DyadicNode(lo=lo, hi=hi, top_list=stored)
        node_id = self.device.allocate(node)
        self.num_nodes += 1
        return node, node_id

    def _wire_node(
        self,
        top_ids: np.ndarray,
        top_scores: np.ndarray,
        cursor: List[int],
        lo: int,
        hi: int,
    ) -> int:
        """Wire the subtree over ``[lo, hi)`` from batch-built lists.

        ``cursor`` walks the preorder columns of the batched arrays;
        allocation order matches :meth:`_build_node` exactly.
        """
        column = cursor[0]
        cursor[0] += 1
        node, node_id = self._make_node(
            lo, hi, top_ids[column].copy(), top_scores[column].copy()
        )
        if hi - lo > 1:
            mid = (lo + hi) // 2
            node.left = self._wire_node(top_ids, top_scores, cursor, lo, mid)
            node.right = self._wire_node(top_ids, top_scores, cursor, mid, hi)
            self.device.write(node_id, node)
        return node_id

    def _build_node(
        self, ids: np.ndarray, matrix: np.ndarray, lo: int, hi: int
    ) -> int:
        """Create the node covering elementary gaps ``[lo, hi)``."""
        scores = matrix[:, hi] - matrix[:, lo]
        top_ids, top_scores = top_kmax_of_column(ids, scores, self.kmax)
        node, node_id = self._make_node(lo, hi, top_ids, top_scores)
        if hi - lo > 1:
            mid = (lo + hi) // 2
            node.left = self._build_node(ids, matrix, lo, mid)
            node.right = self._build_node(ids, matrix, mid, hi)
            self.device.write(node_id, node)
        return node_id

    # ------------------------------------------------------------------
    def snap_indices(self, t1: float, t2: float) -> Optional[Tuple[int, int]]:
        """``(j1, j2)`` with ``B(t1) = b_{j1}``, ``B(t2) = b_{j2}``.

        Uses the breakpoint B+-tree (charging its IOs); None when the
        snapped interval is empty.
        """
        hit1 = self.snap_tree.successor(t1)
        hit2 = self.snap_tree.successor(t2)
        if hit1 is None or hit2 is None:
            return None
        j1 = int(hit1[1][0])
        j2 = int(hit2[1][0])
        if j2 <= j1:
            return None
        return j1, j2

    def decompose(self, j1: int, j2: int) -> List[_DyadicNode]:
        """Canonical disjoint cover of elementary gaps ``[j1, j2)``.

        Walks the segment tree reading node blocks (IO-charged); at
        most ``2 log2(r)`` covered nodes are returned (Lemma 4's
        decomposition bound, asserted in tests).
        """
        covered: List[_DyadicNode] = []
        stack = [self.root_id]
        while stack:
            node_id = stack.pop()
            node: _DyadicNode = self.device.read(node_id)
            if node.hi <= j1 or node.lo >= j2:
                continue
            if j1 <= node.lo and node.hi <= j2:
                covered.append(node)
                continue
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return covered

    def candidates(self, t1: float, t2: float, k: int) -> Dict[int, float]:
        """The candidate set ``K``: object -> summed dyadic scores.

        Reads the top-``k`` prefix of each covered node's list (the
        paper inserts top-k objects per dyadic interval into ``K``).
        """
        if k > self.kmax:
            raise InvalidQueryError(f"k={k} exceeds kmax={self.kmax}")
        snapped = self.snap_indices(t1, t2)
        if snapped is None:
            return {}
        id_chunks: List[np.ndarray] = []
        val_chunks: List[np.ndarray] = []
        for node in self.decompose(*snapped):
            if node.inline_rows is not None:
                ids, vals = node.inline_rows
                ids, vals = ids[:k], vals[:k]
            else:
                ids, vals = node.top_list.read_top(self.device, k)
            id_chunks.append(ids)
            val_chunks.append(vals)
        if not id_chunks:
            return {}
        all_ids = np.concatenate(id_chunks)
        all_vals = np.concatenate(val_chunks)
        # Aggregate repeated objects with np.add.at: the unbuffered
        # accumulation adds contributions in stream order from 0.0,
        # exactly the float summation order of the historical
        # per-entry dict loop, so summed scores match bit for bit.
        unique_ids, inverse = np.unique(all_ids, return_inverse=True)
        sums = np.zeros(unique_ids.size, dtype=np.float64)
        np.add.at(sums, inverse, all_vals)
        # Present candidates in first-appearance order, matching the
        # historical dict's insertion order (consumers iterate it).
        first_seen = np.full(unique_ids.size, all_ids.size, dtype=np.int64)
        np.minimum.at(first_seen, inverse, np.arange(all_ids.size))
        order = np.argsort(first_seen)
        return {
            int(object_id): float(total)
            for object_id, total in zip(unique_ids[order], sums[order])
        }

    def query(self, t1: float, t2: float, k: int) -> TopKResult:
        """Top-k by summed candidate scores (the APPX2 answer)."""
        pool = self.candidates(t1, t2, k)
        if not pool:
            return TopKResult()
        ids = np.fromiter(pool.keys(), dtype=np.int64, count=len(pool))
        vals = np.fromiter(pool.values(), dtype=np.float64, count=len(pool))
        return top_k_from_arrays(ids, vals, k)

    # ------------------------------------------------------------------
    # batched query pipeline
    # ------------------------------------------------------------------
    def snap_indices_many(
        self, t1s: np.ndarray, t2s: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`snap_indices` for a whole workload.

        Returns ``(j1s, j2s, valid, reads)``: the snapped breakpoint
        indices, whether each snap is non-degenerate (both successors
        exist and ``j2 > j1``), and the block reads the scalar snap's
        two B+-tree walks charge per query (always both walks, like
        the scalar path).  Requires the snap tree's bulk layout
        (:func:`repro.btree.batch.supports_model`).
        """
        times = self.breakpoints.times
        cap = self.snap_tree.leaf_capacity
        height = self.snap_tree.height
        j1s, exists1, reads1 = modeled_successor_many(times, t1s, cap, height)
        j2s, exists2, reads2 = modeled_successor_many(times, t2s, cap, height)
        valid = exists1 & exists2 & (j2s > j1s)
        return j1s, j2s, valid, reads1 + reads2

    def _topology(self) -> Dict[int, tuple]:
        """The whole segment tree as in-memory walk metadata (cached).

        Maps each node block id to ``(lo, hi, left, right, ids, vals,
        stored_count, stored_blocks)`` where ``ids``/``vals`` are the
        node's *full* top list materialized once (inline rows or the
        concatenation of its packed list blocks) and ``stored_count``/
        ``stored_blocks`` are the stored list's length and block ids
        (``None`` for inline nodes, whose list costs no extra IO).
        Fetched with :meth:`BlockDevice.peek`: the batched pipeline
        dedups physical payload access across the workload and charges
        the scalar walk's IOs analytically (or replays them through
        the buffer pool) instead.
        """
        cached = getattr(self, "_topo_cache", None)
        if cached is not None:
            return cached
        topology: Dict[int, tuple] = {}
        stack = [self.root_id]
        while stack:
            node_id = stack.pop()
            node: _DyadicNode = self.device.peek(node_id)
            if node.inline_rows is not None:
                ids, vals = node.inline_rows
                stored_count = None
                stored_blocks = None
            else:
                ids, vals = StoredTopList.decode_pieces(
                    [self.device.peek(b) for b in node.top_list.block_ids]
                )
                stored_count = node.top_list.count
                stored_blocks = node.top_list.block_ids
            topology[node_id] = (
                node.lo, node.hi, node.left, node.right,
                ids, vals, stored_count, stored_blocks,
            )
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        self._topo_cache = topology
        return topology

    def _simulate_decompose(
        self, j1: int, j2: int
    ) -> Tuple[List[int], List[int]]:
        """Replay :meth:`decompose`'s walk on the cached topology.

        Returns the covered node ids in the exact order the walk
        appends them, plus every node id it reads in pop order
        (covered or not — the scalar walk charges each; the LRU
        replay path streams them through the pool in this order).
        Memoized per snapped pair: serving workloads revisit pairs.
        """
        cache = getattr(self, "_decomp_cache", None)
        if cache is None:
            cache = {}
            self._decomp_cache = cache
        hit = cache.get((j1, j2))
        if hit is not None:
            return hit
        topology = self._topology()
        covered: List[int] = []
        visited: List[int] = []
        stack = [self.root_id]
        while stack:
            node_id = stack.pop()
            visited.append(node_id)
            lo, hi, left, right = topology[node_id][:4]
            if hi <= j1 or lo >= j2:
                continue
            if j1 <= lo and hi <= j2:
                covered.append(node_id)
                continue
            if left is not None:
                stack.append(left)
            if right is not None:
                stack.append(right)
        cache[(j1, j2)] = (covered, visited)
        return covered, visited

    def decompose_many(
        self, j1s: np.ndarray, j2s: np.ndarray
    ) -> Tuple[List[List[int]], np.ndarray]:
        """Covered-node ids for many snapped pairs, without device IO.

        Returns ``(covered_lists, walk_reads)``; the caller charges
        ``walk_reads`` (the per-pair node reads :meth:`decompose`
        performs) against the device when it commits the batch's
        modeled cost.  Pairs are deduped internally.
        """
        j1s = np.asarray(j1s, dtype=np.int64)
        j2s = np.asarray(j2s, dtype=np.int64)
        span = int(self.breakpoints.times.size) + 1
        keys = j1s * span + j2s
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        covered_unique: List[List[int]] = []
        visited_unique = np.empty(unique_keys.size, dtype=np.int64)
        for pos, key in enumerate(unique_keys):
            covered, visited = self._simulate_decompose(
                int(key) // span, int(key) % span
            )
            covered_unique.append(covered)
            visited_unique[pos] = len(visited)
        return (
            [covered_unique[i] for i in inverse],
            visited_unique[inverse],
        )

    def candidates_many(
        self, t1s: np.ndarray, t2s: np.ndarray, ks: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batched :meth:`candidates`: per-query candidate arrays.

        Returns one ``(object_ids, summed_scores)`` pair per query, in
        the scalar dict's first-appearance order with bit-identical
        sums: every query's top-list entries join one global
        ``(query, object, score)`` stream and a single ``np.add.at``
        pass accumulates per-(query, object) totals in stream order —
        float-associativity-identical to the per-query loop.  Node
        payloads are fetched once per touched node; the IO charge per
        query is exactly the scalar walk + list reads, committed in
        bulk — or, when a buffer pool is attached, replayed through
        the pool in scalar per-query order so hit counts and LRU
        state match the scalar loop exactly.  Falls back to the
        scalar loop when the snap tree left bulk form.
        """
        if ks.size and int(ks.max()) > self.kmax:
            raise InvalidQueryError(
                f"k={int(ks.max())} exceeds kmax={self.kmax}"
            )
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        if not supports_model(self.snap_tree):
            pools = []
            for t1, t2, k in zip(t1s, t2s, ks):
                pool = self.candidates(float(t1), float(t2), int(k))
                if pool:
                    pools.append((
                        np.fromiter(pool.keys(), np.int64, len(pool)),
                        np.fromiter(pool.values(), np.float64, len(pool)),
                    ))
                else:
                    pools.append(empty)
            return pools
        replay = self.device.has_cache
        j1s, j2s, valid, snap_reads = self.snap_indices_many(t1s, t2s)
        total_reads = int(snap_reads.sum())
        pools = [empty] * int(t1s.size)
        valid_idx = np.flatnonzero(valid)
        if valid_idx.size == 0:
            if replay:
                self._replay_scalar_reads(t1s, t2s, j1s, j2s, valid, ks)
            else:
                self.device.stats.record_reads(total_reads)
            return pools
        covered_lists, walk_reads = self.decompose_many(
            j1s[valid_idx], j2s[valid_idx]
        )
        total_reads += int(walk_reads.sum())
        # Dedup identical (snapped pair, k) requests: their candidate
        # pools are the same arrays.
        span = int(self.breakpoints.times.size) + 1
        triple_keys = (
            j1s[valid_idx] * span + j2s[valid_idx]
        ) * np.int64(self.kmax + 1) + ks[valid_idx]
        unique_triples, first_of_triple, triple_inverse = np.unique(
            triple_keys, return_index=True, return_inverse=True
        )
        topology = self._topology()
        cap = StoredTopList.capacity(self.device)
        segment_ids: List[np.ndarray] = []
        segment_vals: List[np.ndarray] = []
        segment_triple: List[int] = []
        list_reads = np.zeros(unique_triples.size, dtype=np.int64)
        for tpos in range(unique_triples.size):
            rep = int(first_of_triple[tpos])
            k = int(ks[valid_idx[rep]])
            reads = 0
            for node_id in covered_lists[rep]:
                ids, vals, stored_count = topology[node_id][4:7]
                segment_ids.append(ids[:k])
                segment_vals.append(vals[:k])
                segment_triple.append(tpos)
                if stored_count is not None:
                    reads += max(1, -(-min(k, stored_count) // cap))
            list_reads[tpos] = reads
        total_reads += int(list_reads[triple_inverse].sum())
        if replay:
            self._replay_scalar_reads(t1s, t2s, j1s, j2s, valid, ks)
        else:
            self.device.stats.record_reads(total_reads)
        triple_pools = self._accumulate_streams(
            segment_ids, segment_vals, segment_triple, unique_triples.size
        )
        for pos, idx in enumerate(valid_idx):
            pools[int(idx)] = triple_pools[triple_inverse[pos]]
        return pools

    def _replay_scalar_reads(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        j1s: np.ndarray,
        j2s: np.ndarray,
        valid: np.ndarray,
        ks: np.ndarray,
    ) -> None:
        """Stream the scalar per-query block reads through the pool.

        Replays, for each query in workload order, exactly the block
        sequence the scalar :meth:`candidates` touches: both snap-tree
        successor walks (always), then — for non-degenerate snaps —
        every segment-tree node :meth:`decompose` pops (pop order) and
        the top-``k`` prefix blocks of each covered node's stored
        list.  :meth:`BlockDevice.replay_reads` charges misses and
        records hits exactly like :meth:`BlockDevice.read`, so IO
        totals, hit counts, and LRU pool state land identical to the
        scalar loop while answers still come from the peeked payloads.
        """
        topology = self._topology()
        cap = StoredTopList.capacity(self.device)
        for idx in range(int(t1s.size)):
            blocks1, _ = self.snap_tree.successor_with_blocks(float(t1s[idx]))
            self.device.replay_reads(blocks1)
            blocks2, _ = self.snap_tree.successor_with_blocks(float(t2s[idx]))
            self.device.replay_reads(blocks2)
            if not valid[idx]:
                continue
            covered, visited = self._simulate_decompose(
                int(j1s[idx]), int(j2s[idx])
            )
            self.device.replay_reads(visited)
            k = int(ks[idx])
            for node_id in covered:
                stored_count, stored_blocks = topology[node_id][6:8]
                if stored_count is None:
                    continue
                needed = max(1, -(-min(k, stored_count) // cap))
                self.device.replay_reads(stored_blocks[:needed])

    @staticmethod
    def _accumulate_streams(
        segment_ids: List[np.ndarray],
        segment_vals: List[np.ndarray],
        segment_triple: List[int],
        num_triples: int,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """One ``np.add.at`` pass over the whole batch's streams.

        Composite keys ``triple * stride + object`` keep per-triple
        entries contiguous after ``np.unique`` while the accumulation
        still runs in global stream order — which, per key, is exactly
        the per-query stream order the scalar ``candidates`` loop
        sums in, so totals match bit for bit.
        """
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        if not segment_ids:
            return [empty] * num_triples
        cat_ids = np.concatenate(segment_ids)
        if cat_ids.size == 0:
            return [empty] * num_triples
        cat_vals = np.concatenate(segment_vals)
        lengths = np.asarray([a.size for a in segment_ids], dtype=np.int64)
        entry_triple = np.repeat(
            np.asarray(segment_triple, dtype=np.int64), lengths
        )
        base = int(cat_ids.min())
        stride = np.int64(int(cat_ids.max()) - base + 1)
        keys = entry_triple * stride + (cat_ids - base)
        unique_keys, first_seen, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        # bincount's C loop adds weights in stream order — the same
        # per-key accumulation order as ``np.add.at`` (and the scalar
        # per-query loop), just without the ufunc dispatch.
        sums = np.bincount(
            inverse, weights=cat_vals, minlength=unique_keys.size
        )
        triple_of_key = unique_keys // stride
        bounds = np.searchsorted(
            triple_of_key, np.arange(num_triples + 1, dtype=np.int64)
        )
        pools: List[Tuple[np.ndarray, np.ndarray]] = []
        for tpos in range(num_triples):
            lo, hi = int(bounds[tpos]), int(bounds[tpos + 1])
            if lo == hi:
                pools.append(empty)
                continue
            order = np.argsort(first_seen[lo:hi])
            pools.append((
                (unique_keys[lo:hi] % stride)[order] + base,
                sums[lo:hi][order],
            ))
        return pools

    def query_many(
        self, t1s: np.ndarray, t2s: np.ndarray, ks: np.ndarray
    ) -> List[TopKResult]:
        """Batched :meth:`query` (the APPX2 answer per workload row)."""
        pools = self.candidates_many(t1s, t2s, ks)
        return top_k_ragged(pools, ks)
