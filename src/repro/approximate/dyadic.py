"""QUERY2: dyadic-interval top lists (paper Section 3.2).

Instead of all ``O(r^2)`` breakpoint pairs, QUERY2 stores a top-
``k_max`` list only for every *dyadic* interval — the spans of the
nodes of a balanced binary tree over the ``r - 1`` elementary
breakpoint gaps (< ``2r`` intervals in total).  Any snapped query
interval decomposes into at most ``2 log r`` disjoint dyadic
intervals; the candidate set ``K`` is the union of their top lists,
with scores of repeated objects added.

Guarantees (Lemmas 4-5): an ``(eps, 2 log r)``-approximation, size
``Theta(r k_max / B)``, query ``O(k log r log_B k)`` IOs.  The score
returned for a candidate is a *lower bound* on its snapped-interval
aggregate (missing dyadic lists contribute 0), which is why APPX2+
re-scores candidates exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import InvalidQueryError
from repro.core.results import TopKResult, top_k_from_arrays
from repro.storage.device import BlockDevice
from repro.btree.tree import BPlusTree
from repro.parallel.executor import (
    OVERSUBSCRIPTION,
    ParallelExecutor,
    chunk_ranges,
    get_executor,
)
from repro.parallel.workers import dyadic_toplists_chunk
from repro.approximate.breakpoints import Breakpoints
from repro.approximate.toplists import (
    StoredTopList,
    TopListBatcher,
    cumulative_matrix,
    cumulative_matrix_T,
    top_kmax_of_column,
)


@dataclass
class _DyadicNode:
    """One segment-tree node: an elementary-gap range and its top list.

    When the ``k_max`` list fits in the node's own block (16 bytes per
    entry), it is stored *inline* — reading the node yields the list
    with no extra IO and no second block, which keeps the structure at
    its ``Theta(r k_max / B)`` size with a small constant.  Larger
    lists fall back to a packed :class:`StoredTopList`.
    """

    lo: int
    hi: int
    top_list: Optional[StoredTopList] = None
    inline_rows: Optional[object] = None  # (ids, scores) ndarray pair
    left: Optional[int] = None
    right: Optional[int] = None


class DyadicIndex:
    """The QUERY2 structure: a segment tree of top-``k_max`` lists."""

    def __init__(
        self,
        device: BlockDevice,
        breakpoints: Breakpoints,
        kmax: int,
    ) -> None:
        self.device = device
        self.breakpoints = breakpoints
        self.kmax = kmax
        self.root_id: Optional[int] = None
        self.num_nodes = 0
        self.snap_tree = BPlusTree(device, value_columns=1)

    # ------------------------------------------------------------------
    def build(
        self,
        database: TemporalDatabase,
        batched: bool = True,
        executor: Optional[ParallelExecutor] = None,
    ) -> "DyadicIndex":
        """Materialize every dyadic node list and wire the segment tree.

        The batched path (default) first enumerates all node ``(lo,
        hi)`` ranges in the recursion's preorder, materializes every
        node's top list in one :class:`TopListBatcher` pass over the
        row differences ``P_T[lo] - P_T[hi]``, then wires the tree
        with the same allocation/write sequence as the recursive
        build — node lists, device layout, and IO charges are all
        byte-identical to ``batched=False`` (the historical per-frame
        recursion).

        ``executor`` (default: the environment-resolved
        :func:`repro.parallel.get_executor`) fans contiguous chunks
        of the preorder node columns out across workers; row results
        are per-row independent, so the concatenated matrices — and
        the tree wired from them on the coordinator — are
        byte-identical on every backend.
        """
        times = self.breakpoints.times
        num_gaps = times.size - 1
        if batched:
            ids, p_t = cumulative_matrix_T(database, times)
            los, his = self._enumerate_nodes(0, num_gaps)
            nonneg = bool(database.store().knot_values.min() >= 0.0)
            if executor is None:
                executor = get_executor()
            if executor.is_serial:
                neg = np.ascontiguousarray(p_t[los] - p_t[his])
                batcher = TopListBatcher(ids, los.size, self.kmax, nonneg)
                top_ids, top_scores, _ = batcher.top_lists(neg)
            else:
                chunks = chunk_ranges(
                    int(los.size), executor.workers * OVERSUBSCRIPTION
                )
                state = (ids, p_t, los, his, self.kmax, nonneg)
                with executor.session(state) as session:
                    parts = session.map(dyadic_toplists_chunk, chunks)
                top_ids = np.concatenate([part[0] for part in parts])
                top_scores = np.concatenate([part[1] for part in parts])
            cursor = [0]
            self.root_id = self._wire_node(
                top_ids, top_scores, cursor, 0, num_gaps
            )
        else:
            ids, matrix = cumulative_matrix(database, times)
            self.root_id = self._build_node(ids, matrix, 0, num_gaps)
        self.snap_tree.bulk_load(
            times, np.arange(times.size, dtype=np.float64).reshape(-1, 1)
        )
        return self

    @staticmethod
    def _enumerate_nodes(lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """All node ranges in recursion preorder: (los, his) arrays."""
        los: List[int] = []
        his: List[int] = []
        stack = [(lo, hi)]
        while stack:
            node_lo, node_hi = stack.pop()
            los.append(node_lo)
            his.append(node_hi)
            if node_hi - node_lo > 1:
                mid = (node_lo + node_hi) // 2
                # Push right first so the left subtree pops next
                # (preorder, matching the recursive build).
                stack.append((mid, node_hi))
                stack.append((node_lo, mid))
        return np.asarray(los, dtype=np.int64), np.asarray(his, dtype=np.int64)

    def _make_node(
        self, lo: int, hi: int, top_ids: np.ndarray, top_scores: np.ndarray
    ) -> Tuple[_DyadicNode, int]:
        """Allocate one node holding the given (already sorted) list."""
        # Inline when the list shares the node's block comfortably
        # (leave ~1/8 of the block for the node metadata).
        inline_budget = (StoredTopList.capacity(self.device) * 7) // 8
        if top_ids.size <= inline_budget:
            node = _DyadicNode(lo=lo, hi=hi, inline_rows=(top_ids, top_scores))
        else:
            stored = StoredTopList.store(self.device, top_ids, top_scores)
            node = _DyadicNode(lo=lo, hi=hi, top_list=stored)
        node_id = self.device.allocate(node)
        self.num_nodes += 1
        return node, node_id

    def _wire_node(
        self,
        top_ids: np.ndarray,
        top_scores: np.ndarray,
        cursor: List[int],
        lo: int,
        hi: int,
    ) -> int:
        """Wire the subtree over ``[lo, hi)`` from batch-built lists.

        ``cursor`` walks the preorder columns of the batched arrays;
        allocation order matches :meth:`_build_node` exactly.
        """
        column = cursor[0]
        cursor[0] += 1
        node, node_id = self._make_node(
            lo, hi, top_ids[column].copy(), top_scores[column].copy()
        )
        if hi - lo > 1:
            mid = (lo + hi) // 2
            node.left = self._wire_node(top_ids, top_scores, cursor, lo, mid)
            node.right = self._wire_node(top_ids, top_scores, cursor, mid, hi)
            self.device.write(node_id, node)
        return node_id

    def _build_node(
        self, ids: np.ndarray, matrix: np.ndarray, lo: int, hi: int
    ) -> int:
        """Create the node covering elementary gaps ``[lo, hi)``."""
        scores = matrix[:, hi] - matrix[:, lo]
        top_ids, top_scores = top_kmax_of_column(ids, scores, self.kmax)
        node, node_id = self._make_node(lo, hi, top_ids, top_scores)
        if hi - lo > 1:
            mid = (lo + hi) // 2
            node.left = self._build_node(ids, matrix, lo, mid)
            node.right = self._build_node(ids, matrix, mid, hi)
            self.device.write(node_id, node)
        return node_id

    # ------------------------------------------------------------------
    def snap_indices(self, t1: float, t2: float) -> Optional[Tuple[int, int]]:
        """``(j1, j2)`` with ``B(t1) = b_{j1}``, ``B(t2) = b_{j2}``.

        Uses the breakpoint B+-tree (charging its IOs); None when the
        snapped interval is empty.
        """
        hit1 = self.snap_tree.successor(t1)
        hit2 = self.snap_tree.successor(t2)
        if hit1 is None or hit2 is None:
            return None
        j1 = int(hit1[1][0])
        j2 = int(hit2[1][0])
        if j2 <= j1:
            return None
        return j1, j2

    def decompose(self, j1: int, j2: int) -> List[_DyadicNode]:
        """Canonical disjoint cover of elementary gaps ``[j1, j2)``.

        Walks the segment tree reading node blocks (IO-charged); at
        most ``2 log2(r)`` covered nodes are returned (Lemma 4's
        decomposition bound, asserted in tests).
        """
        covered: List[_DyadicNode] = []
        stack = [self.root_id]
        while stack:
            node_id = stack.pop()
            node: _DyadicNode = self.device.read(node_id)
            if node.hi <= j1 or node.lo >= j2:
                continue
            if j1 <= node.lo and node.hi <= j2:
                covered.append(node)
                continue
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return covered

    def candidates(self, t1: float, t2: float, k: int) -> Dict[int, float]:
        """The candidate set ``K``: object -> summed dyadic scores.

        Reads the top-``k`` prefix of each covered node's list (the
        paper inserts top-k objects per dyadic interval into ``K``).
        """
        if k > self.kmax:
            raise InvalidQueryError(f"k={k} exceeds kmax={self.kmax}")
        snapped = self.snap_indices(t1, t2)
        if snapped is None:
            return {}
        id_chunks: List[np.ndarray] = []
        val_chunks: List[np.ndarray] = []
        for node in self.decompose(*snapped):
            if node.inline_rows is not None:
                ids, vals = node.inline_rows
                ids, vals = ids[:k], vals[:k]
            else:
                ids, vals = node.top_list.read_top(self.device, k)
            id_chunks.append(ids)
            val_chunks.append(vals)
        if not id_chunks:
            return {}
        all_ids = np.concatenate(id_chunks)
        all_vals = np.concatenate(val_chunks)
        # Aggregate repeated objects with np.add.at: the unbuffered
        # accumulation adds contributions in stream order from 0.0,
        # exactly the float summation order of the historical
        # per-entry dict loop, so summed scores match bit for bit.
        unique_ids, inverse = np.unique(all_ids, return_inverse=True)
        sums = np.zeros(unique_ids.size, dtype=np.float64)
        np.add.at(sums, inverse, all_vals)
        # Present candidates in first-appearance order, matching the
        # historical dict's insertion order (consumers iterate it).
        first_seen = np.full(unique_ids.size, all_ids.size, dtype=np.int64)
        np.minimum.at(first_seen, inverse, np.arange(all_ids.size))
        order = np.argsort(first_seen)
        return {
            int(object_id): float(total)
            for object_id, total in zip(unique_ids[order], sums[order])
        }

    def query(self, t1: float, t2: float, k: int) -> TopKResult:
        """Top-k by summed candidate scores (the APPX2 answer)."""
        pool = self.candidates(t1, t2, k)
        if not pool:
            return TopKResult()
        ids = np.fromiter(pool.keys(), dtype=np.int64, count=len(pool))
        vals = np.fromiter(pool.values(), dtype=np.float64, count=len(pool))
        return top_k_from_arrays(ids, vals, k)
