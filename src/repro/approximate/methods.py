"""The combined approximate methods (paper Section 3.3).

The paper crosses two breakpoint constructions with two query
structures (Figure 7) and adds an exact-rescoring variant:

=========  ==============  =========  =====================================
method     breakpoints     structure  guarantee on scores and answers
=========  ==============  =========  =====================================
APPX1-B    BREAKPOINTS1    QUERY1     (eps, 1)
APPX2-B    BREAKPOINTS1    QUERY2     (eps, 2 log r)
APPX1      BREAKPOINTS2    QUERY1     (eps, 1)
APPX2      BREAKPOINTS2    QUERY2     (eps, 2 log r)
APPX2+     BREAKPOINTS2    QUERY2     candidate set of APPX2, scores exact
=========  ==============  =========  =====================================

All take either an explicit ``epsilon`` or a breakpoint budget ``r``
(the experiments fix ``r`` so B1 and B2 are compared on equal space);
a prebuilt :class:`Breakpoints` can also be injected so benchmark
sweeps share one construction across methods.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import ReproError
from repro.core.queries import TopKQuery
from repro.core.results import TopKResult, top_k_from_arrays
from repro.exact.base import RankingMethod
from repro.exact.exact2 import Exact2
from repro.parallel.executor import ParallelExecutor
from repro.storage.cache import LRUCache
from repro.storage.device import BlockDevice
from repro.storage.stats import IOStats
from repro.approximate.breakpoints import (
    Breakpoints,
    build_breakpoints1,
    build_breakpoints2,
    epsilon_for_budget,
)
from repro.approximate.dyadic import DyadicIndex
from repro.approximate.query1 import NestedPairIndex
from repro.approximate.toplists import top_k_ragged

#: Default maximum supported query k (paper Section 5 default).
DEFAULT_KMAX = 200


class _ApproximateBase(RankingMethod):
    """Shared plumbing for the five approximate methods."""

    #: "b1" or "b2".
    breakpoint_kind: str = "b2"

    def __init__(
        self,
        epsilon: Optional[float] = None,
        r: Optional[int] = None,
        kmax: int = DEFAULT_KMAX,
        breakpoints: Optional[Breakpoints] = None,
        block_bytes: int = 4096,
        cache_blocks: int = 0,
        executor: Optional[ParallelExecutor] = None,
    ) -> None:
        super().__init__()
        if breakpoints is None and (epsilon is None) == (r is None):
            raise ReproError("give exactly one of epsilon / r (or prebuilt breakpoints)")
        self.epsilon = epsilon
        self.r_budget = r
        self.kmax = kmax
        #: Fan-out executor for index construction (None: resolve from
        #: the environment at build time; see repro.parallel).
        self.executor = executor
        self._prebuilt = breakpoints
        self._stats = IOStats()
        self._cache = LRUCache(cache_blocks) if cache_blocks > 0 else None
        self.device = BlockDevice(
            block_bytes=block_bytes,
            cache=self._cache,
            name=type(self).__name__,
            stats=self._stats,
        )
        self.breakpoints: Optional[Breakpoints] = None

    # ------------------------------------------------------------------
    def _build_breakpoints(self, database: TemporalDatabase) -> Breakpoints:
        if self._prebuilt is not None:
            return self._prebuilt
        if self.breakpoint_kind == "b1":
            if self.epsilon is not None:
                return build_breakpoints1(database, epsilon=self.epsilon)
            return build_breakpoints1(database, r=self.r_budget)
        epsilon = self.epsilon
        if epsilon is None:
            epsilon = epsilon_for_budget(
                database, self.r_budget, executor=self.executor
            )
        return build_breakpoints2(database, epsilon, executor=self.executor)

    @property
    def io_stats(self) -> IOStats:
        return self._stats

    @property
    def index_size_bytes(self) -> int:
        return self.device.size_bytes

    def drop_caches(self) -> None:
        self.device.drop_cache()

    def _append(self, object_id: int, t_next: float, v_next: float) -> None:
        """Amortized update: rebuild once appended mass doubles M.

        The paper handles updates by keeping the construction threshold
        ``tau = eps*M`` fixed and rebuilding when ``M`` doubles; between
        rebuilds the existing structure stays valid for the old data
        and new segments accumulate in the database.  We track the
        appended mass and rebuild at the doubling point.
        """
        obj = self.database.get(object_id)
        fn = obj.function
        if fn.times[-1] == t_next:
            # Database already updated (the documented order): the new
            # segment is the last one.
            t_prev, v_prev = fn.times[-2], fn.values[-2]
        else:
            t_prev, v_prev = fn.times[-1], fn.values[-1]
        seg_mass = 0.5 * (t_next - t_prev) * abs(v_next + v_prev)
        self._appended_mass = getattr(self, "_appended_mass", 0.0) + float(seg_mass)
        if self.breakpoints and self._appended_mass >= self.breakpoints.total_mass:
            self._appended_mass = 0.0
            self._rebuild()

    def _rebuild(self) -> None:
        self._stats = IOStats()
        self.device = BlockDevice(
            block_bytes=self.device.block_bytes,
            cache=self._cache,
            name=type(self).__name__,
            stats=self._stats,
        )
        self._prebuilt = None
        self._build(self.database)


class Appx1(_ApproximateBase):
    """APPX1: BREAKPOINTS2 + QUERY1 — the high-accuracy variant."""

    name = "APPX1"
    breakpoint_kind = "b2"

    def _build(self, database: TemporalDatabase) -> None:
        self.breakpoints = self._build_breakpoints(database)
        self.index = NestedPairIndex(self.device, self.breakpoints, self.kmax)
        self.index.build(database, executor=self.executor)

    def _query(self, query: TopKQuery) -> TopKResult:
        return self.index.query(query.t1, query.t2, query.k)

    def _query_many(self, t1s, t2s, ks, executor=None):
        return self.index.query_many(t1s, t2s, ks)


class Appx1B(Appx1):
    """APPX1-B: BREAKPOINTS1 + QUERY1 (the basic variant)."""

    name = "APPX1-B"
    breakpoint_kind = "b1"


class Appx2(_ApproximateBase):
    """APPX2: BREAKPOINTS2 + QUERY2 — the small-footprint variant."""

    name = "APPX2"
    breakpoint_kind = "b2"

    def _build(self, database: TemporalDatabase) -> None:
        self.breakpoints = self._build_breakpoints(database)
        self.index = DyadicIndex(self.device, self.breakpoints, self.kmax)
        self.index.build(database, executor=self.executor)

    def _query(self, query: TopKQuery) -> TopKResult:
        return self.index.query(query.t1, query.t2, query.k)

    def _query_many(self, t1s, t2s, ks, executor=None):
        return self.index.query_many(t1s, t2s, ks)

    def candidate_set(self, query: TopKQuery) -> Dict[int, float]:
        """The candidate pool ``K`` (diagnostics and APPX2+)."""
        return self.index.candidates(query.t1, query.t2, query.k)


class Appx2B(Appx2):
    """APPX2-B: BREAKPOINTS1 + QUERY2 (the basic variant)."""

    name = "APPX2-B"
    breakpoint_kind = "b1"


class Appx2Plus(Appx2):
    """APPX2+: APPX2's candidates, re-scored exactly via an EXACT2 forest.

    Index size grows by ``O(N/B)`` (it stores the full prefix data) and
    each query pays ``O(log_B n_i)`` extra IOs per candidate, in
    exchange for near-perfect empirical accuracy (paper Section 3.3
    and Figures 12, 15-17, 20).
    """

    name = "APPX2+"
    breakpoint_kind = "b2"

    def _build(self, database: TemporalDatabase) -> None:
        super()._build(database)
        self.rescorer = Exact2(
            block_bytes=self.device.block_bytes, stats=self._stats
        )
        self.rescorer.build(database)

    def _query(self, query: TopKQuery) -> TopKResult:
        pool = self.index.candidates(query.t1, query.t2, query.k)
        if not pool:
            return TopKResult()
        ids = np.fromiter(pool.keys(), dtype=np.int64, count=len(pool))
        # Batched multi-candidate Equation-(2) rescoring: bit-identical
        # scores and IO charges to per-candidate ``rescorer.score``.
        exact = self.rescorer.score_many(ids, query.t1, query.t2)
        return top_k_from_arrays(ids, exact, query.k)

    def _query_many(self, t1s, t2s, ks, executor=None):
        """Batched APPX2+: one rescoring pass for the whole workload.

        Candidate pools come from the dyadic structure's batch
        pipeline; every query's ``(object, t1, t2)`` rescore triples
        are then concatenated into a *single*
        :meth:`Exact2.score_triples` call — two vectorized
        Equation-(2) passes for the entire workload instead of two
        per query — and split back per query for the final top-k.
        Scores, tie-breaks, and IO charges match the scalar loop
        exactly (the triples kernel is elementwise and the modeled
        tree-walk charge is summed per row either way).
        """
        pools = self.index.candidates_many(t1s, t2s, ks)
        counts = np.asarray([ids.size for ids, _ in pools], dtype=np.int64)
        if int(counts.sum()) == 0:
            return [TopKResult()] * int(t1s.size)
        all_ids = np.concatenate([ids for ids, _ in pools])
        exact = self.rescorer.score_triples(
            all_ids,
            np.repeat(t1s, counts),
            np.repeat(t2s, counts),
        )
        bounds = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        return top_k_ragged(
            [
                (all_ids[bounds[row] : bounds[row + 1]],
                 exact[bounds[row] : bounds[row + 1]])
                for row in range(int(t1s.size))
            ],
            ks,
        )

    @property
    def index_size_bytes(self) -> int:
        return self.device.size_bytes + self.rescorer.index_size_bytes


#: Registry used by benchmarks and examples.
APPROXIMATE_METHODS = {
    "APPX1-B": Appx1B,
    "APPX2-B": Appx2B,
    "APPX1": Appx1,
    "APPX2": Appx2,
    "APPX2+": Appx2Plus,
}
