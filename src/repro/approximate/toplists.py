"""Shared helpers for materializing top-k_max lists on the device.

Both QUERY1 and QUERY2 precompute, for a family of breakpoint
intervals, the ``k_max`` objects with the largest aggregate inside each
interval, and store those lists packed into blocks.  The construction
is a single pass over the per-object cumulative masses evaluated at
the breakpoints (the ``P`` matrix below), which corresponds to the
paper's "single linear sweep over all segments" with running integrals
per open interval.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.database import TemporalDatabase
from repro.storage.device import BlockDevice, entries_per_block

#: One stored list entry: object id + score, two 8-byte words.
LIST_ENTRY_BYTES = 16


def cumulative_matrix(
    database: TemporalDatabase, breakpoint_times: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``P[i, j] = C_i(b_j)`` for every object i and breakpoint j.

    The interval aggregate between any two breakpoints is then a
    column difference — the vectorized equivalent of maintaining one
    running integral per object during the sweep.  The whole matrix
    comes from one batched kernel call on the database's columnar
    store (no per-object Python loop).  Returns ``(object_ids, P)``.
    """
    store = database.store()
    matrix = np.ascontiguousarray(
        store.cumulative_at_many(np.asarray(breakpoint_times)).T
    )
    return store.object_ids, matrix


def top_kmax_of_column(
    ids: np.ndarray, scores: np.ndarray, kmax: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Top ``kmax`` (ids, scores) sorted by descending score, id tiebreak."""
    k = min(kmax, scores.size)
    if k == scores.size:
        chosen = np.arange(scores.size)
    else:
        chosen = np.argpartition(-scores, k - 1)[:k]
    order = np.lexsort((ids[chosen], -scores[chosen]))
    picked = chosen[order]
    return ids[picked], scores[picked]


class StoredTopList:
    """A packed on-device top-``k_max`` list for one interval."""

    __slots__ = ("block_ids", "count")

    def __init__(self, block_ids: List[int], count: int) -> None:
        self.block_ids = block_ids
        self.count = count

    @staticmethod
    def capacity(device: BlockDevice) -> int:
        return entries_per_block(LIST_ENTRY_BYTES, device.block_bytes)

    @staticmethod
    def store(
        device: BlockDevice, ids: np.ndarray, scores: np.ndarray
    ) -> "StoredTopList":
        """Pack ``(id, score)`` rows into blocks on ``device``."""
        rows = np.stack([ids.astype(np.float64), scores], axis=1)
        cap = StoredTopList.capacity(device)
        block_ids = [
            device.allocate(rows[lo : lo + cap].copy())
            for lo in range(0, rows.shape[0], cap)
        ]
        if not block_ids:
            block_ids = [device.allocate(rows)]
        return StoredTopList(block_ids, int(rows.shape[0]))

    def read_top(self, device: BlockDevice, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read the first ``k`` entries (``ceil(k/B)`` block reads)."""
        cap = StoredTopList.capacity(device)
        needed_blocks = max(1, -(-min(k, self.count) // cap))
        pieces = [device.read(b) for b in self.block_ids[:needed_blocks]]
        rows = np.concatenate(pieces, axis=0)[:k]
        return rows[:, 0].astype(np.int64), rows[:, 1]
