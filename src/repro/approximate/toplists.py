"""Shared helpers for materializing top-k_max lists on the device.

Both QUERY1 and QUERY2 precompute, for a family of breakpoint
intervals, the ``k_max`` objects with the largest aggregate inside each
interval, and store those lists packed into blocks.  The construction
is a single pass over the per-object cumulative masses evaluated at
the breakpoints (the ``P`` matrix below), which corresponds to the
paper's "single linear sweep over all segments" with running integrals
per open interval.

Batched materialization
-----------------------
The batched builders select and sort *many* interval lists at once
through :class:`TopListBatcher`.  Per-lane ``argsort``/``argpartition``
calls pay NumPy's indirect-sort overhead per list, so the batcher
instead packs each ``(-score, id-rank)`` pair into a single 64-bit key
(the id rank replaces the low mantissa bits) and runs NumPy's
vectorized *value* ``partition``/``sort`` kernels in-place on a reused
scratch buffer.  Two distinct scores that collide in the surviving 54
high bits — or a collision straddling the ``k`` selection boundary —
are detected afterwards and those (astronomically rare) rows are
re-ranked exactly with the canonical ``lexsort``, so the produced
lists are always exactly the canonical top ``k``.

Tie canonicalization: both the scalar helper and the batcher resolve
*selection* ties at the k-th score boundary by ascending object id —
the same total order ``(-score, id)`` that already governs the sorted
output and every query answer — so scalar and batched builds are
byte-identical even on tie-heavy data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.results import TopKResult
from repro.storage.device import BlockDevice, entries_per_block

#: One stored list entry: object id + score, two 8-byte words.
LIST_ENTRY_BYTES = 16


def cumulative_matrix(
    database: TemporalDatabase, breakpoint_times: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``P[i, j] = C_i(b_j)`` for every object i and breakpoint j.

    The interval aggregate between any two breakpoints is then a
    column difference — the vectorized equivalent of maintaining one
    running integral per object during the sweep.  Returns
    ``(object_ids, P)``.
    """
    ids, transposed = cumulative_matrix_T(database, breakpoint_times)
    return ids, np.ascontiguousarray(transposed.T)


def cumulative_matrix_T(
    database: TemporalDatabase, breakpoint_times: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``P_T[j, i] = C_i(b_j)``: the transposed cumulative matrix.

    Row ``j`` holds every object's cumulative at breakpoint ``j``, so
    batched builders difference whole *rows* (contiguous lanes).
    Values come from the store's grid kernel — bit-identical to
    ``cumulative_at_many`` without the ``(q, m)`` broadcast bisection.
    """
    store = database.store()
    grid = store.cumulative_at_grid(np.asarray(breakpoint_times))
    return store.object_ids, grid


def top_kmax_of_column(
    ids: np.ndarray, scores: np.ndarray, kmax: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Top ``kmax`` (ids, scores) sorted by descending score, id tiebreak.

    Selection at the k-th boundary is canonical: when tied scores
    straddle the boundary, the lowest object ids among the tied group
    are kept — the same ``(-score, id)`` total order as the output.
    """
    k = min(kmax, scores.size)
    if k == scores.size:
        chosen = np.arange(scores.size)
    else:
        neg = -scores
        chosen = np.argpartition(neg, k - 1)[:k]
        boundary = neg[chosen].max()
        tied_inside = int(np.count_nonzero(neg[chosen] == boundary))
        tied_total = int(np.count_nonzero(neg == boundary))
        if tied_total != tied_inside:
            below = np.flatnonzero(neg < boundary)
            tied = np.flatnonzero(neg == boundary)
            tied = tied[np.argsort(ids[tied], kind="stable")]
            chosen = np.concatenate([below, tied[: k - below.size]])
    order = np.lexsort((ids[chosen], -scores[chosen]))
    picked = chosen[order]
    return ids[picked], scores[picked]


# ----------------------------------------------------------------------
# batched top-list selection
# ----------------------------------------------------------------------
class TopListBatcher:
    """Selects + sorts many top-``k`` lists per call via packed keys.

    One instance serves one build: it owns the scratch buffers (reused
    across calls, no per-call allocation of the ``(c, m)`` temporaries)
    and the id-rank mapping.  ``rows_nonpositive=True`` promises every
    negated-score row handed to :meth:`top_ranks` is ``<= 0`` (true
    whenever the score functions are nonnegative, since interval
    aggregates are then nonnegative); that enables a 3-pass key build.
    """

    #: Low bits of each packed key carry the id rank.
    def __init__(
        self,
        ids: np.ndarray,
        num_rows_max: int,
        kmax: int,
        rows_nonpositive: bool,
    ) -> None:
        m = ids.size
        self.ids = ids
        self.m = m
        self.k = min(kmax, m)
        self.rank_bits = max(1, int(m - 1).bit_length()) if m > 1 else 1
        self.low = np.int64((1 << self.rank_bits) - 1)
        self.rest = np.int64(0x7FFFFFFFFFFFFFFF)
        self.nonpositive = rows_nonpositive
        # Rank of each storage position under ascending object id; for
        # the (usual) ascending id layout both maps are the identity.
        self.ids_ascending = bool(np.all(np.diff(ids) > 0))
        if self.ids_ascending:
            self.rank_row = np.arange(m, dtype=np.int64)
            self.pos_of_rank = None
        else:
            order = np.argsort(ids, kind="stable")
            self.rank_row = np.empty(m, dtype=np.int64)
            self.rank_row[order] = np.arange(m, dtype=np.int64)
            self.pos_of_rank = order
        self.scratch = np.empty((num_rows_max, m), dtype=np.int64)
        self.flip = (
            None if rows_nonpositive else np.empty((num_rows_max, m), np.int64)
        )
        self._row_base = (
            np.arange(num_rows_max, dtype=np.int64)[:, None] * m
        )
        self._last_neg_sel: Optional[np.ndarray] = None

    def top_ranks(self, neg: np.ndarray) -> np.ndarray:
        """Canonical top-``k`` storage positions for each row of ``neg``.

        ``neg`` holds *negated* scores (``(c, m)``, C-contiguous, left
        intact); row results are positions sorted by ``(neg, id)``
        ascending, i.e. descending score with ascending-id ties.
        """
        c, m = neg.shape
        k = self.k
        keys = self.scratch[:c]
        u = neg.view(np.int64)
        if self.nonpositive:
            # neg <= 0: the monotone float->uint64 order map reduces to
            # ~bits (with +0.0 mapping above every negative), so the
            # key is built in three passes and sorted as uint64.
            np.bitwise_or(u, self.low, out=keys)
            np.invert(keys, out=keys)
            np.bitwise_or(keys, self.rank_row, out=keys)
            sortable = keys.view(np.uint64)
        else:
            # General signs: normalize -0.0 to +0.0 first (lexsort
            # treats them as one tie group; the order map would not),
            # then the standard sign-flip order map, sorted as int64
            # (negative keys sort first).
            neg += 0.0
            flip = self.flip[:c]
            np.right_shift(u, 63, out=flip)
            np.bitwise_and(flip, self.rest, out=flip)
            np.bitwise_xor(u, flip, out=keys)
            np.bitwise_and(keys, ~self.low, out=keys)
            np.bitwise_or(keys, self.rank_row, out=keys)
            sortable = keys
        if k < m:
            sortable.partition(k - 1, axis=1)
        top = sortable[:, :k]
        top.sort(axis=1)
        ranks = np.bitwise_and(keys[:, :k], self.low)
        positions = (
            ranks if self.pos_of_rank is None else self.pos_of_rank[ranks]
        )
        self._repair(neg, keys, positions, k)
        return positions

    def _repair(
        self, neg: np.ndarray, keys: np.ndarray, positions: np.ndarray, k: int
    ) -> None:
        """Exactly re-rank rows where key truncation lost score order.

        Two distinct scores agreeing in the 54 surviving key bits sort
        by id rank instead of by score; such a collision inside the
        top ``k`` shows up as a strict inversion of the gathered true
        scores, and one straddling the selection boundary as the k-th
        selected key sharing its high bits with the smallest excluded
        key.  Affected rows (none, in practice) are redone with the
        canonical lexsort.
        """
        c, m = neg.shape
        neg_sel = neg.ravel()[self._row_base[:c] + positions]
        bad = np.any(neg_sel[:, :-1] > neg_sel[:, 1:], axis=1)
        if k < m:
            if self.nonpositive:
                next_key = keys[:, k:].view(np.uint64).min(axis=1)
                next_key = next_key.view(np.int64)
            else:
                next_key = keys[:, k:].min(axis=1)
            straddle = np.flatnonzero(
                (keys[:, k - 1] | self.low) == (next_key | self.low)
            )
            if straddle.size:
                # The colliding key group spans the selection boundary.
                # Selection among the group went by id rank, which is
                # only canonical when all its true scores are equal
                # (e.g. the ubiquitous all-zero ties); otherwise redo.
                high = keys[straddle, k - 1 : k] | self.low
                group = (keys[straddle] | self.low) == high
                group_neg = neg[straddle]
                gmin = np.where(group, group_neg, np.inf).min(axis=1)
                gmax = np.where(group, group_neg, -np.inf).max(axis=1)
                bad[straddle[gmin != gmax]] = True
        for row in np.flatnonzero(bad):
            exact = np.lexsort((self.ids, neg[row]))[:k]
            positions[row] = exact
            neg_sel[row] = neg[row][exact]
        self._last_neg_sel = neg_sel

    def top_lists(
        self, neg: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(top_ids, top_scores, positions)`` rows for each neg row.

        Scores are recovered as ``0.0 - neg`` (bit-identical to the
        forward difference whenever ``neg`` was itself produced by the
        opposite subtraction, which never yields ``-0.0``).
        """
        positions = self.top_ranks(neg)
        top_scores = np.subtract(0.0, self._last_neg_sel)
        return self.ids[positions], top_scores, positions


def top_kmax_of_columns(
    ids: np.ndarray, score_matrix: np.ndarray, kmax: int
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`top_kmax_of_column` for every column of ``(m, c)`` at once.

    Returns ``(top_ids, top_scores)`` of shape ``(k, c)`` with
    ``k = min(kmax, m)``: column ``j`` holds the canonical top list of
    ``score_matrix[:, j]``.  One packed-key batch pass replaces ``c``
    per-column selections; each column's output is byte-identical to
    the scalar helper's.
    """
    m, c = score_matrix.shape
    neg = np.empty((c, m), dtype=np.float64)
    np.subtract(0.0, score_matrix.T, out=neg)
    batcher = TopListBatcher(
        np.asarray(ids), c, kmax, rows_nonpositive=bool(np.all(neg <= 0.0))
    )
    positions = batcher.top_ranks(neg)
    # Gather the *original* scores (exact even for -0.0 inputs).
    flat = positions * c + np.arange(c, dtype=np.int64)[:, None]
    top_scores = score_matrix.ravel()[flat]
    return np.asarray(ids)[positions].T, top_scores.T


def top_k_rows(
    ids: np.ndarray, scores: np.ndarray, ks: Sequence[int]
) -> List[TopKResult]:
    """One canonical :class:`TopKResult` per row of a score matrix.

    The batched query pipelines' answer-construction kernel: row ``j``
    of ``scores`` holds every object's score for query ``j`` (use
    ``-inf`` for objects a query must not return), and the result is
    exactly ``top_k_from_arrays(ids, scores[j], ks[j])`` — the same
    ``(-score, id)`` total order, the same gathered original score
    bits — but selected for all rows in one packed-key
    :class:`TopListBatcher` pass instead of one sort per query.
    """
    scores = np.asarray(scores, dtype=np.float64)
    c, m = scores.shape
    ks = np.asarray(ks, dtype=np.int64)
    if c == 0:
        return []
    kcap = int(min(int(ks.max()), m))
    if kcap <= 0:
        return [TopKResult() for _ in range(c)]
    neg = np.subtract(0.0, scores)
    batcher = TopListBatcher(
        np.asarray(ids), c, kcap, rows_nonpositive=bool(np.all(neg <= 0.0))
    )
    positions = batcher.top_ranks(neg)
    top_ids = np.asarray(ids)[positions]
    # Gather the *original* score bits (exact even for -0.0 inputs).
    flat = positions + np.arange(c, dtype=np.int64)[:, None] * m
    top_scores = scores.ravel()[flat]
    results: List[TopKResult] = []
    for row in range(c):
        k = int(ks[row])
        if k <= 0:
            results.append(TopKResult())
            continue
        results.append(
            TopKResult.from_columns(
                top_ids[row, :k].tolist(), top_scores[row, :k].tolist()
            )
        )
    return results


def top_k_ragged(
    pools: Sequence[Tuple[np.ndarray, np.ndarray]], ks: Sequence[int]
) -> List[TopKResult]:
    """Canonical top-k answers for ragged per-query candidate pools.

    ``pools[j]`` is query ``j``'s ``(object_ids, scores)`` pair (ids
    unique within a pool).  Pools are scattered into one dense
    ``(q, distinct_ids)`` matrix — ``-inf`` marks objects absent from
    a query's pool, and per-row ``k`` is clamped to the pool size so
    a pad can never be selected — then answered with one
    :func:`top_k_rows` pass.  Row ``j`` equals
    ``top_k_from_arrays(*pools[j], ks[j])`` exactly.
    """
    counts = np.asarray([pool[0].size for pool in pools], dtype=np.int64)
    if counts.size == 0 or int(counts.sum()) == 0:
        return [TopKResult() for _ in pools]
    all_ids = np.concatenate([pool[0] for pool in pools])
    all_vals = np.concatenate([pool[1] for pool in pools])
    columns, col_of = np.unique(all_ids, return_inverse=True)
    dense = np.full((counts.size, columns.size), -np.inf)
    row_of = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    dense[row_of, col_of] = all_vals
    k_eff = np.minimum(np.asarray(ks, dtype=np.int64), counts)
    return top_k_rows(columns, dense, k_eff)


class StoredTopList:
    """A packed on-device top-``k_max`` list for one interval.

    Block payloads come in two equivalent shapes: the historical
    ``(n, 2)`` float rows (``StoredTopList.store``) and the
    ``(ids, scores)`` array pair written by the bulk
    :meth:`store_many` path (which skips the row-interleaving pass).
    Both occupy the same ``LIST_ENTRY_BYTES`` per entry — identical
    block counts, sizes, and IO charges — and :meth:`read_top` returns
    byte-identical arrays for either.
    """

    __slots__ = ("block_ids", "count")

    def __init__(self, block_ids: List[int], count: int) -> None:
        self.block_ids = block_ids
        self.count = count

    @staticmethod
    def capacity(device: BlockDevice) -> int:
        return entries_per_block(LIST_ENTRY_BYTES, device.block_bytes)

    @staticmethod
    def store(
        device: BlockDevice, ids: np.ndarray, scores: np.ndarray
    ) -> "StoredTopList":
        """Pack ``(id, score)`` rows into blocks on ``device``."""
        rows = np.stack([ids.astype(np.float64), scores], axis=1)
        cap = StoredTopList.capacity(device)
        block_ids = [
            device.allocate(rows[lo : lo + cap].copy())
            for lo in range(0, rows.shape[0], cap)
        ]
        if not block_ids:
            block_ids = [device.allocate(rows)]
        return StoredTopList(block_ids, int(rows.shape[0]))

    @staticmethod
    def store_many(
        device: BlockDevice, ids: np.ndarray, scores: np.ndarray
    ) -> List["StoredTopList"]:
        """Pack a whole family of equal-length lists in one pass.

        ``ids`` and ``scores`` are ``(c, k)``: row ``j`` is one list.
        Every block of every list is allocated through a single
        :meth:`BlockDevice.allocate_many` call, and payloads are
        ``(ids, scores)`` pair views — no per-list row interleaving,
        no per-block Python stats round-trips.  Block id sequence, IO
        charges, and :meth:`read_top` results are identical to calling
        :meth:`store` once per row in order.
        """
        c, k = ids.shape
        if k == 0:
            return [
                StoredTopList.store(device, ids[j], scores[j])
                for j in range(c)
            ]
        # One bulk copy per matrix: block payloads are views into these
        # device-owned snapshots, so callers may reuse or mutate their
        # arrays afterwards (store() copies per block for the same
        # reason).
        ids = ids.copy()
        scores = scores.copy()
        cap = StoredTopList.capacity(device)
        blocks_per_list = -(-k // cap)
        if blocks_per_list == 1:
            payloads = list(zip(ids, scores))
            block_ids = device.allocate_many(payloads)
            return [
                StoredTopList([block_id], k) for block_id in block_ids
            ]
        payloads = [
            (ids[j, lo : lo + cap], scores[j, lo : lo + cap])
            for j in range(c)
            for lo in range(0, k, cap)
        ]
        block_ids = device.allocate_many(payloads)
        return [
            StoredTopList(
                block_ids[j * blocks_per_list : (j + 1) * blocks_per_list], k
            )
            for j in range(c)
        ]

    @staticmethod
    def decode_pieces(pieces: List) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, scores)`` from fetched block payloads (both shapes).

        The one decoder for the two equivalent payload layouts (see
        the class docstring), shared by the charged :meth:`read_top`
        path and the modeled-cost batched pipelines that fetch with
        :meth:`BlockDevice.peek` — so both decode identically by
        construction.
        """
        if isinstance(pieces[0], tuple):
            ids = np.concatenate([p[0] for p in pieces])
            scores = np.concatenate([p[1] for p in pieces])
            return ids.astype(np.int64), scores
        rows = np.concatenate(pieces, axis=0)
        return rows[:, 0].astype(np.int64), rows[:, 1]

    def read_top(self, device: BlockDevice, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read the first ``k`` entries (``ceil(k/B)`` block reads)."""
        cap = StoredTopList.capacity(device)
        needed_blocks = max(1, -(-min(k, self.count) // cap))
        pieces = device.read_many(self.block_ids[:needed_blocks])
        ids, scores = StoredTopList.decode_pieces(pieces)
        return ids[:k], scores[:k]
