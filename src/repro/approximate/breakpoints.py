"""Breakpoint constructions (paper Section 3.1).

Both approximate methods discretize the time domain into breakpoints
``B = {b_0 = 0, ..., b_{r-1} = T}`` and snap query endpoints to them.
The two constructions differ in the threshold condition between
consecutive breakpoints:

* **BREAKPOINTS1** places ``b_{j+1}`` where the *summed* accumulated
  mass reaches the threshold: ``sum_i sigma_i(b_j, b_{j+1}) = eps*M``.
  Exactly ``r = ceil(1/eps) + 1`` breakpoints result.
* **BREAKPOINTS2** places ``b_{j+1}`` where the *maximum per-object*
  accumulated mass reaches it: ``max_i sigma_i(b_j, b_{j+1}) = eps*M``.
  At most ``1/eps + 1`` breakpoints result, and on heterogeneous real
  data far fewer — equivalently, for a fixed budget ``r`` the achieved
  ``eps`` is orders of magnitude smaller (paper Figure 11(a)).

Both guarantee the Lemma 2 property ``sigma_i(b_j, b_{j+1}) <= eps*M``
for every object, which is what the query structures' error bounds
rest on.

Negative scores (Section 4): pass ``use_absolute=True`` and all masses
are measured on ``|g_i|``; the guarantee then holds with ``M`` defined
on absolute values.

Both constructions route their object-parallel steps (event stream
assembly, the baseline's per-breakpoint reset, drift fallbacks,
verification) through the database's columnar
:class:`~repro.core.plfstore.PLFStore`; because the kernel reproduces
the scalar arithmetic bit for bit, the produced breakpoint sets are
byte-identical to the historical per-object implementation.
"""

from __future__ import annotations

import heapq
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import ReproError
from repro.core.geometry import solve_linear_mass
from repro.parallel.executor import (
    ParallelExecutor,
    chunk_ranges,
    get_executor,
)
from repro.parallel.workers import (
    bp2_cumulative_chunk,
    bp2_danger_chunk,
    bp2_inverse_chunk,
)


@dataclass(frozen=True)
class Breakpoints:
    """A built breakpoint set with its construction metadata."""

    times: np.ndarray
    epsilon: float
    total_mass: float
    method: str
    build_seconds: float = field(default=0.0, compare=False)
    #: True when construction was aborted at a breakpoint cap (only the
    #: budget search sets caps; capped sets must not be used to answer
    #: queries).
    truncated: bool = field(default=False, compare=False)

    @property
    def r(self) -> int:
        """Number of breakpoints (including both domain endpoints)."""
        return int(self.times.size)

    @property
    def threshold(self) -> float:
        """The mass threshold ``eps * M`` used during construction."""
        return self.epsilon * self.total_mass

    def snap(self, t: float) -> int:
        """Index of ``B(t)``: the smallest breakpoint >= ``t`` (clamped)."""
        idx = int(np.searchsorted(self.times, t, side="left"))
        return min(idx, self.r - 1)

    def snap_time(self, t: float) -> float:
        """``B(t)`` itself."""
        return float(self.times[self.snap(t)])

    def verify(self, database: TemporalDatabase, use_absolute: bool = False) -> float:
        """Max per-object mass between consecutive breakpoints (tests).

        For a correct construction this never exceeds ``threshold``
        (up to roundoff).  Returns the observed maximum, computed for
        all objects at once through the columnar kernel.
        """
        masses = database.store(use_absolute=use_absolute).masses_between(
            self.times
        )
        # Floor at 0 like the historical running-max loop: with signed
        # scores every gap can be negative, and callers read the result
        # as a nonnegative observed maximum.
        return max(float(masses.max()), 0.0)


# ----------------------------------------------------------------------
# BREAKPOINTS1: sum-threshold sweep
# ----------------------------------------------------------------------
def build_breakpoints1(
    database: TemporalDatabase,
    epsilon: Optional[float] = None,
    r: Optional[int] = None,
    use_absolute: bool = False,
) -> Breakpoints:
    """BREAKPOINTS1 via a single sweep over all segment endpoints.

    The sweep maintains the summed value ``V(t) = sum_i g_i(t)`` and
    summed slope ``W(t)``; between events the accumulated mass is the
    quadratic ``V dt + W dt^2 / 2``, so each breakpoint is found by a
    closed-form solve (the paper's construction, vectorized).

    Exactly one of ``epsilon`` / ``r`` must be given; with ``r`` the
    threshold is ``eps = 1/(r-1)`` (the paper's ``r = 1/eps + 1``).
    """
    start = time.perf_counter()
    epsilon = _resolve_epsilon1(epsilon, r)
    total = (
        database.absolute_total_mass if use_absolute else database.total_mass
    )
    if total <= 0:
        raise ReproError("breakpoints need positive total mass M")
    threshold = epsilon * total

    events = database.sweep_events(use_absolute=use_absolute)
    times = events[:, 0]
    # Piecewise-linear summed function: value/slope right after event j.
    w_after = np.cumsum(events[:, 2])
    dt = np.diff(times)
    v_jump = np.cumsum(events[:, 1])
    # V right after event j = jumps so far + slope-accumulated drift.
    drift = np.concatenate([[0.0], np.cumsum(w_after[:-1] * dt)])
    v_after = v_jump + drift
    # Mass accumulated inside each inter-event gap, then cumulatively.
    gap_mass = v_after[:-1] * dt + 0.5 * w_after[:-1] * dt * dt
    cum_mass = np.concatenate([[0.0], np.cumsum(gap_mass)])

    final_mass = float(cum_mass[-1])
    # Self-check: the sweep's running sums cancel very steep slopes
    # against long flat gaps; on adversarial data (microscopic bursts)
    # the cancellation error can reach the mass scale.  When the sweep
    # total disagrees with the exact total, recompute the cumulative
    # mass from per-object prefix sums (slower but exact).
    drifted = (
        not np.isfinite(final_mass)
        or abs(final_mass - total) > 1e-6 * max(total, 1e-300)
    )
    store = None
    if drifted:
        # Exact cumulative totals at the event times, and bisection for
        # the in-gap crossings.  The grid keeps the historical
        # per-function sequential accumulation (NOT a pairwise-summed
        # kernel call): byte-identity with the scalar construction
        # requires the same summation order, and this fallback was
        # always the slow-but-exact path.
        store = database.store(use_absolute=use_absolute)
        cum_mass = _exact_cumulative_grid(store, times)
        final_mass = float(cum_mass[-1])
    if not (np.isfinite(final_mass) and np.isfinite(threshold) and threshold > 0):
        raise ReproError("breakpoint sweep produced non-finite masses")

    def assemble(cum: np.ndarray, exact: bool) -> np.ndarray:
        count = int(np.floor((float(cum[-1]) - 1e-12 * max(total, 1.0)) / threshold))
        targets = threshold * np.arange(1, max(count, 0) + 1)
        pieces = np.searchsorted(cum, targets, side="left") - 1
        pieces = np.clip(pieces, 0, dt.size - 1)
        breakpoints = [database.t_min]
        for target, piece in zip(targets, pieces):
            lo_t, hi_t = float(times[piece]), float(times[piece + 1])
            if exact:
                breakpoints.append(
                    _bisect_total_mass(store, lo_t, hi_t, float(target))
                )
            else:
                need = float(target - cum[piece])
                x = solve_linear_mass(
                    float(v_after[piece]), float(w_after[piece]), need, float(dt[piece])
                )
                breakpoints.append(lo_t + x)
        breakpoints.append(database.t_max)
        return np.unique(np.asarray(breakpoints, dtype=np.float64))

    unique = assemble(cum_mass, drifted)
    if not drifted:
        # Post-build self-check (Lemma 2): mid-sweep cancellation can
        # overshoot one gap even when the final sweep mass agrees with
        # the exact total (so the drift gate above never fires).  One
        # kernel call measures every gap's exact summed mass; on
        # violation, rebuild on exact cumulatives via bisection.
        store = database.store(use_absolute=use_absolute)
        gap_totals = store.masses_between(unique).sum(axis=0)
        # Trip tolerance 1e-7: ~100x above the sweep's ordinary
        # accumulation roundoff even at r ~ 1000 (measured ~7e-10, and
        # growing with r), so benign inputs never pay the exact
        # rebuild, yet 10x stricter than the 1e-6 slack the Lemma 2
        # consumers and tests rely on.
        if gap_totals.size and float(gap_totals.max()) > threshold * (1.0 + 1e-7):
            unique = assemble(_exact_cumulative_grid(store, times), True)
    return Breakpoints(
        times=unique,
        epsilon=epsilon,
        total_mass=total,
        method="BREAKPOINTS1",
        build_seconds=time.perf_counter() - start,
    )


def _exact_cumulative_grid(store, times: np.ndarray) -> np.ndarray:
    """Summed exact cumulatives at the event times.

    The per-function sequential accumulation (NOT a pairwise-summed
    kernel call) is load-bearing: byte-identity with the historical
    scalar construction requires the same summation order.
    """
    cum = np.zeros(times.size, dtype=np.float64)
    for fn in store.functions:
        cum += fn.cumulative_many(times)
    return cum


def _bisect_total_mass(store, lo: float, hi: float, target: float) -> float:
    """Time in ``[lo, hi]`` where the exact summed cumulative hits target.

    Each probe evaluates every object's cumulative in one kernel call;
    the left-to-right scalar summation order is preserved so results
    match the historical per-object loop bit for bit.
    """
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if mid <= lo or mid >= hi:
            break
        mass = sum(store.cumulative_at(mid).tolist())
        if mass < target:
            lo = mid
        else:
            hi = mid
    return hi


def _resolve_epsilon1(epsilon: Optional[float], r: Optional[int]) -> float:
    if (epsilon is None) == (r is None):
        raise ReproError("give exactly one of epsilon / r")
    if epsilon is None:
        if r < 2:
            raise ReproError("r must be at least 2")
        return 1.0 / (r - 1)
    if epsilon <= 0:
        raise ReproError("epsilon must be positive")
    return epsilon


# ----------------------------------------------------------------------
# BREAKPOINTS2: max-threshold sweep
# ----------------------------------------------------------------------
def build_breakpoints2_baseline(
    database: TemporalDatabase,
    epsilon: float,
    use_absolute: bool = False,
) -> Breakpoints:
    """Baseline BREAKPOINTS2: recompute every object at each breakpoint.

    After fixing ``b_j``, every object's next individual crossing time
    ``c_i = F_i^{-1}(F_i(b_j) + eps*M)`` is recomputed and the minimum
    taken — the O(r*m) reset cost the paper attributes to the naive
    construction (Figure 11(b) shows its build time growing with r).
    The per-breakpoint reset runs through the columnar kernel (one
    batched cumulative + one batched inverse per breakpoint), which
    keeps the O(r*m) work but removes the per-object Python overhead.
    """
    start = time.perf_counter()
    total, store = _prepare_store(database, use_absolute)
    threshold = epsilon * total
    t_end = database.t_max
    breakpoints = [database.t_min]
    current = database.t_min
    while True:
        crossings = store.inverse_cumulative_many(
            store.cumulative_at(current) + threshold
        )
        candidate = float(crossings.min())
        if candidate >= t_end or candidate == float("inf"):
            break
        breakpoints.append(candidate)
        current = candidate
    breakpoints.append(t_end)
    return Breakpoints(
        times=np.unique(np.asarray(breakpoints)),
        epsilon=epsilon,
        total_mass=total,
        method="BREAKPOINTS2",
        build_seconds=time.perf_counter() - start,
    )


def build_breakpoints2(
    database: TemporalDatabase,
    epsilon: float,
    use_absolute: bool = False,
    max_r: Optional[int] = None,
    batched: bool = True,
    executor: Optional[ParallelExecutor] = None,
) -> Breakpoints:
    """Efficient BREAKPOINTS2 (paper Lemma 1): a segment-driven sweep.

    ``max_r`` aborts construction once that many breakpoints exist
    (returning a ``truncated`` result); the budget search uses it to
    reject too-small epsilons without paying for millions of
    breakpoints.

    The naive construction recomputes every object's next crossing
    time at every breakpoint (the ``O(r*m)`` reset term).  Following
    the paper's bookkeeping argument, this sweep instead touches an
    object only when:

    * one of **its own** segments arrives in the time-ordered segment
      stream — the object is then checked for becoming *dangerous*
      (its running mass since the current breakpoint would cross
      ``eps*M`` inside this segment), or
    * it sits in the dangerous heap and floats to the top.  Heap
      entries carry the breakpoint index they were computed against;
      since cumulatives are monotone, stale entries are lower bounds,
      so popping the minimum is safe: a fresh minimum IS the next
      breakpoint, a stale one is recomputed — and *dropped* when its
      crossing moved past the object's current segment (its next
      segment pop re-examines it for free).

    The drop rule is what removes the reset term: after a breakpoint,
    non-causing objects are not revisited until their own next segment
    appears, giving ``O((N + r) log)`` total work.

    ``batched`` (default) replaces the per-event Python danger check
    with a vectorized pre-pass over blocks of segments (see
    :func:`_sweep_segments_batched`); the heap and all crossing
    resolution stay scalar, and the produced breakpoint set is
    byte-identical to ``batched=False`` (the historical per-event
    loop, kept for the equivalence suite).

    ``executor`` (default: the environment-resolved
    :func:`repro.parallel.get_executor`) fans the batched sweep's
    object-parallel kernel pre-passes — danger checks, base
    cumulatives, crossing resets — out across workers; the global
    heap merge stays sequential on the coordinator, so the produced
    breakpoint set is byte-identical on every backend.
    """
    start = time.perf_counter()
    total, store = _prepare_store(database, use_absolute)
    threshold = epsilon * total
    t_end = database.t_max
    t_start = database.t_min

    # Time-ordered stream of all segments: (t_left, object, t_right,
    # cumulative mass at t_right) — straight out of the columnar store.
    order = np.argsort(store.seg_t0, kind="stable")
    seg_left = store.seg_t0[order]
    seg_right = store.seg_t1[order]
    seg_cum = store.seg_prefix_hi[order]
    seg_obj = store.seg_obj[order]

    sweep = _sweep_segments_batched if batched else _sweep_segments_scalar
    breakpoints, truncated = sweep(
        store, threshold, t_start, t_end, max_r,
        seg_left, seg_right, seg_cum, seg_obj,
        executor,
    )
    return Breakpoints(
        times=np.unique(np.asarray(breakpoints)),
        epsilon=epsilon,
        total_mass=total,
        method="BREAKPOINTS2",
        build_seconds=time.perf_counter() - start,
        truncated=truncated,
    )


def _sweep_segments_scalar(
    store,
    threshold: float,
    t_start: float,
    t_end: float,
    max_r: Optional[int],
    seg_left: np.ndarray,
    seg_right: np.ndarray,
    seg_cum: np.ndarray,
    seg_obj: np.ndarray,
    executor: Optional[ParallelExecutor] = None,
):
    """The historical per-event BREAKPOINTS2 loop (reference path).

    ``executor`` is accepted for signature parity with the batched
    sweep and ignored: the per-event loop is inherently sequential.
    """
    functions = store.functions
    num_segments = seg_left.size
    m = len(functions)
    breakpoints: List[float] = [t_start]
    current_index = 0
    current_time = t_start
    # Per-object cache of F_i(b_cur): (base index, value).
    base_index = np.full(m, -1, dtype=np.int64)
    base_mass = np.zeros(m, dtype=np.float64)
    # Right endpoint of each object's most recently seen segment.
    frontier = np.full(m, -np.inf, dtype=np.float64)

    def rebased_mass(i: int) -> float:
        if base_index[i] != current_index:
            base_mass[i] = functions[i].cumulative(current_time)
            base_index[i] = current_index
        return float(base_mass[i])

    heap: list = []  # (crossing time, object, base index)
    position = 0
    truncated = False
    while position < num_segments or heap:
        if max_r is not None and len(breakpoints) >= max_r:
            truncated = True
            break
        next_segment_t = seg_left[position] if position < num_segments else np.inf
        next_candidate_t = heap[0][0] if heap else np.inf
        if next_candidate_t >= t_end and next_segment_t == np.inf:
            break
        if next_candidate_t <= next_segment_t:
            candidate, i, base = heapq.heappop(heap)
            if candidate >= t_end:
                break
            fn = functions[i]
            if base != current_index:
                # Stale lower bound: recompute once against the newest
                # breakpoint; keep only if still inside the object's
                # current segment, else its next segment re-checks it.
                fresh = fn.inverse_cumulative(rebased_mass(i) + threshold)
                if fresh <= frontier[i]:
                    heapq.heappush(heap, (fresh, i, current_index))
                continue
            # Fresh minimum: this is b_{j+1}.
            breakpoints.append(candidate)
            current_index += 1
            current_time = candidate
            # The causing object rebases exactly at the threshold.
            base_mass[i] += threshold
            base_index[i] = current_index
            nxt = fn.inverse_cumulative(float(base_mass[i]) + threshold)
            if nxt <= frontier[i]:
                heapq.heappush(heap, (nxt, i, current_index))
        else:
            # A segment arrives: is its object dangerous inside it?
            i = int(seg_obj[position])
            frontier[i] = seg_right[position]
            if seg_cum[position] - rebased_mass(i) >= threshold:
                crossing = functions[i].inverse_cumulative(
                    float(base_mass[i]) + threshold
                )
                heapq.heappush(heap, (crossing, i, current_index))
            position += 1
    breakpoints.append(t_end)
    return breakpoints, truncated


#: Segments per vectorized danger-check block in the batched BP2 sweep.
_DANGER_BLOCK = 1 << 14

#: Relative slack (of the total mass M) added to the batched danger
#: pre-filter.  The pre-pass evaluates each block against base masses
#: snapshotted at block creation; bases only grow as breakpoints
#: advance, so a stale snapshot flags a *superset* of the truly
#: dangerous segments — except that a causing object's cached base
#: (``prev + eps*M`` exactly) can exceed its recomputed cumulative by
#: a few ulps.  The slack (~1e-9 M, vs ulp drift ~1e-16 M) makes the
#: filter conservatively wide; flagged segments always re-run the
#: exact scalar check, so extra flags cost time, never correctness.
_DANGER_SLACK = 1e-9


#: Rebuild the heap eagerly per breakpoint once it holds this many
#: entries (relative to m): below, stale entries are recomputed lazily
#: one pop at a time; above, one kernel pass refreshes every crossing.
_EAGER_RESET_FRACTION = 8


class _SerialSweepKernels:
    """In-process kernel pre-passes (the reference fan-out=1 path)."""

    def __init__(self, store, seg_cum, seg_obj, limit: float) -> None:
        self._store = store
        self._seg_cum = seg_cum
        self._seg_obj = seg_obj
        self._limit = limit

    def cumulative_at(self, t: float) -> np.ndarray:
        return self._store.cumulative_at(t)

    def inverse_cumulative_many(self, targets: np.ndarray) -> np.ndarray:
        return self._store.inverse_cumulative_many(targets)

    def danger_flags(
        self, lo: int, hi: int, snapshot: np.ndarray
    ) -> np.ndarray:
        window = slice(lo, hi)
        danger = (
            self._seg_cum[window] - snapshot[self._seg_obj[window]]
            >= self._limit
        )
        return lo + np.flatnonzero(danger)


class _ParallelSweepKernels:
    """Kernel pre-passes fanned out over contiguous chunks.

    Object-parallel passes (base cumulatives, crossing resets) split
    the ``m`` objects across workers through the store's picklable
    CSR view; the danger pre-pass splits its segment window.  Every
    primitive is elementwise per object / per segment, so the
    concatenated results are byte-identical to the serial kernels —
    which is what keeps the sweep's heap decisions, and therefore the
    breakpoint set, independent of the backend.
    """

    def __init__(self, session, obj_chunks, seg_parts: int, limit: float):
        self._session = session
        self._obj_chunks = obj_chunks
        self._seg_parts = seg_parts
        self._limit = limit

    def cumulative_at(self, t: float) -> np.ndarray:
        tasks = [(t, lo, hi) for lo, hi in self._obj_chunks]
        return np.concatenate(self._session.map(bp2_cumulative_chunk, tasks))

    def inverse_cumulative_many(self, targets: np.ndarray) -> np.ndarray:
        tasks = [(targets[lo:hi], lo, hi) for lo, hi in self._obj_chunks]
        return np.concatenate(self._session.map(bp2_inverse_chunk, tasks))

    def danger_flags(
        self, lo: int, hi: int, snapshot: np.ndarray
    ) -> np.ndarray:
        tasks = [
            (lo + c_lo, lo + c_hi, snapshot, self._limit)
            for c_lo, c_hi in chunk_ranges(hi - lo, self._seg_parts)
        ]
        return np.concatenate(self._session.map(bp2_danger_chunk, tasks))


@contextmanager
def _sweep_kernels(store, seg_cum, seg_obj, limit, executor):
    """The batched sweep's kernel facade, serial or fanned out.

    Opens (and tears down) one executor session for the whole sweep,
    so pool startup is paid once per construction, not per kernel
    pass.
    """
    if executor is None:
        executor = get_executor()
    if executor.is_serial:
        yield _SerialSweepKernels(store, seg_cum, seg_obj, limit)
        return
    obj_chunks = chunk_ranges(store.num_objects, executor.workers)
    state = (store.csr_view(), seg_cum, seg_obj)
    with executor.session(state) as session:
        yield _ParallelSweepKernels(
            session, obj_chunks, executor.workers, limit
        )


def _sweep_segments_batched(
    store,
    threshold: float,
    t_start: float,
    t_end: float,
    max_r: Optional[int],
    seg_left: np.ndarray,
    seg_right: np.ndarray,
    seg_cum: np.ndarray,
    seg_obj: np.ndarray,
    executor: Optional[ParallelExecutor] = None,
):
    """BREAKPOINTS2 sweep with batched danger checks and crossings.

    Produces the same breakpoint sequence as
    :func:`_sweep_segments_scalar`, event for event, with the scalar
    per-event math replaced by per-breakpoint kernel passes:

    * "which objects become dangerous in this block of segments" is a
      vectorized pre-pass over ``_DANGER_BLOCK`` segments (a
      conservative superset — see ``_DANGER_SLACK``); unflagged
      segments are skipped in bulk,
    * exact bases and crossings are served from per-object memos
      (per breakpoint index) while the dangerous heap is small — the
      lazy sweep's O(touched) accounting, which keeps the Lemma 1
      advantage over the baseline's reset term — and from one
      ``cumulative_at`` + ``inverse_cumulative_many`` kernel pass per
      breakpoint once the heap grows past
      ``m / _EAGER_RESET_FRACTION`` entries (both sources are
      bit-identical to the scalar loop's per-object calls, with the
      causing object's exact-threshold rebase overriding its kernel
      value),
    * in that large-heap regime, a new breakpoint also rebuilds the
      heap outright from the cached crossings instead of letting each
      stale entry pop-recompute-push individually.  A rebuilt entry is
      dropped when its crossing lies past the object's current
      frontier — exactly the scalar drop rule; the object's own next
      segment re-discovers the crossing before its time, so the
      accepted breakpoint sequence is unchanged (the equivalence
      suite asserts byte-identity),
    * the per-object ``frontier`` array becomes a lazy lookup over the
      per-object stream positions.

    The kernel pre-passes run through :func:`_sweep_kernels`: with a
    parallel ``executor`` they fan out over contiguous object (and
    segment-window) chunks, while the heap merge below stays
    sequential on the coordinator — kernel values are byte-identical
    either way, so the accepted breakpoint sequence is too.
    """
    functions = store.functions
    num_segments = seg_left.size
    m = len(functions)
    breakpoints: List[float] = [t_start]
    current_index = 0
    current_time = t_start
    base_index = np.full(m, -1, dtype=np.int64)
    base_mass = np.zeros(m, dtype=np.float64)

    # Frontier (right endpoint of each object's most recently seen
    # segment), synced lazily: bulk-skipped segment ranges are folded
    # in with one vectorized max-scatter right before any read, so the
    # total sync work is O(N) across the whole sweep.
    frontier = np.full(m, -np.inf, dtype=np.float64)
    synced_upto = 0
    position = 0

    def frontier_of(i: int) -> float:
        nonlocal synced_upto
        if synced_upto < position:
            window = slice(synced_upto, position)
            np.maximum.at(frontier, seg_obj[window], seg_right[window])
            synced_upto = position
        return float(frontier[i])

    def rebased_mass(i: int) -> float:
        if base_index[i] != current_index:
            base_mass[i] = functions[i].cumulative(current_time)
            base_index[i] = current_index
        return float(base_mass[i])

    # Exact bases and crossings come from one of two bit-identical
    # sources: per-object scalar computations memoized per breakpoint
    # index (the lazy sweep's O(touched) accounting), or — once an
    # eager reset has run for the current index — full kernel vectors.
    cache_index = -1
    base_vec: Optional[np.ndarray] = None
    crossings: Optional[np.ndarray] = None
    crossing_index = np.full(m, -1, dtype=np.int64)
    crossing_memo = np.zeros(m, dtype=np.float64)

    def full_refresh() -> None:
        # ``kernels`` is bound below, before the sweep loop runs.
        nonlocal cache_index, base_vec, crossings
        if cache_index == current_index:
            return
        kernel = kernels.cumulative_at(current_time)
        base_vec = np.where(base_index == current_index, base_mass, kernel)
        crossings = kernels.inverse_cumulative_many(base_vec + threshold)
        cache_index = current_index

    def base_of(i: int) -> float:
        if cache_index == current_index:
            return float(base_vec[i])
        return rebased_mass(i)

    def crossing_of(i: int) -> float:
        if cache_index == current_index:
            return float(crossings[i])
        if crossing_index[i] != current_index:
            crossing_memo[i] = functions[i].inverse_cumulative(
                rebased_mass(i) + threshold
            )
            crossing_index[i] = current_index
        return float(crossing_memo[i])

    # Slack scales with the mass magnitude (base drift is ulps of the
    # per-object cumulatives, not of the threshold).
    slack = _DANGER_SLACK * max(
        float(np.abs(store.totals).max()), abs(threshold)
    )
    block_end = 0
    flagged: List[int] = []
    flag_cursor = 0
    reset_min = max(64, m // _EAGER_RESET_FRACTION)
    kernel_index = -1
    kernel_base: Optional[np.ndarray] = None

    heap: list = []  # (crossing time, object, base index)
    truncated = False
    with _sweep_kernels(
        store, seg_cum, seg_obj, threshold - slack, executor
    ) as kernels:
        while position < num_segments or heap:
            if max_r is not None and len(breakpoints) >= max_r:
                truncated = True
                break
            next_segment_t = (
                seg_left[position] if position < num_segments else np.inf
            )
            next_candidate_t = heap[0][0] if heap else np.inf
            if next_candidate_t >= t_end and next_segment_t == np.inf:
                break
            if next_candidate_t <= next_segment_t:
                # ---- crossing resolution.
                candidate, i, base = heapq.heappop(heap)
                if candidate >= t_end:
                    break
                if base != current_index:
                    # Stale lower bound: recompute exactly against the
                    # newest breakpoint; keep only if still inside the
                    # object's current segment (the scalar drop rule).
                    fresh = crossing_of(i)
                    if fresh <= frontier_of(i):
                        heapq.heappush(heap, (fresh, i, current_index))
                    continue
                # Fresh minimum: this is b_{j+1}.  The causing object
                # rebases exactly at the threshold on top of the base
                # its accepted crossing was computed from.
                caused_base = base_of(i)
                breakpoints.append(candidate)
                current_index += 1
                current_time = candidate
                base_mass[i] = caused_base + threshold
                base_index[i] = current_index
                if len(heap) >= reset_min:
                    # Eager reset: every entry would pop stale against
                    # the new breakpoint anyway; one kernel pass
                    # refreshes all crossings and rebuilds the heap
                    # (duplicates collapse).  Entries past their
                    # object's frontier are dropped — the scalar drop
                    # rule; the object's own next segment re-discovers
                    # the crossing in time.
                    full_refresh()
                    live = {i} | {entry[1] for entry in heap}
                    heap = []
                    for obj in live:
                        fresh = float(crossings[obj])
                        if fresh <= frontier_of(obj):
                            heap.append((fresh, obj, current_index))
                    heapq.heapify(heap)
                else:
                    nxt = crossing_of(i)
                    if nxt <= frontier_of(i):
                        heapq.heappush(heap, (nxt, i, current_index))
            else:
                # ---- segment arrivals: batched danger pre-pass.
                if position >= block_end:
                    block_start = position
                    block_end = min(position + _DANGER_BLOCK, num_segments)
                    if kernel_index != current_index:
                        kernel_base = kernels.cumulative_at(current_time)
                        kernel_index = current_index
                    snapshot = np.where(
                        base_index == current_index, base_mass, kernel_base
                    )
                    flagged = kernels.danger_flags(
                        block_start, block_end, snapshot
                    ).tolist()
                    flag_cursor = 0
                while (
                    flag_cursor < len(flagged)
                    and flagged[flag_cursor] < position
                ):
                    flag_cursor += 1
                first = (
                    flagged[flag_cursor]
                    if flag_cursor < len(flagged)
                    else num_segments
                )
                if first == position:
                    # The exact danger check for the flagged segment
                    # (identical compare and push value as the scalar
                    # loop, via the cached bases/crossings).
                    flag_cursor += 1
                    i = int(seg_obj[position])
                    if seg_cum[position] - base_of(i) >= threshold:
                        heapq.heappush(
                            heap, (crossing_of(i), i, current_index)
                        )
                    position += 1
                    continue
                # A clean run up to the next flagged segment, the next
                # heap candidate's arrival, or the block end — skip it
                # in bulk.
                target = min(first, block_end)
                if heap:
                    target = min(
                        target,
                        int(
                            np.searchsorted(
                                seg_left, next_candidate_t, "left"
                            )
                        ),
                    )
                position = target
    breakpoints.append(t_end)
    return breakpoints, truncated


def _prepare_store(database: TemporalDatabase, use_absolute: bool):
    """The (cached) columnar store and the scalar-summed total mass M."""
    store = database.store(use_absolute=use_absolute)
    total = store.sequential_total_mass
    if total <= 0:
        raise ReproError("breakpoints need positive total mass M")
    return total, store


def epsilon_for_budget(
    database: TemporalDatabase,
    r_target: int,
    use_absolute: bool = False,
    tolerance: int = 0,
    max_iterations: int = 60,
    executor: Optional[ParallelExecutor] = None,
) -> float:
    """Largest ``eps`` whose BREAKPOINTS2 has about ``r_target`` points.

    The paper's experiments fix the breakpoint *budget* r and compare
    the epsilon each construction achieves (Figure 11(a)); since
    ``r(eps)`` is monotone nonincreasing this is a binary search.
    ``executor`` is forwarded to every probe construction.
    """
    if r_target < 2:
        raise ReproError("r_target must be at least 2")
    lo, hi = 1e-14, 1.0  # eps=1 gives r=2; eps->0 gives r->max
    best = hi
    cap = 4 * r_target + 16  # abort hopeless (too-small eps) probes early
    for _ in range(max_iterations):
        mid = np.sqrt(lo * hi)  # geometric: eps spans many decades
        probe = build_breakpoints2(
            database, mid, use_absolute, max_r=cap, executor=executor
        )
        r_mid = cap if probe.truncated else probe.r
        if not probe.truncated and abs(r_mid - r_target) <= tolerance:
            return float(mid)
        if r_mid > r_target:
            lo = mid
        else:
            hi = mid
            best = mid
    return float(best)
