"""Breakpoint constructions (paper Section 3.1).

Both approximate methods discretize the time domain into breakpoints
``B = {b_0 = 0, ..., b_{r-1} = T}`` and snap query endpoints to them.
The two constructions differ in the threshold condition between
consecutive breakpoints:

* **BREAKPOINTS1** places ``b_{j+1}`` where the *summed* accumulated
  mass reaches the threshold: ``sum_i sigma_i(b_j, b_{j+1}) = eps*M``.
  Exactly ``r = ceil(1/eps) + 1`` breakpoints result.
* **BREAKPOINTS2** places ``b_{j+1}`` where the *maximum per-object*
  accumulated mass reaches it: ``max_i sigma_i(b_j, b_{j+1}) = eps*M``.
  At most ``1/eps + 1`` breakpoints result, and on heterogeneous real
  data far fewer — equivalently, for a fixed budget ``r`` the achieved
  ``eps`` is orders of magnitude smaller (paper Figure 11(a)).

Both guarantee the Lemma 2 property ``sigma_i(b_j, b_{j+1}) <= eps*M``
for every object, which is what the query structures' error bounds
rest on.

Negative scores (Section 4): pass ``use_absolute=True`` and all masses
are measured on ``|g_i|``; the guarantee then holds with ``M`` defined
on absolute values.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import ReproError
from repro.core.geometry import solve_linear_mass


@dataclass(frozen=True)
class Breakpoints:
    """A built breakpoint set with its construction metadata."""

    times: np.ndarray
    epsilon: float
    total_mass: float
    method: str
    build_seconds: float = field(default=0.0, compare=False)
    #: True when construction was aborted at a breakpoint cap (only the
    #: budget search sets caps; capped sets must not be used to answer
    #: queries).
    truncated: bool = field(default=False, compare=False)

    @property
    def r(self) -> int:
        """Number of breakpoints (including both domain endpoints)."""
        return int(self.times.size)

    @property
    def threshold(self) -> float:
        """The mass threshold ``eps * M`` used during construction."""
        return self.epsilon * self.total_mass

    def snap(self, t: float) -> int:
        """Index of ``B(t)``: the smallest breakpoint >= ``t`` (clamped)."""
        idx = int(np.searchsorted(self.times, t, side="left"))
        return min(idx, self.r - 1)

    def snap_time(self, t: float) -> float:
        """``B(t)`` itself."""
        return float(self.times[self.snap(t)])

    def verify(self, database: TemporalDatabase, use_absolute: bool = False) -> float:
        """Max per-object mass between consecutive breakpoints (tests).

        For a correct construction this never exceeds ``threshold``
        (up to roundoff).  Returns the observed maximum.
        """
        worst = 0.0
        for obj in database:
            fn = obj.function.absolute() if use_absolute else obj.function
            cums = fn.cumulative_many(self.times)
            worst = max(worst, float(np.diff(cums).max()))
        return worst


# ----------------------------------------------------------------------
# BREAKPOINTS1: sum-threshold sweep
# ----------------------------------------------------------------------
def build_breakpoints1(
    database: TemporalDatabase,
    epsilon: Optional[float] = None,
    r: Optional[int] = None,
    use_absolute: bool = False,
) -> Breakpoints:
    """BREAKPOINTS1 via a single sweep over all segment endpoints.

    The sweep maintains the summed value ``V(t) = sum_i g_i(t)`` and
    summed slope ``W(t)``; between events the accumulated mass is the
    quadratic ``V dt + W dt^2 / 2``, so each breakpoint is found by a
    closed-form solve (the paper's construction, vectorized).

    Exactly one of ``epsilon`` / ``r`` must be given; with ``r`` the
    threshold is ``eps = 1/(r-1)`` (the paper's ``r = 1/eps + 1``).
    """
    start = time.perf_counter()
    epsilon = _resolve_epsilon1(epsilon, r)
    total = (
        database.absolute_total_mass if use_absolute else database.total_mass
    )
    if total <= 0:
        raise ReproError("breakpoints need positive total mass M")
    threshold = epsilon * total

    events = database.sweep_events(use_absolute=use_absolute)
    times = events[:, 0]
    # Piecewise-linear summed function: value/slope right after event j.
    w_after = np.cumsum(events[:, 2])
    dt = np.diff(times)
    v_jump = np.cumsum(events[:, 1])
    # V right after event j = jumps so far + slope-accumulated drift.
    drift = np.concatenate([[0.0], np.cumsum(w_after[:-1] * dt)])
    v_after = v_jump + drift
    # Mass accumulated inside each inter-event gap, then cumulatively.
    gap_mass = v_after[:-1] * dt + 0.5 * w_after[:-1] * dt * dt
    cum_mass = np.concatenate([[0.0], np.cumsum(gap_mass)])

    final_mass = float(cum_mass[-1])
    # Self-check: the sweep's running sums cancel very steep slopes
    # against long flat gaps; on adversarial data (microscopic bursts)
    # the cancellation error can reach the mass scale.  When the sweep
    # total disagrees with the exact total, recompute the cumulative
    # mass from per-object prefix sums (slower but exact).
    drifted = (
        not np.isfinite(final_mass)
        or abs(final_mass - total) > 1e-6 * max(total, 1e-300)
    )
    functions = None
    if drifted:
        # Exact cumulative totals at the event times, and bisection for
        # the in-gap crossings.
        functions = [
            (obj.function.absolute() if use_absolute else obj.function)
            for obj in database
        ]
        cum_mass = np.zeros(times.size, dtype=np.float64)
        for fn in functions:
            cum_mass += fn.cumulative_many(times)
        final_mass = float(cum_mass[-1])
    if not (np.isfinite(final_mass) and np.isfinite(threshold) and threshold > 0):
        raise ReproError("breakpoint sweep produced non-finite masses")
    count = int(np.floor((final_mass - 1e-12 * max(total, 1.0)) / threshold))
    targets = threshold * np.arange(1, max(count, 0) + 1)
    pieces = np.searchsorted(cum_mass, targets, side="left") - 1
    pieces = np.clip(pieces, 0, dt.size - 1)
    breakpoints = [database.t_min]
    for target, piece in zip(targets, pieces):
        lo_t, hi_t = float(times[piece]), float(times[piece + 1])
        if drifted:
            breakpoints.append(
                _bisect_total_mass(functions, lo_t, hi_t, float(target))
            )
        else:
            need = float(target - cum_mass[piece])
            x = solve_linear_mass(
                float(v_after[piece]), float(w_after[piece]), need, float(dt[piece])
            )
            breakpoints.append(lo_t + x)
    breakpoints.append(database.t_max)
    unique = np.unique(np.asarray(breakpoints, dtype=np.float64))
    return Breakpoints(
        times=unique,
        epsilon=epsilon,
        total_mass=total,
        method="BREAKPOINTS1",
        build_seconds=time.perf_counter() - start,
    )


def _bisect_total_mass(functions, lo: float, hi: float, target: float) -> float:
    """Time in ``[lo, hi]`` where the exact summed cumulative hits target."""
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if mid <= lo or mid >= hi:
            break
        mass = sum(fn.cumulative(mid) for fn in functions)
        if mass < target:
            lo = mid
        else:
            hi = mid
    return hi


def _resolve_epsilon1(epsilon: Optional[float], r: Optional[int]) -> float:
    if (epsilon is None) == (r is None):
        raise ReproError("give exactly one of epsilon / r")
    if epsilon is None:
        if r < 2:
            raise ReproError("r must be at least 2")
        return 1.0 / (r - 1)
    if epsilon <= 0:
        raise ReproError("epsilon must be positive")
    return epsilon


# ----------------------------------------------------------------------
# BREAKPOINTS2: max-threshold sweep
# ----------------------------------------------------------------------
def build_breakpoints2_baseline(
    database: TemporalDatabase,
    epsilon: float,
    use_absolute: bool = False,
) -> Breakpoints:
    """Baseline BREAKPOINTS2: recompute every object at each breakpoint.

    After fixing ``b_j``, every object's next individual crossing time
    ``c_i = F_i^{-1}(F_i(b_j) + eps*M)`` is recomputed and the minimum
    taken — the O(r*m) reset cost the paper attributes to the naive
    construction (Figure 11(b) shows its build time growing with r).
    """
    start = time.perf_counter()
    total, functions = _prepare_functions(database, use_absolute)
    threshold = epsilon * total
    t_end = database.t_max
    breakpoints = [database.t_min]
    current = database.t_min
    while True:
        candidate = min(
            fn.inverse_cumulative(fn.cumulative(current) + threshold)
            for fn in functions
        )
        if candidate >= t_end or candidate == float("inf"):
            break
        breakpoints.append(candidate)
        current = candidate
    breakpoints.append(t_end)
    return Breakpoints(
        times=np.unique(np.asarray(breakpoints)),
        epsilon=epsilon,
        total_mass=total,
        method="BREAKPOINTS2",
        build_seconds=time.perf_counter() - start,
    )


def build_breakpoints2(
    database: TemporalDatabase,
    epsilon: float,
    use_absolute: bool = False,
    max_r: Optional[int] = None,
) -> Breakpoints:
    """Efficient BREAKPOINTS2 (paper Lemma 1): a segment-driven sweep.

    ``max_r`` aborts construction once that many breakpoints exist
    (returning a ``truncated`` result); the budget search uses it to
    reject too-small epsilons without paying for millions of
    breakpoints.

    The naive construction recomputes every object's next crossing
    time at every breakpoint (the ``O(r*m)`` reset term).  Following
    the paper's bookkeeping argument, this sweep instead touches an
    object only when:

    * one of **its own** segments arrives in the time-ordered segment
      stream — the object is then checked for becoming *dangerous*
      (its running mass since the current breakpoint would cross
      ``eps*M`` inside this segment), or
    * it sits in the dangerous heap and floats to the top.  Heap
      entries carry the breakpoint index they were computed against;
      since cumulatives are monotone, stale entries are lower bounds,
      so popping the minimum is safe: a fresh minimum IS the next
      breakpoint, a stale one is recomputed — and *dropped* when its
      crossing moved past the object's current segment (its next
      segment pop re-examines it for free).

    The drop rule is what removes the reset term: after a breakpoint,
    non-causing objects are not revisited until their own next segment
    appears, giving ``O((N + r) log)`` total work.
    """
    start = time.perf_counter()
    total, functions = _prepare_functions(database, use_absolute)
    threshold = epsilon * total
    t_end = database.t_max
    t_start = database.t_min

    # Time-ordered stream of all segments: (t_left, object, t_right,
    # cumulative mass at t_right).
    seg_left, seg_obj, seg_right, seg_cum = [], [], [], []
    for i, fn in enumerate(functions):
        seg_left.append(fn.times[:-1])
        seg_right.append(fn.times[1:])
        seg_cum.append(fn.prefix_masses[1:])
        seg_obj.append(np.full(fn.num_segments, i, dtype=np.int64))
    seg_left = np.concatenate(seg_left)
    seg_right = np.concatenate(seg_right)
    seg_cum = np.concatenate(seg_cum)
    seg_obj = np.concatenate(seg_obj)
    order = np.argsort(seg_left, kind="stable")
    seg_left, seg_right = seg_left[order], seg_right[order]
    seg_cum, seg_obj = seg_cum[order], seg_obj[order]
    num_segments = seg_left.size

    m = len(functions)
    breakpoints: List[float] = [t_start]
    current_index = 0
    current_time = t_start
    # Per-object cache of F_i(b_cur): (base index, value).
    base_index = np.full(m, -1, dtype=np.int64)
    base_mass = np.zeros(m, dtype=np.float64)
    # Right endpoint of each object's most recently seen segment.
    frontier = np.full(m, -np.inf, dtype=np.float64)

    def rebased_mass(i: int) -> float:
        if base_index[i] != current_index:
            base_mass[i] = functions[i].cumulative(current_time)
            base_index[i] = current_index
        return float(base_mass[i])

    heap: list = []  # (crossing time, object, base index)
    position = 0
    truncated = False
    while position < num_segments or heap:
        if max_r is not None and len(breakpoints) >= max_r:
            truncated = True
            break
        next_segment_t = seg_left[position] if position < num_segments else np.inf
        next_candidate_t = heap[0][0] if heap else np.inf
        if next_candidate_t >= t_end and next_segment_t == np.inf:
            break
        if next_candidate_t <= next_segment_t:
            candidate, i, base = heapq.heappop(heap)
            if candidate >= t_end:
                break
            fn = functions[i]
            if base != current_index:
                # Stale lower bound: recompute once against the newest
                # breakpoint; keep only if still inside the object's
                # current segment, else its next segment re-checks it.
                fresh = fn.inverse_cumulative(rebased_mass(i) + threshold)
                if fresh <= frontier[i]:
                    heapq.heappush(heap, (fresh, i, current_index))
                continue
            # Fresh minimum: this is b_{j+1}.
            breakpoints.append(candidate)
            current_index += 1
            current_time = candidate
            # The causing object rebases exactly at the threshold.
            base_mass[i] += threshold
            base_index[i] = current_index
            nxt = fn.inverse_cumulative(float(base_mass[i]) + threshold)
            if nxt <= frontier[i]:
                heapq.heappush(heap, (nxt, i, current_index))
        else:
            # A segment arrives: is its object dangerous inside it?
            i = int(seg_obj[position])
            frontier[i] = seg_right[position]
            if seg_cum[position] - rebased_mass(i) >= threshold:
                crossing = functions[i].inverse_cumulative(
                    float(base_mass[i]) + threshold
                )
                heapq.heappush(heap, (crossing, i, current_index))
            position += 1
    breakpoints.append(t_end)
    return Breakpoints(
        times=np.unique(np.asarray(breakpoints)),
        epsilon=epsilon,
        total_mass=total,
        method="BREAKPOINTS2",
        build_seconds=time.perf_counter() - start,
        truncated=truncated,
    )


def _prepare_functions(database: TemporalDatabase, use_absolute: bool):
    if use_absolute:
        functions = [obj.function.absolute() for obj in database]
        total = sum(fn.total_mass for fn in functions)
    else:
        functions = [obj.function for obj in database]
        total = database.total_mass
    if total <= 0:
        raise ReproError("breakpoints need positive total mass M")
    return total, functions


def epsilon_for_budget(
    database: TemporalDatabase,
    r_target: int,
    use_absolute: bool = False,
    tolerance: int = 0,
    max_iterations: int = 60,
) -> float:
    """Largest ``eps`` whose BREAKPOINTS2 has about ``r_target`` points.

    The paper's experiments fix the breakpoint *budget* r and compare
    the epsilon each construction achieves (Figure 11(a)); since
    ``r(eps)`` is monotone nonincreasing this is a binary search.
    """
    if r_target < 2:
        raise ReproError("r_target must be at least 2")
    lo, hi = 1e-14, 1.0  # eps=1 gives r=2; eps->0 gives r->max
    best = hi
    cap = 4 * r_target + 16  # abort hopeless (too-small eps) probes early
    for _ in range(max_iterations):
        mid = np.sqrt(lo * hi)  # geometric: eps spans many decades
        probe = build_breakpoints2(database, mid, use_absolute, max_r=cap)
        r_mid = cap if probe.truncated else probe.r
        if not probe.truncated and abs(r_mid - r_target) <= tolerance:
            return float(mid)
        if r_mid > r_target:
            lo = mid
        else:
            hi = mid
            best = mid
    return float(best)
