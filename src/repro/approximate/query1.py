"""QUERY1: nested B+-trees over all breakpoint pairs (paper Section 3.2).

For every ordered breakpoint pair ``(b_j, b_j')`` the top ``k_max``
objects by ``sigma_i(b_j, b_j')`` are precomputed and stored.  A top
B+-tree indexes the left endpoint; each of its leaves points to a
lower B+-tree over the right endpoints, whose entries point to the
packed top-``k_max`` list.  A query snaps ``[t1, t2]`` to
``[B(t1), B(t2)]`` and reads one stored list:

* ``(eps, 1)``-approximation of scores and answers (Lemma 3),
* ``O(k/B + log_B r)`` query IOs,
* ``Theta(r^2 k_max / B)`` index size — the price QUERY2 then removes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import InvalidQueryError
from repro.core.results import TopKResult, top_k_from_arrays
from repro.storage.device import BlockDevice
from repro.btree.tree import BPlusTree
from repro.approximate.breakpoints import Breakpoints
from repro.approximate.toplists import (
    StoredTopList,
    cumulative_matrix,
    top_kmax_of_column,
)


class NestedPairIndex:
    """The QUERY1 structure: all-pairs top lists behind nested B+-trees."""

    def __init__(
        self,
        device: BlockDevice,
        breakpoints: Breakpoints,
        kmax: int,
    ) -> None:
        self.device = device
        self.breakpoints = breakpoints
        self.kmax = kmax
        self.top_tree = BPlusTree(device, value_columns=1)
        self._subtrees: Dict[int, BPlusTree] = {}
        self._lists: Dict[Tuple[int, int], StoredTopList] = {}

    # ------------------------------------------------------------------
    def build(self, database: TemporalDatabase) -> "NestedPairIndex":
        """Materialize the ``r(r-1)/2`` interval lists and the trees."""
        times = self.breakpoints.times
        r = times.size
        ids, matrix = cumulative_matrix(database, times)
        for j in range(r - 1):
            right_keys = []
            right_rows = []
            base = matrix[:, j]
            for j2 in range(j + 1, r):
                scores = matrix[:, j2] - base
                top_ids, top_scores = top_kmax_of_column(ids, scores, self.kmax)
                stored = StoredTopList.store(self.device, top_ids, top_scores)
                self._lists[(j, j2)] = stored
                right_keys.append(times[j2])
                right_rows.append([float(j2)])
            subtree = BPlusTree(self.device, value_columns=1)
            subtree.bulk_load(
                np.asarray(right_keys), np.asarray(right_rows, dtype=np.float64)
            )
            self._subtrees[j] = subtree
        top_keys = times[:-1]
        top_rows = np.arange(r - 1, dtype=np.float64).reshape(-1, 1)
        self.top_tree.bulk_load(top_keys, top_rows)
        return self

    # ------------------------------------------------------------------
    def query(self, t1: float, t2: float, k: int) -> TopKResult:
        """Top-k of the snapped interval ``[B(t1), B(t2)]``."""
        if k > self.kmax:
            raise InvalidQueryError(f"k={k} exceeds kmax={self.kmax}")
        pair = self._snap_pair(t1, t2)
        if pair is None:
            # Degenerate snap (B(t1) == B(t2)): the snapped interval is
            # empty and every approximate score is 0, which is within
            # eps*M of the truth.  Nothing meaningful to return.
            return TopKResult()
        j1, j2 = pair
        stored = self._lists[(j1, j2)]
        ids, scores = stored.read_top(self.device, k)
        return top_k_from_arrays(ids, scores, k)

    def _snap_pair(self, t1: float, t2: float) -> Optional[Tuple[int, int]]:
        """(j1, j2) with ``b_{j1} = B(t1)``, ``b_{j2} = B(t2)`` via the trees."""
        hit = self.top_tree.successor(t1)
        if hit is None:
            return None
        j1 = int(hit[1][0])
        if t2 <= self.breakpoints.times[j1]:
            # B(t2) == B(t1): the snapped interval is empty.
            return None
        subtree = self._subtrees[j1]
        hit2 = subtree.successor(t2)
        if hit2 is None:
            return None
        j2 = int(hit2[1][0])
        if j2 <= j1:
            return None
        return j1, j2

    def approximate_score(self, object_id: int, t1: float, t2: float) -> float:
        """``sigma~_i``: the stored score if the object made the list, else 0.

        Only used by diagnostics; the query path returns scores inline.
        """
        pair = self._snap_pair(t1, t2)
        if pair is None:
            return 0.0
        ids, scores = self._lists[pair].read_top(self.device, self.kmax)
        match = np.flatnonzero(ids == object_id)
        if match.size == 0:
            return 0.0
        return float(scores[match[0]])
