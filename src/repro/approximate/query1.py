"""QUERY1: nested B+-trees over all breakpoint pairs (paper Section 3.2).

For every ordered breakpoint pair ``(b_j, b_j')`` the top ``k_max``
objects by ``sigma_i(b_j, b_j')`` are precomputed and stored.  A top
B+-tree indexes the left endpoint; each of its leaves points to a
lower B+-tree over the right endpoints, whose entries point to the
packed top-``k_max`` list.  A query snaps ``[t1, t2]`` to
``[B(t1), B(t2)]`` and reads one stored list:

* ``(eps, 1)``-approximation of scores and answers (Lemma 3),
* ``O(k/B + log_B r)`` query IOs,
* ``Theta(r^2 k_max / B)`` index size — the price QUERY2 then removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import InvalidQueryError
from repro.core.results import TopKResult, top_k_from_arrays
from repro.storage.device import BlockDevice
from repro.btree.batch import modeled_successor_many, supports_model
from repro.btree.tree import BPlusTree
from repro.parallel.executor import (
    OVERSUBSCRIPTION,
    ParallelExecutor,
    get_executor,
    weighted_chunk_ranges,
)
from repro.parallel.workers import query1_toplists_chunk
from repro.approximate.breakpoints import Breakpoints
from repro.approximate.toplists import (
    StoredTopList,
    TopListBatcher,
    cumulative_matrix,
    cumulative_matrix_T,
    top_kmax_of_column,
)


class NestedPairIndex:
    """The QUERY1 structure: all-pairs top lists behind nested B+-trees."""

    def __init__(
        self,
        device: BlockDevice,
        breakpoints: Breakpoints,
        kmax: int,
    ) -> None:
        self.device = device
        self.breakpoints = breakpoints
        self.kmax = kmax
        self.top_tree = BPlusTree(device, value_columns=1)
        self._subtrees: Dict[int, BPlusTree] = {}
        self._lists: Dict[Tuple[int, int], StoredTopList] = {}

    # ------------------------------------------------------------------
    def build(
        self,
        database: TemporalDatabase,
        batched: bool = True,
        executor: Optional[ParallelExecutor] = None,
    ) -> "NestedPairIndex":
        """Materialize the ``r(r-1)/2`` interval lists and the trees.

        The batched path (default) processes each left endpoint's whole
        score matrix ``P[:, j+1:] - P[:, j:j+1]`` in one
        :class:`TopListBatcher` pass and bulk-packs the resulting
        family of lists through :meth:`StoredTopList.store_many`;
        ``batched=False`` keeps the historical one-column-at-a-time
        loop.  Both produce byte-identical stored lists on an
        identically laid-out device (the equivalence suite asserts
        this).

        ``executor`` (default: the environment-resolved
        :func:`repro.parallel.get_executor`) fans the independent
        per-left-endpoint batches out across workers; device writes
        and tree wiring stay on the coordinator, in ``j`` order, so
        every backend yields a byte-identical index.
        """
        times = self.breakpoints.times
        r = times.size
        materialized = None
        if batched:
            ids, p_t = cumulative_matrix_T(database, times)
            m = p_t.shape[1]
            nonneg = bool(database.store().knot_values.min() >= 0.0)
            if executor is None:
                executor = get_executor()
            if executor.is_serial:
                batcher = TopListBatcher(ids, r - 1, self.kmax, nonneg)
                neg_buffer = np.empty((r - 1, m), dtype=np.float64)
            else:
                materialized = self._materialize_parallel(
                    ids, p_t, nonneg, executor
                )
        else:
            ids, matrix = cumulative_matrix(database, times)
        for j in range(r - 1):
            if batched:
                if materialized is not None:
                    top_ids, top_scores = materialized[j]
                else:
                    neg = neg_buffer[: r - 1 - j]
                    np.subtract(p_t[j], p_t[j + 1 :], out=neg)
                    top_ids, top_scores, _ = batcher.top_lists(neg)
                stored_lists = StoredTopList.store_many(
                    self.device, top_ids, top_scores
                )
                for offset, stored in enumerate(stored_lists):
                    self._lists[(j, j + 1 + offset)] = stored
            else:
                base = matrix[:, j]
                for j2 in range(j + 1, r):
                    scores = matrix[:, j2] - base
                    top_ids, top_scores = top_kmax_of_column(
                        ids, scores, self.kmax
                    )
                    self._lists[(j, j2)] = StoredTopList.store(
                        self.device, top_ids, top_scores
                    )
            right_keys = times[j + 1 :]
            right_rows = np.arange(j + 1, r, dtype=np.float64).reshape(-1, 1)
            subtree = BPlusTree(self.device, value_columns=1)
            subtree.bulk_load(np.asarray(right_keys), right_rows)
            self._subtrees[j] = subtree
        top_keys = times[:-1]
        top_rows = np.arange(r - 1, dtype=np.float64).reshape(-1, 1)
        self.top_tree.bulk_load(top_keys, top_rows)
        return self

    def _materialize_parallel(
        self,
        ids: np.ndarray,
        p_t: np.ndarray,
        nonneg: bool,
        executor: ParallelExecutor,
    ) -> list:
        """All per-``j`` top lists, fanned out over contiguous chunks.

        Chunks are balanced by each left endpoint's row count (``j``
        owns ``r - 1 - j`` lists) and mildly oversubscribed so one
        slow chunk cannot serialize the pool.  Results come back in
        submission order and flatten to one ``(top_ids, top_scores)``
        pair per ``j`` — byte-identical to the serial batcher's
        output, committed by the caller in ``j`` order.
        """
        r = p_t.shape[0]
        weights = np.arange(r - 1, 0, -1, dtype=np.float64)
        chunks = weighted_chunk_ranges(
            weights, executor.workers * OVERSUBSCRIPTION
        )
        state = (ids, p_t, self.kmax, nonneg)
        with executor.session(state) as session:
            parts = session.map(query1_toplists_chunk, chunks)
        materialized: list = []
        for chunk_lists in parts:
            materialized.extend(chunk_lists)
        return materialized

    # ------------------------------------------------------------------
    def query(self, t1: float, t2: float, k: int) -> TopKResult:
        """Top-k of the snapped interval ``[B(t1), B(t2)]``."""
        if k > self.kmax:
            raise InvalidQueryError(f"k={k} exceeds kmax={self.kmax}")
        pair = self._snap_pair(t1, t2)
        if pair is None:
            # Degenerate snap (B(t1) == B(t2)): the snapped interval is
            # empty and every approximate score is 0, which is within
            # eps*M of the truth.  Nothing meaningful to return.
            return TopKResult()
        j1, j2 = pair
        stored = self._lists[(j1, j2)]
        ids, scores = stored.read_top(self.device, k)
        return top_k_from_arrays(ids, scores, k)

    def _snap_pair(self, t1: float, t2: float) -> Optional[Tuple[int, int]]:
        """(j1, j2) with ``b_{j1} = B(t1)``, ``b_{j2} = B(t2)`` via the trees."""
        hit = self.top_tree.successor(t1)
        if hit is None:
            return None
        j1 = int(hit[1][0])
        if t2 <= self.breakpoints.times[j1]:
            # B(t2) == B(t1): the snapped interval is empty.
            return None
        subtree = self._subtrees[j1]
        hit2 = subtree.successor(t2)
        if hit2 is None:
            return None
        j2 = int(hit2[1][0])
        if j2 <= j1:
            return None
        return j1, j2

    def query_many(
        self, t1s: np.ndarray, t2s: np.ndarray, ks: np.ndarray
    ) -> List[TopKResult]:
        """Batched :meth:`query`: snap and read lists for a workload.

        Both snap walks (the top tree over left endpoints, then the
        matched subtree over right endpoints) are resolved with one
        vectorized pass each (:func:`repro.btree.batch.
        modeled_successor_many` arithmetic, inlined for the per-query
        subtrees); every distinct snapped pair's stored list is
        fetched once and answers are shared across queries that
        snapped to the same ``(pair, k)``.  Per query, the IO charge
        is exactly the scalar path's: both descents (the second only
        when the scalar path takes it) plus ``ceil(min(k, count)/B)``
        list-block reads.  With a buffer pool attached the batch keeps
        its deduped answer construction and *replays* the scalar
        loop's block access stream per query (see
        :meth:`_query_many_replay`); insert-touched trees fall back to
        the scalar loop.
        """
        if ks.size and int(ks.max()) > self.kmax:
            raise InvalidQueryError(
                f"k={int(ks.max())} exceeds kmax={self.kmax}"
            )
        if self.device.has_cache:
            return self._query_many_replay(t1s, t2s, ks)
        modelable = supports_model(self.top_tree) and all(
            supports_model(t) for t in self._subtrees.values()
        )
        if not modelable:
            return [
                self.query(float(t1), float(t2), int(k))
                for t1, t2, k in zip(t1s, t2s, ks)
            ]
        times = self.breakpoints.times
        r = times.size
        cap = self.top_tree.leaf_capacity
        j1s, exists1, reads1 = modeled_successor_many(
            times[:-1], t1s, cap, self.top_tree.height
        )
        total_reads = int(reads1.sum())
        # Scalar path stops before the subtree walk when B(t2) == B(t1).
        j1_clamped = np.minimum(j1s, r - 2)
        proceed = exists1 & (t2s > times[j1_clamped])
        # Subtree successor for t2, inlined: subtree j1 holds keys
        # times[j1+1:], so the global lower bound doubles as the local
        # one (t2 > times[j1] pins it past j1).
        s2 = np.searchsorted(times, t2s, side="left")
        exists2 = s2 < r
        tie2 = exists2 & (times[np.minimum(s2, r - 1)] == t2s)
        local = s2 - (j1s + 1)
        landed = np.maximum((local + tie2 - 1) // cap, 0)
        hops = np.where(exists2, local // cap - landed, 0)
        heights = self._subtree_heights()
        reads2 = heights[j1_clamped] + hops
        total_reads += int(reads2[proceed].sum())
        valid = proceed & exists2
        results: List[TopKResult] = [TopKResult()] * int(t1s.size)
        valid_idx = np.flatnonzero(valid)
        if valid_idx.size == 0:
            self.device.stats.record_reads(total_reads)
            return results
        list_cap = StoredTopList.capacity(self.device)
        answers: Dict[Tuple[int, int, int], TopKResult] = {}
        lists: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        for idx in valid_idx:
            pair = (int(j1s[idx]), int(s2[idx]))
            k = int(ks[idx])
            stored = self._lists[pair]
            total_reads += max(1, -(-min(k, stored.count) // list_cap))
            key = pair + (k,)
            answer = answers.get(key)
            if answer is None:
                payload = lists.get(pair)
                if payload is None:
                    payload = self._peek_list(stored)
                    lists[pair] = payload
                ids, scores = payload
                answer = top_k_from_arrays(ids[:k], scores[:k], k)
                answers[key] = answer
            results[int(idx)] = answer
        self.device.stats.record_reads(total_reads)
        return results

    def _query_many_replay(
        self, t1s: np.ndarray, t2s: np.ndarray, ks: np.ndarray
    ) -> List[TopKResult]:
        """Cache-aware batch: shared answers, scalar block stream.

        Answers are still built once per distinct ``(pair, k)`` from
        payloads peeked off the device, but the IO and buffer-pool
        effects of every query are *replayed* in scalar order — both
        successor walks (simulated on the real nodes, so insert-grown
        trees are handled too) and the list-block reads — through
        :meth:`~repro.storage.device.BlockDevice.replay_reads`.  Hits,
        read charges, and the final LRU contents are identical to
        looping :meth:`query`.
        """
        times = self.breakpoints.times
        list_cap = StoredTopList.capacity(self.device)
        results: List[TopKResult] = []
        answers: Dict[Tuple[int, int, int], TopKResult] = {}
        lists: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        for t1, t2, k in zip(t1s, t2s, ks):
            t1, t2, k = float(t1), float(t2), int(k)
            blocks, hit = self.top_tree.successor_with_blocks(t1)
            self.device.replay_reads(blocks)
            if hit is None:
                results.append(TopKResult())
                continue
            j1 = int(hit[1][0])
            if t2 <= times[j1]:
                results.append(TopKResult())
                continue
            blocks2, hit2 = self._subtrees[j1].successor_with_blocks(t2)
            self.device.replay_reads(blocks2)
            if hit2 is None:
                results.append(TopKResult())
                continue
            j2 = int(hit2[1][0])
            if j2 <= j1:
                results.append(TopKResult())
                continue
            pair = (j1, j2)
            stored = self._lists[pair]
            needed = max(1, -(-min(k, stored.count) // list_cap))
            self.device.replay_reads(stored.block_ids[:needed])
            key = (j1, j2, k)
            answer = answers.get(key)
            if answer is None:
                payload = lists.get(pair)
                if payload is None:
                    payload = self._peek_list(stored)
                    lists[pair] = payload
                ids, scores = payload
                answer = top_k_from_arrays(ids[:k], scores[:k], k)
                answers[key] = answer
            results.append(answer)
        return results

    def _subtree_heights(self) -> np.ndarray:
        """Per-left-endpoint subtree heights (cached for the batch)."""
        cached = getattr(self, "_heights_cache", None)
        if cached is None or cached.size != len(self._subtrees):
            cached = np.asarray(
                [
                    self._subtrees[j].height
                    for j in range(len(self._subtrees))
                ],
                dtype=np.int64,
            )
            self._heights_cache = cached
        return cached

    def _peek_list(
        self, stored: StoredTopList
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize a stored list without IO charges (modeled cost)."""
        return StoredTopList.decode_pieces(
            [self.device.peek(b) for b in stored.block_ids]
        )

    def approximate_score(self, object_id: int, t1: float, t2: float) -> float:
        """``sigma~_i``: the stored score if the object made the list, else 0.

        Only used by diagnostics; the query path returns scores inline.
        """
        pair = self._snap_pair(t1, t2)
        if pair is None:
            return 0.0
        ids, scores = self._lists[pair].read_top(self.device, self.kmax)
        match = np.flatnonzero(ids == object_id)
        if match.size == 0:
            return 0.0
        return float(scores[match[0]])
