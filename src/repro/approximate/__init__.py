"""Approximate aggregate top-k methods (paper Section 3)."""

from repro.approximate.breakpoints import (
    Breakpoints,
    build_breakpoints1,
    build_breakpoints2,
    build_breakpoints2_baseline,
    epsilon_for_budget,
)
from repro.approximate.dyadic import DyadicIndex
from repro.approximate.methods import (
    APPROXIMATE_METHODS,
    DEFAULT_KMAX,
    Appx1,
    Appx1B,
    Appx2,
    Appx2B,
    Appx2Plus,
)
from repro.approximate.query1 import NestedPairIndex

__all__ = [
    "Breakpoints",
    "build_breakpoints1",
    "build_breakpoints2",
    "build_breakpoints2_baseline",
    "epsilon_for_budget",
    "NestedPairIndex",
    "DyadicIndex",
    "Appx1",
    "Appx1B",
    "Appx2",
    "Appx2B",
    "Appx2Plus",
    "APPROXIMATE_METHODS",
    "DEFAULT_KMAX",
]
