"""A shared parallel executor for the index-build fan-out.

The heavy build pipelines — QUERY1's per-left-endpoint top-list
batches, QUERY2's per-node batches, the BREAKPOINTS2 danger-check and
crossing kernel pre-passes — are all families of *independent* chunk
tasks over shared read-only arrays.  This module gives them one
executor abstraction with three interchangeable backends:

* ``serial`` — run chunks inline (the default; zero overhead, and the
  reference behavior every other backend must reproduce byte for
  byte),
* ``thread`` — a ``ThreadPoolExecutor``; NumPy kernels release the GIL
  only partially, so this backend helps mainly when chunk work is
  dominated by large vectorized selections and sorts,
* ``process`` — a ``ProcessPoolExecutor``, forked where the platform
  allows it so the shared read-only arrays are inherited
  copy-on-write instead of pickled per task (spawn platforms fall
  back to pickling the session state once per worker).

Determinism contract
--------------------
:meth:`Session.map` always returns results in task-submission order,
and every task is a pure function of ``(session state, task args)``;
workers never touch a :class:`~repro.storage.device.BlockDevice` or
:class:`~repro.storage.stats.IOStats`.  The coordinator performs all
device writes and IO accounting itself, in task order, so fanned-out
builds produce byte-identical devices, stats, and artifacts on every
backend — asserted by ``tests/test_build_equivalence.py``.

Backend and worker count resolve from the ``REPRO_EXECUTOR`` and
``REPRO_WORKERS`` environment variables when not given explicitly, so
CI can force the process pool across a whole test run.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ReproError

#: Recognized backend names, in documentation order.
BACKENDS = ("serial", "thread", "process")

#: Environment variables consulted by :func:`get_executor`.
BACKEND_ENV = "REPRO_EXECUTOR"
WORKERS_ENV = "REPRO_WORKERS"

#: Chunks submitted per worker by the fan-out builders: mild
#: oversubscription so one slow chunk cannot serialize the pool.
OVERSUBSCRIPTION = 4

_WORKER_STATE: Any = None


def _set_worker_state(state: Any) -> None:
    """Install a session's shared state (the pool initializer)."""
    global _WORKER_STATE
    _WORKER_STATE = state


def worker_state() -> Any:
    """The state installed for the current session's tasks.

    Inside a ``process`` session this is the per-worker copy installed
    by the pool initializer (forked copy-on-write where available);
    inside ``serial``/``thread`` sessions it is the coordinator's own
    object.
    """
    return _WORKER_STATE


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def resolve_backend(backend: Optional[str] = None) -> str:
    """The effective backend name: explicit arg, else env, else serial."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "serial"
    backend = str(backend).lower()
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown executor backend {backend!r}; choose from {BACKENDS}"
        )
    return backend


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit arg, else env, else cores."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ReproError(
                    f"{WORKERS_ENV}={env!r} is not an integer worker count"
                ) from None
        else:
            workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ReproError("executor workers must be at least 1")
    return workers


# ----------------------------------------------------------------------
# chunk scheduling
# ----------------------------------------------------------------------
def chunk_ranges(
    n: int, parts: int, min_size: int = 1
) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``parts`` contiguous chunks.

    Chunk sizes differ by at most one and every chunk holds at least
    ``min_size`` items (fewer chunks are produced when ``n`` is
    small).  Contiguity keeps each worker streaming over one slice of
    the shared arrays — the shared-memory-friendly schedule.
    """
    if n <= 0:
        return []
    parts = max(1, min(int(parts), n // max(1, int(min_size)) or 1))
    base, extra = divmod(n, parts)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for index in range(parts):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def weighted_chunk_ranges(
    weights: Sequence[float], parts: int
) -> List[Tuple[int, int]]:
    """Contiguous chunks of near-equal total *weight*.

    The QUERY1 fan-out uses this with weight ``r - 1 - j`` per left
    endpoint ``j``: early endpoints own quadratically more list rows
    than late ones, so equal-count chunks would put almost all the
    work in the first chunk.  Cuts are placed at the weight quantiles
    (deterministically), preserving order.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = int(weights.size)
    if n == 0:
        return []
    parts = max(1, min(int(parts), n))
    cumulative = np.cumsum(weights)
    total = float(cumulative[-1])
    if not np.isfinite(total) or total <= 0.0:
        return chunk_ranges(n, parts)
    targets = total * np.arange(1, parts + 1) / parts
    cuts = np.searchsorted(cumulative, targets, side="left") + 1
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for cut in cuts:
        hi = min(max(int(cut), lo), n)
        if hi > lo:
            ranges.append((lo, hi))
            lo = hi
    if lo < n:
        ranges.append((lo, n))
    return ranges


def process_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context process pools should use.

    Prefer fork only where it is actually safe (Linux): macOS lists
    fork as available but its default moved to spawn because forking
    after threads exist can crash the Objective-C runtime / BLAS.
    Elsewhere, take the platform default (worker state then pickles
    once per worker instead of arriving copy-on-write).
    """
    methods = multiprocessing.get_all_start_methods()
    if sys.platform.startswith("linux") and "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class Session:
    """One open fan-out scope: shared state plus (for pool backends) a
    live worker pool.

    Builders open one session per build and call :meth:`map` as many
    times as they need; the pool (and, for process backends, the
    per-worker state installation) is paid once per session, not per
    call.  Always used as a context manager.
    """

    def __init__(self, executor: "ParallelExecutor", state: Any) -> None:
        self._executor = executor
        self._state = state
        self._pool = None
        self._saved_state: Any = None

    def __enter__(self) -> "Session":
        backend = self._executor.backend
        if backend == "process":
            self._pool = ProcessPoolExecutor(
                max_workers=self._executor.workers,
                mp_context=process_context(),
                initializer=_set_worker_state,
                initargs=(self._state,),
            )
        else:
            self._saved_state = worker_state()
            _set_worker_state(self._state)
            if backend == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self._executor.workers
                )
        return self

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list:
        """Run ``fn`` over ``tasks``; results in task-submission order.

        A task exception propagates to the coordinator (the pool is
        torn down by the session exit), so a failed fan-out never
        commits partial results.
        """
        tasks = list(tasks)
        if self._pool is None:
            return [fn(task) for task in tasks]
        return list(self._pool.map(fn, tasks))

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._executor.backend != "process":
            _set_worker_state(self._saved_state)


class ParallelExecutor:
    """A backend + worker-count pair; sessions do the actual work.

    Instances are cheap value objects: no pool lives outside an open
    :meth:`session`, so executors can be stored on long-lived method
    objects (CLI, benchmarks) without leaking OS resources.
    """

    def __init__(self, backend: str, workers: int) -> None:
        self.backend = resolve_backend(backend)
        self.workers = 1 if self.backend == "serial" else resolve_workers(workers)

    @property
    def is_serial(self) -> bool:
        """True when chunk tasks run inline on the coordinator."""
        return self.backend == "serial"

    def session(self, state: Any = None) -> Session:
        """Open a fan-out scope sharing ``state`` with all workers."""
        return Session(self, state)

    def __repr__(self) -> str:
        return f"ParallelExecutor(backend={self.backend!r}, workers={self.workers})"


class WorkerPool:
    """A long-lived, submit-oriented process pool with installed state.

    :class:`Session` fans one build's chunks out and tears the pool
    down on exit; the serving tier instead needs workers that
    *outlive* many independent dispatches (a mounted snapshot per
    worker, re-used across micro-batches).  ``WorkerPool`` is that
    shape: always process-backed, created once, fed via
    :meth:`submit`, shut down explicitly.

    ``state`` is installed in every worker through the same
    ``_set_worker_state`` initializer protocol Session uses, so tasks
    read it back with :func:`worker_state`.  Workers spawn on demand
    (the stdlib pool forks/spawns up to ``workers`` processes as
    submissions arrive), which keeps an idle pool cheap.
    """

    def __init__(self, workers: int, state: Any = None) -> None:
        self.workers = resolve_workers(workers)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=process_context(),
            initializer=_set_worker_state,
            initargs=(state,),
        )

    def submit(self, fn: Callable[..., Any], *args: Any):
        """Submit one task; returns its ``concurrent.futures.Future``."""
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)


def get_executor(
    backend: Optional[str] = None, workers: Optional[int] = None
) -> ParallelExecutor:
    """The environment-resolved executor (defaults: serial, all cores)."""
    return ParallelExecutor(resolve_backend(backend), resolve_workers(workers))
