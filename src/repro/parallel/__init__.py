"""Shared parallel execution for the index-build fan-out.

See :mod:`repro.parallel.executor` for the backend/ determinism
contract and :mod:`repro.parallel.workers` for the chunk tasks the
build pipelines fan out.
"""

from repro.parallel.executor import (
    BACKEND_ENV,
    BACKENDS,
    OVERSUBSCRIPTION,
    WORKERS_ENV,
    ParallelExecutor,
    Session,
    WorkerPool,
    chunk_ranges,
    get_executor,
    process_context,
    resolve_backend,
    resolve_workers,
    weighted_chunk_ranges,
    worker_state,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "OVERSUBSCRIPTION",
    "WORKERS_ENV",
    "ParallelExecutor",
    "Session",
    "WorkerPool",
    "chunk_ranges",
    "get_executor",
    "process_context",
    "resolve_backend",
    "resolve_workers",
    "weighted_chunk_ranges",
    "worker_state",
]
