"""Picklable chunk tasks run by the shared executor's workers.

Every function here is a pure function of ``(session state, task
args)`` — workers never touch a block device or IO counters.  Payloads
travel back to the coordinator, which commits them in task order (the
determinism contract of :mod:`repro.parallel.executor`), so the stored
artifacts are byte-identical on every backend.

Session states
--------------
QUERY1 (:func:`query1_toplists_chunk`):
    ``(ids, p_t, kmax, nonneg)`` — object ids, the transposed
    cumulative matrix ``P_T[j, i] = C_i(b_j)``, the list length, and
    the nonnegative-scores flag.
QUERY2 (:func:`dyadic_toplists_chunk`):
    ``(ids, p_t, los, his, kmax, nonneg)`` — as above plus the node
    ranges in recursion preorder.
BREAKPOINTS2 (:func:`bp2_cumulative_chunk` /
:func:`bp2_inverse_chunk` / :func:`bp2_danger_chunk`):
    ``(view, seg_cum, seg_obj)`` — a :class:`~repro.core.plfstore.
    CSRView` of the store plus the time-ordered segment stream's
    prefix masses and object rows.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.approximate.toplists import TopListBatcher
from repro.parallel.executor import worker_state


def query1_toplists_chunk(
    bounds: Tuple[int, int],
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Top lists for QUERY1 left endpoints ``j`` in ``[lo, hi)``.

    Returns one ``(top_ids, top_scores)`` pair per ``j`` — the exact
    arrays the serial build's per-``j`` :class:`TopListBatcher` pass
    produces (one batcher per chunk, identical per-call arithmetic).
    """
    lo, hi = bounds
    ids, p_t, kmax, nonneg = worker_state()
    r, m = p_t.shape
    batcher = TopListBatcher(ids, r - 1 - lo, kmax, nonneg)
    neg_buffer = np.empty((r - 1 - lo, m), dtype=np.float64)
    lists: List[Tuple[np.ndarray, np.ndarray]] = []
    for j in range(lo, hi):
        neg = neg_buffer[: r - 1 - j]
        np.subtract(p_t[j], p_t[j + 1 :], out=neg)
        top_ids, top_scores, _ = batcher.top_lists(neg)
        lists.append((top_ids, top_scores))
    return lists


def dyadic_toplists_chunk(
    bounds: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray]:
    """Top lists for the QUERY2 preorder node columns ``[lo, hi)``.

    Row results of :meth:`TopListBatcher.top_lists` are per-row
    independent, so a chunked pass returns exactly the rows
    ``[lo, hi)`` of the serial all-nodes pass.
    """
    lo, hi = bounds
    ids, p_t, los, his, kmax, nonneg = worker_state()
    neg = np.ascontiguousarray(p_t[los[lo:hi]] - p_t[his[lo:hi]])
    batcher = TopListBatcher(ids, hi - lo, kmax, nonneg)
    top_ids, top_scores, _ = batcher.top_lists(neg)
    return top_ids, top_scores


def exact3_topk_chunk(bounds: Tuple[int, int]) -> list:
    """Batched EXACT3 answers for the query rows ``[lo, hi)``.

    Session state: ``(view, object_ids, aggregate, t1s, t2s, ks)`` —
    the picklable CSR view plus the whole (non-boundary) workload.
    The chunk task is a pure elementwise computation, so every
    backend returns identical answer bits for its rows.
    """
    from repro.exact.exact3 import exact3_batch_answers

    lo, hi = bounds
    view, object_ids, aggregate, t1s, t2s, ks = worker_state()
    return exact3_batch_answers(
        view, object_ids, aggregate, t1s[lo:hi], t2s[lo:hi], ks[lo:hi]
    )


def node_build_chunk(bounds: Tuple[int, int]) -> list:
    """Built ranking methods for the shard databases ``[lo, hi)``.

    Session state: ``(databases, factory)`` — the per-node shard
    databases (forked copy-on-write on Linux) and a picklable method
    factory (a method class, or a ``functools.partial`` binding its
    parameters).  Index construction is deterministic per shard and
    writes only to the method's own private device, so every backend
    produces byte-identical structures; the coordinator re-binds each
    returned method to its own shard database object.

    Nested build fan-out is forced serial inside pool workers (a
    worker opening its own pool under ``REPRO_EXECUTOR=process``
    would stack pools without adding cores); PR 3's backend
    equivalence keeps the built artifacts byte-identical either way.
    """
    from repro.parallel.executor import ParallelExecutor

    lo, hi = bounds
    databases, factory = worker_state()
    methods = []
    for index in range(lo, hi):
        method = factory()
        if hasattr(method, "executor"):
            method.executor = ParallelExecutor("serial", 1)
        methods.append(method.build(databases[index]))
    return methods


def bp2_cumulative_chunk(task: Tuple[float, int, int]) -> np.ndarray:
    """``C_i(t)`` for the object range ``[lo, hi)`` (CSR view kernel)."""
    t, lo, hi = task
    view = worker_state()[0]
    return view.cumulative_at(t, lo, hi)


def bp2_inverse_chunk(task: Tuple[np.ndarray, int, int]) -> np.ndarray:
    """Crossing times for the object range ``[lo, hi)``.

    ``targets`` is already the caller's slice for the range, so only
    ``(hi - lo)`` targets travel to the worker.
    """
    targets, lo, hi = task
    view = worker_state()[0]
    return view.inverse_cumulative_many(targets, lo, hi)


def bp2_danger_chunk(
    task: Tuple[int, int, np.ndarray, float],
) -> np.ndarray:
    """Flagged positions of the danger pre-pass over segments
    ``[lo, hi)``: where the stream's prefix mass minus the object's
    snapshotted base reaches ``limit`` (= ``threshold - slack``)."""
    lo, hi, snapshot, limit = task
    _, seg_cum, seg_obj = worker_state()
    window = slice(lo, hi)
    danger = seg_cum[window] - snapshot[seg_obj[window]] >= limit
    return lo + np.flatnonzero(danger)


# ----------------------------------------------------------------------
# serving-pool tasks (long-lived WorkerPool workers)
# ----------------------------------------------------------------------
#: Per-process mount cache for the serving pool, keyed by pool root:
#: ``root -> (snapshot_path, epoch, backend)``.  A worker re-uses its
#: mounted backend across dispatches and re-mounts only when a
#: dispatch carries a different snapshot path / epoch token (the
#: coordinator appended and re-synced the pool).
_SERVING_MOUNTS: dict = {}


def _serving_backend(root: str, path: str, epoch: int, spec: dict):
    """The mounted serving backend for ``(path, epoch)``; re-mounts on
    a stale entry.  Returns ``(backend, info)`` where ``info`` counts
    the mount work this call actually performed (zero when cached)."""
    info = {"remounts": 0, "warmups": 0}
    entry = _SERVING_MOUNTS.get(root)
    if entry is not None and entry[0] == path and entry[1] == epoch:
        return entry[2], info
    from repro.storage.snapshot import open_served

    backend, warmups = open_served(path, spec)
    if entry is not None:
        info["remounts"] = 1
    info["warmups"] = warmups
    _SERVING_MOUNTS[root] = (path, epoch, backend)
    return backend, info


def serving_warm(_task=None) -> dict:
    """Pre-mount this worker's serving backend from the installed
    worker state ``(root, path, epoch, spec)`` — the pool-start warm
    protocol, so the first real flush never pays a cold mount."""
    root, path, epoch, spec = worker_state()
    _, info = _serving_backend(root, path, epoch, spec)
    return info


def serving_dispatch(task) -> tuple:
    """Serve one micro-batch on this worker's mounted backend.

    ``task = (root, path, epoch, spec, t1s, t2s, ks)`` — the epoch
    token and snapshot path travel with every dispatch, so a worker
    holding a stale mount detects it here and re-mounts before
    serving.  Returns ``(results, info)``.
    """
    root, path, epoch, spec, t1s, t2s, ks = task
    backend, info = _serving_backend(root, path, epoch, spec)
    return backend.serve_many(t1s, t2s, ks), info
