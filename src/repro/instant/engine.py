"""Instant top-k queries: ``top-k(t)`` (Li, Yi, Le — the predecessor).

The paper positions the aggregate top-k query against the *instant*
top-k query of [15], where objects are ranked by their score **at a
single time instance** ``t``.  The aggregate query with ``t1 == t2``
degenerates to zero integrals, so instant ranking needs a value-based
engine of its own; having one in the library also lets users compare
the two semantics (the paper's Figure 2 example shows how they
disagree).

Two engines are provided:

* :class:`InstantBruteForce` — evaluate every object at ``t``.
* :class:`InstantIntervalTree` — EXACT3's interval tree already stores
  one segment per object per elementary interval, so a single stabbing
  query at ``t`` yields all object values in ``O(log N + m/B)`` IOs.
  This mirrors how the aggregate machinery subsumes the instant
  problem.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core import buildcount
from repro.core.database import TemporalDatabase
from repro.core.errors import IndexStateError, InvalidQueryError
from repro.core.plfstore import _CHUNK_ELEMENTS, isin_sorted
from repro.core.results import TopKResult, top_k_from_arrays
from repro.storage.device import BlockDevice
from repro.storage.stats import IOStats
from repro.intervaltree.tree import ExternalIntervalTree

#: Row layout behind lo/hi: obj_id, v_lo, v_hi.
_VALUE_COLUMNS = 3


def _validate_instant_batch(ts: np.ndarray, ks: np.ndarray) -> None:
    if ts.size != ks.size:
        raise InvalidQueryError("instant workload arrays must align")
    if ks.size and int(ks.min()) < 1:
        raise InvalidQueryError("k must be >= 1")


class InstantBruteForce:
    """Reference engine: evaluate ``g_i(t)`` for every object."""

    name = "INSTANT-BRUTE"

    def __init__(self) -> None:
        self.database: TemporalDatabase | None = None

    def build(self, database: TemporalDatabase) -> "InstantBruteForce":
        self.database = database
        return self

    def query(self, t: float, k: int) -> TopKResult:
        """``top-k(t)``: objects with the k highest scores at time t.

        All ``m`` evaluations run through the columnar kernel's
        :meth:`~repro.core.plfstore.PLFStore.values_at`.
        """
        if self.database is None:
            raise IndexStateError("engine not built")
        if k < 1:
            raise InvalidQueryError("k must be >= 1")
        if self.database.wants_store:
            store = self.database.store()
            return top_k_from_arrays(store.object_ids, store.values_at(t), k)
        # Store invalidated by an append (streaming tick): the scalar
        # loop beats an O(N) snapshot rebuild per query.
        self.database.note_scalar_fallback()
        ids = self.database.object_ids()
        values = np.asarray(
            [obj.function.value(t) for obj in self.database]
        )
        return top_k_from_arrays(ids, values, k)

    def query_many(self, ts: np.ndarray, ks: np.ndarray) -> List[TopKResult]:
        """Batched ``top-k(t)``: one ``values_at_many`` kernel pass.

        Answers are identical to the per-query loop (the batched
        kernel replicates ``values_at`` bit for bit); the scalar loop
        itself answers while the store is append-stale.
        """
        if self.database is None:
            raise IndexStateError("engine not built")
        ts = np.asarray(ts, dtype=np.float64)
        ks = np.asarray(ks, dtype=np.int64)
        _validate_instant_batch(ts, ks)
        if not self.database.wants_store:
            return [self.query(float(t), int(k)) for t, k in zip(ts, ks)]
        store = self.database.store()
        values = store.values_at_many(ts)
        return [
            top_k_from_arrays(store.object_ids, values[row], int(ks[row]))
            for row in range(ts.size)
        ]


class InstantIntervalTree:
    """Interval-tree instant top-k: one stabbing query per ``top-k(t)``."""

    name = "INSTANT-ITREE"

    def __init__(self, block_bytes: int = 4096) -> None:
        self.device = BlockDevice(block_bytes=block_bytes, name="instant")
        self.tree = ExternalIntervalTree(self.device, value_columns=_VALUE_COLUMNS)
        self._object_ids = np.empty(0, dtype=np.int64)
        self._store = None
        self._built = False

    def build(self, database: TemporalDatabase) -> "InstantIntervalTree":
        buildcount.record("index")
        store = database.store()
        self._object_ids = store.object_ids
        # The build-time snapshot backs the batched query pipeline (the
        # tree is static, so it can never drift from this snapshot).
        self._store = store
        self.tree.build(*store.segment_table())
        self._built = True
        return self

    def query(self, t: float, k: int) -> TopKResult:
        """``top-k(t)`` via one stab: interpolate each returned segment."""
        if not self._built:
            raise IndexStateError("engine not built")
        if k < 1:
            raise InvalidQueryError("k must be >= 1")
        rows = self.tree.stab(t)
        if rows.shape[0] == 0:
            return TopKResult()
        lo, hi = rows[:, 0], rows[:, 1]
        obj = rows[:, 2].astype(np.int64)
        v_lo, v_hi = rows[:, 3], rows[:, 4]
        width = hi - lo
        frac = np.where(width > 0, (t - lo) / np.where(width > 0, width, 1.0), 0.0)
        values = v_lo + frac * (v_hi - v_lo)
        # Shared-endpoint duplicates agree on the value; keep the first.
        first = np.unique(obj, return_index=True)[1]
        return top_k_from_arrays(obj[first], values[first], k)

    def query_many(self, ts: np.ndarray, ks: np.ndarray) -> List[TopKResult]:
        """Batched ``top-k(t)`` with the stab arithmetic vectorized.

        Non-knot query times locate each object's containing segment
        on the build-time store snapshot and interpolate with exactly
        the scalar stab's formula (bit-identical values), charging the
        modeled stab walk per query; knot-coincident times — where
        the stab returns two agreeing segment entries — go through
        the real scalar path, as does the whole batch when the
        snapshot or cost model is unavailable (old pickles).  With an
        attached buffer pool the modeled block sequences are replayed
        through the LRU in query order, so hits, charges, and final
        pool contents match the scalar loop's.
        """
        if not self._built:
            raise IndexStateError("engine not built")
        ts = np.asarray(ts, dtype=np.float64)
        ks = np.asarray(ks, dtype=np.int64)
        _validate_instant_batch(ts, ks)
        store = getattr(self, "_store", None)
        if store is None or self.tree.has_overflow:
            return [self.query(float(t), int(k)) for t, k in zip(ts, ks)]
        boundary = isin_sorted(store.knot_time_set(), ts)
        results: List[TopKResult] = [None] * int(ts.size)
        if self.device.has_cache:
            # LRU replay (see Exact3._query_many): the scalar loop's
            # per-query stab block sequence, in order.
            for idx in range(int(ts.size)):
                if boundary[idx]:
                    results[idx] = self.query(float(ts[idx]), int(ks[idx]))
                else:
                    self.device.replay_reads(
                        self.tree.modeled_stab_blocks(ts[idx])
                    )
        else:
            for idx in np.flatnonzero(boundary):
                results[idx] = self.query(float(ts[idx]), int(ks[idx]))
        regular = np.flatnonzero(~boundary)
        if regular.size == 0:
            return results
        if not self.device.has_cache:
            self.device.stats.record_reads(
                int(self.tree.modeled_stab_reads_many(ts[regular]).sum())
            )
        from repro.approximate.toplists import top_k_rows

        view = store.csr_view()
        m = store.num_objects
        rts = ts[regular]
        k_eff = np.empty(rts.size, dtype=np.int64)
        value_chunks: List[np.ndarray] = []
        step = max(1, _CHUNK_ELEMENTS // max(m, 1))
        for lo_row in range(0, rts.size, step):
            col = rts[lo_row : lo_row + step, None]
            tc = np.clip(col, view.starts, view.ends)
            j = view.locate_grid(tc)
            lo = view.knot_times[j]
            hi = view.knot_times[j + 1]
            v_lo = view.knot_values[j]
            v_hi = view.knot_values[j + 1]
            width = hi - lo
            frac = np.where(
                width > 0, (col - lo) / np.where(width > 0, width, 1.0), 0.0
            )
            values = v_lo + frac * (v_hi - v_lo)
            # Objects the stab would miss (t outside their span) may
            # not appear in the answer: -inf marks them, and k is
            # clamped to the hit count so a pad is never selected.
            hit = (view.starts <= col) & (col <= view.ends)
            np.copyto(values, -np.inf, where=~hit)
            k_eff[lo_row : lo_row + step] = np.minimum(
                ks[regular[lo_row : lo_row + step]], hit.sum(axis=1)
            )
            value_chunks.append(values)
        matrix = value_chunks[0] if len(value_chunks) == 1 else np.vstack(value_chunks)
        answers = top_k_rows(self._object_ids, matrix, k_eff)
        for pos, idx in enumerate(regular):
            results[int(idx)] = answers[pos]
        return results

    @property
    def io_stats(self) -> IOStats:
        return self.device.stats

    @property
    def index_size_bytes(self) -> int:
        return self.device.size_bytes
