"""Instant top-k queries: ``top-k(t)`` (Li, Yi, Le — the predecessor).

The paper positions the aggregate top-k query against the *instant*
top-k query of [15], where objects are ranked by their score **at a
single time instance** ``t``.  The aggregate query with ``t1 == t2``
degenerates to zero integrals, so instant ranking needs a value-based
engine of its own; having one in the library also lets users compare
the two semantics (the paper's Figure 2 example shows how they
disagree).

Two engines are provided:

* :class:`InstantBruteForce` — evaluate every object at ``t``.
* :class:`InstantIntervalTree` — EXACT3's interval tree already stores
  one segment per object per elementary interval, so a single stabbing
  query at ``t`` yields all object values in ``O(log N + m/B)`` IOs.
  This mirrors how the aggregate machinery subsumes the instant
  problem.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import IndexStateError, InvalidQueryError
from repro.core.results import TopKResult, top_k_from_arrays
from repro.storage.device import BlockDevice
from repro.storage.stats import IOStats
from repro.intervaltree.tree import ExternalIntervalTree

#: Row layout behind lo/hi: obj_id, v_lo, v_hi.
_VALUE_COLUMNS = 3


class InstantBruteForce:
    """Reference engine: evaluate ``g_i(t)`` for every object."""

    name = "INSTANT-BRUTE"

    def __init__(self) -> None:
        self.database: TemporalDatabase | None = None

    def build(self, database: TemporalDatabase) -> "InstantBruteForce":
        self.database = database
        return self

    def query(self, t: float, k: int) -> TopKResult:
        """``top-k(t)``: objects with the k highest scores at time t.

        All ``m`` evaluations run through the columnar kernel's
        :meth:`~repro.core.plfstore.PLFStore.values_at`.
        """
        if self.database is None:
            raise IndexStateError("engine not built")
        if k < 1:
            raise InvalidQueryError("k must be >= 1")
        if self.database.wants_store:
            store = self.database.store()
            return top_k_from_arrays(store.object_ids, store.values_at(t), k)
        # Store invalidated by an append (streaming tick): the scalar
        # loop beats an O(N) snapshot rebuild per query.
        self.database.note_scalar_fallback()
        ids = self.database.object_ids()
        values = np.asarray(
            [obj.function.value(t) for obj in self.database]
        )
        return top_k_from_arrays(ids, values, k)


class InstantIntervalTree:
    """Interval-tree instant top-k: one stabbing query per ``top-k(t)``."""

    name = "INSTANT-ITREE"

    def __init__(self, block_bytes: int = 4096) -> None:
        self.device = BlockDevice(block_bytes=block_bytes, name="instant")
        self.tree = ExternalIntervalTree(self.device, value_columns=_VALUE_COLUMNS)
        self._object_ids = np.empty(0, dtype=np.int64)
        self._built = False

    def build(self, database: TemporalDatabase) -> "InstantIntervalTree":
        store = database.store()
        self._object_ids = store.object_ids
        self.tree.build(*store.segment_table())
        self._built = True
        return self

    def query(self, t: float, k: int) -> TopKResult:
        """``top-k(t)`` via one stab: interpolate each returned segment."""
        if not self._built:
            raise IndexStateError("engine not built")
        if k < 1:
            raise InvalidQueryError("k must be >= 1")
        rows = self.tree.stab(t)
        if rows.shape[0] == 0:
            return TopKResult()
        lo, hi = rows[:, 0], rows[:, 1]
        obj = rows[:, 2].astype(np.int64)
        v_lo, v_hi = rows[:, 3], rows[:, 4]
        width = hi - lo
        frac = np.where(width > 0, (t - lo) / np.where(width > 0, width, 1.0), 0.0)
        values = v_lo + frac * (v_hi - v_lo)
        # Shared-endpoint duplicates agree on the value; keep the first.
        first = np.unique(obj, return_index=True)[1]
        return top_k_from_arrays(obj[first], values[first], k)

    @property
    def io_stats(self) -> IOStats:
        return self.device.stats

    @property
    def index_size_bytes(self) -> int:
        return self.device.size_bytes
