"""Instant top-k queries ``top-k(t)`` (the predecessor operator)."""

from repro.instant.engine import InstantBruteForce, InstantIntervalTree

__all__ = ["InstantBruteForce", "InstantIntervalTree"]
