"""Holistic aggregates: exact quantiles of a score over an interval.

The paper supports aggregates expressible through sums and explicitly
leaves "ranking with holistic aggregations (e.g. median and quantiles)"
as an open problem (Sections 4 and 7).  This module supplies the
building block any attempt at that problem needs: the **exact
phi-quantile of a piecewise linear score over a query interval**,
where the score's value distribution is induced by Lebesgue measure on
time::

    quantile(phi) = inf { v : |{ t in [t1,t2] : g(t) <= v }| >= phi*(t2-t1) }

For piecewise linear ``g`` the measure function ``mu(v) = |{t : g(t)
<= v}|`` is itself piecewise linear in ``v`` with knots at the clipped
segments' endpoint values, so the quantile is computed exactly by one
sort and one linear solve — no sampling, no iteration.

``median`` is the 0.5-quantile.  :class:`QuantileRanker` ranks objects
by this aggregate (brute force per object, which is the honest state
of the art the paper leaves open).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import InvalidQueryError
from repro.core.plf import PiecewiseLinearFunction
from repro.core.results import TopKResult, top_k_from_arrays


def _clipped_pieces(
    plf: PiecewiseLinearFunction, t1: float, t2: float
) -> List[Tuple[float, float, float]]:
    """Segments of ``g`` restricted to ``[t1, t2]`` as (duration, vL, vR).

    Regions of ``[t1, t2]`` outside the object's span contribute value
    0 for their full duration (consistent with how the sum aggregate
    treats them).
    """
    pieces: List[Tuple[float, float, float]] = []
    lo = max(t1, plf.start)
    hi = min(t2, plf.end)
    outside = (t2 - t1) - max(0.0, hi - lo)
    if outside > 0:
        pieces.append((outside, 0.0, 0.0))
    if hi <= lo:
        return pieces
    times = plf.times
    j_start = max(int(np.searchsorted(times, lo, side="right")) - 1, 0)
    j_end = min(
        int(np.searchsorted(times, hi, side="left")), plf.num_segments
    )
    for j in range(j_start, j_end):
        seg = plf.segment(j)
        left = max(lo, seg.t0)
        right = min(hi, seg.t1)
        if right <= left:
            continue
        pieces.append((right - left, seg.value(left), seg.value(right)))
    return pieces


def measure_below(
    plf: PiecewiseLinearFunction, t1: float, t2: float, v: float
) -> float:
    """``mu(v)``: total time in ``[t1, t2]`` with ``g(t) <= v``."""
    total = 0.0
    for duration, v_left, v_right in _clipped_pieces(plf, t1, t2):
        v_min, v_max = min(v_left, v_right), max(v_left, v_right)
        if v >= v_max:
            total += duration
        elif v > v_min:
            total += duration * (v - v_min) / (v_max - v_min)
    return total


def _measure_strictly_below(
    plf: PiecewiseLinearFunction, t1: float, t2: float, v: float
) -> float:
    """``mu(v^-)``: total time with ``g(t) < v`` (the left limit).

    Differs from :func:`measure_below` exactly by the jumps flat
    pieces contribute at their own value.
    """
    total = 0.0
    for duration, v_left, v_right in _clipped_pieces(plf, t1, t2):
        v_min, v_max = min(v_left, v_right), max(v_left, v_right)
        if v > v_max:
            total += duration
        elif v > v_min:
            total += duration * (v - v_min) / (v_max - v_min)
    return total


def interval_quantile(
    plf: PiecewiseLinearFunction, t1: float, t2: float, phi: float
) -> float:
    """Exact phi-quantile of ``g`` over ``[t1, t2]`` (see module doc)."""
    if not 0.0 < phi <= 1.0:
        raise InvalidQueryError(f"phi must be in (0, 1], got {phi}")
    if t2 <= t1:
        raise InvalidQueryError("quantile needs a nonempty interval")
    pieces = _clipped_pieces(plf, t1, t2)
    target = phi * (t2 - t1)
    # mu(v) is piecewise linear in v with knots at the pieces' value
    # bounds — plus *jumps at knots* where flat pieces sit exactly at
    # that value.  Inside a bracket (previous_v, v) the measure runs
    # linearly from mu(previous_v) to the left limit mu(v^-); the jump
    # at v itself is handled by returning v exactly.
    knots = sorted({min(a, b) for _, a, b in pieces} | {max(a, b) for _, a, b in pieces})
    previous_v, previous_mu = knots[0], measure_below(plf, t1, t2, knots[0])
    if previous_mu >= target:
        return previous_v
    for v in knots[1:]:
        mu_left = _measure_strictly_below(plf, t1, t2, v)
        if mu_left >= target:
            # Target reached inside the open bracket: interpolate.
            if mu_left == previous_mu:
                return v
            frac = (target - previous_mu) / (mu_left - previous_mu)
            return previous_v + frac * (v - previous_v)
        mu = measure_below(plf, t1, t2, v)
        if mu >= target:
            # Target falls inside the jump at v: the quantile is v.
            return v
        previous_v, previous_mu = v, mu
    return knots[-1]


def interval_median(plf: PiecewiseLinearFunction, t1: float, t2: float) -> float:
    """The 0.5-quantile (median score over the interval)."""
    return interval_quantile(plf, t1, t2, 0.5)


@dataclass
class QuantileRanker:
    """Rank objects by the phi-quantile of their score over ``[t1, t2]``.

    Brute force over objects — indexing this holistic aggregate is the
    open problem the paper names; this ranker is the correct reference
    any future index must match, and is what the library ships today.
    """

    database: TemporalDatabase
    phi: float = 0.5

    def query(self, t1: float, t2: float, k: int) -> TopKResult:
        if k < 1:
            raise InvalidQueryError("k must be >= 1")
        ids = self.database.object_ids()
        scores = np.asarray(
            [
                interval_quantile(obj.function, t1, t2, self.phi)
                for obj in self.database
            ]
        )
        return top_k_from_arrays(ids, scores, k)
