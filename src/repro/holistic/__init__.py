"""Holistic aggregates (quantile/median) — the paper's open problem."""

from repro.holistic.quantile import (
    QuantileRanker,
    interval_median,
    interval_quantile,
    measure_below,
)

__all__ = [
    "QuantileRanker",
    "interval_quantile",
    "interval_median",
    "measure_below",
]
