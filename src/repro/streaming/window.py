"""Continuous top-k over a sliding window of streaming temporal data.

A natural production use of the paper's machinery: scores stream in as
appends (Section 4 updates) and an application wants the aggregate
top-k over the trailing window ``[now - W, now]`` kept current,
together with *change notifications* (who entered, who left).

:class:`SlidingWindowMonitor` maintains an EXACT2 forest (the cheapest
structure to update — one small B+-tree insert per tick) and
re-evaluates the window ranking on demand or on every tick, diffing
consecutive answers into :class:`RankingChange` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.database import TemporalDatabase
from repro.core.errors import InvalidQueryError
from repro.core.queries import TopKQuery
from repro.core.results import TopKResult
from repro.exact.exact2 import Exact2


@dataclass(frozen=True)
class RankingChange:
    """Diff between two consecutive window rankings."""

    time: float
    entered: tuple
    left: tuple
    result: TopKResult = field(compare=False)

    @property
    def changed(self) -> bool:
        return bool(self.entered or self.left)


class SlidingWindowMonitor:
    """Maintain ``top-k(now - W, now, sum)`` under streaming appends."""

    def __init__(
        self,
        database: TemporalDatabase,
        window: float,
        k: int,
    ) -> None:
        if window <= 0:
            raise InvalidQueryError("window length must be positive")
        if k < 1:
            raise InvalidQueryError("k must be >= 1")
        self.database = database
        self.window = window
        self.k = k
        self.index = Exact2().build(database)
        self.now = database.t_max
        self._last: Optional[TopKResult] = None

    # ------------------------------------------------------------------
    def tick(self, object_id: int, t_next: float, v_next: float) -> RankingChange:
        """Ingest one reading and return the ranking diff at ``t_next``.

        Readings must move time forward for the object being updated
        (the paper's append model); different objects may interleave.
        """
        self.database.append_segment(object_id, t_next, v_next)
        self.index.append(object_id, t_next, v_next)
        self.now = max(self.now, t_next)
        return self._evaluate()

    def current(self) -> TopKResult:
        """The current window's top-k (no ingestion)."""
        return self._query()

    # ------------------------------------------------------------------
    def _query(self) -> TopKResult:
        t1 = max(self.database.t_min, self.now - self.window)
        return self.index.query(TopKQuery(t1, self.now, self.k))

    def _evaluate(self) -> RankingChange:
        result = self._query()
        if self._last is None:
            change = RankingChange(
                time=self.now,
                entered=tuple(result.object_ids),
                left=(),
                result=result,
            )
        else:
            before = set(self._last.object_ids)
            after = set(result.object_ids)
            change = RankingChange(
                time=self.now,
                entered=tuple(sorted(after - before)),
                left=tuple(sorted(before - after)),
                result=result,
            )
        self._last = result
        return change


def replay(
    database: TemporalDatabase,
    ticks: List[tuple],
    window: float,
    k: int,
) -> List[RankingChange]:
    """Feed ``(object_id, t, v)`` ticks through a monitor; keep the
    changes where the top-k composition actually moved."""
    monitor = SlidingWindowMonitor(database, window, k)
    changes = []
    for object_id, t, v in ticks:
        change = monitor.tick(object_id, t, v)
        if change.changed:
            changes.append(change)
    return changes
