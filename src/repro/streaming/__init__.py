"""Continuous top-k monitoring over streaming appends."""

from repro.streaming.window import RankingChange, SlidingWindowMonitor, replay

__all__ = ["SlidingWindowMonitor", "RankingChange", "replay"]
