"""Plain-text tables for benchmark output.

Benchmarks print one table per figure panel with the same rows/series
the paper plots, so a run of ``pytest benchmarks/`` regenerates the
evaluation section in textual form.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(title: str, rows: Sequence[Dict[str, object]]) -> str:
    """Align a list of dict rows under a title banner."""
    if not rows:
        return f"== {title} ==\n(no data)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        rendered_row = {c: _fmt(row.get(c, "")) for c in columns}
        for c in columns:
            widths[c] = max(widths[c], len(rendered_row[c]))
        rendered.append(rendered_row)
    lines = [f"== {title} =="]
    lines.append("  ".join(c.ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rendered:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines) + "\n"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if 0 < abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def print_table(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Print a formatted table (flushes so pytest -s interleaves sanely)."""
    print("\n" + format_table(title, rows), flush=True)
