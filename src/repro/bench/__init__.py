"""Benchmark harness: metrics, runners, and table reporting."""

from repro.bench.harness import (
    MethodReport,
    evaluate_batched,
    evaluate_method,
    exact_reference,
    kernel_microbenchmark,
    sweep,
)
from repro.bench.metrics import (
    approximation_ratio,
    precision_recall,
    rank_score_errors,
)
from repro.bench.reporting import format_table, print_table

__all__ = [
    "MethodReport",
    "evaluate_batched",
    "evaluate_method",
    "kernel_microbenchmark",
    "exact_reference",
    "sweep",
    "precision_recall",
    "approximation_ratio",
    "rank_score_errors",
    "format_table",
    "print_table",
]
