"""ASCII line charts for benchmark series.

The paper presents its evaluation as log-scale line plots; without a
plotting dependency, these helpers render the same series as terminal
charts so a benchmark run visually resembles the figures it
reproduces.  Purely presentational — the tables printed alongside
carry the exact numbers.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

_MARKERS = "ox+*#@%&"


def ascii_chart(
    title: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_y: bool = True,
) -> str:
    """Render named series over shared x values as an ASCII chart."""
    points = []
    for values in series.values():
        points.extend(v for v in values if v is not None and v > 0)
    if not points or not x_values:
        return f"{title}\n(no data)\n"

    def transform(v: float) -> float:
        return math.log10(v) if log_y else v

    y_lo = min(transform(v) for v in points)
    y_hi = max(transform(v) for v in points)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(x_values), max(x_values)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(x_values, values):
            if y is None or (log_y and y <= 0):
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round(
                (transform(y) - y_lo) / (y_hi - y_lo) * (height - 1)
            )
            grid[height - 1 - row][col] = marker

    top_label = f"{10 ** y_hi:.2g}" if log_y else f"{y_hi:.3g}"
    bottom_label = f"{10 ** y_lo:.2g}" if log_y else f"{y_lo:.3g}"
    lines = [title]
    for i, row in enumerate(grid):
        prefix = top_label if i == 0 else (bottom_label if i == height - 1 else "")
        lines.append(f"{prefix:>9s} |{''.join(row)}")
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':>10s} {x_lo:<10.4g}{'':^{max(width - 22, 0)}}{x_hi:>10.4g}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines) + "\n"


def print_chart(
    title: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    log_y: bool = True,
) -> None:
    print("\n" + ascii_chart(title, x_values, series, log_y=log_y), flush=True)
