"""Experiment harness: run methods over workloads, collect the paper's
measurement axes (index size, build time, query IOs, query time,
precision/recall, approximation ratio).

Every figure-reproduction benchmark builds on :func:`evaluate_method`
and :class:`MethodReport`, so a row of a paper figure is one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.metrics import approximation_ratio, precision_recall
from repro.core.database import TemporalDatabase
from repro.core.queries import TopKQuery
from repro.exact.base import RankingMethod


@dataclass
class MethodReport:
    """Aggregated measurements for one method on one workload."""

    method: str
    build_seconds: float
    index_size_bytes: int
    avg_query_ios: float
    avg_query_seconds: float
    precision: float = float("nan")
    ratio: float = float("nan")
    extras: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat dict for table printing."""
        out = {
            "method": self.method,
            "build_s": round(self.build_seconds, 4),
            "size_bytes": self.index_size_bytes,
            "query_ios": round(self.avg_query_ios, 1),
            "query_s": round(self.avg_query_seconds, 6),
        }
        if not np.isnan(self.precision):
            out["precision"] = round(self.precision, 4)
        if not np.isnan(self.ratio):
            out["ratio"] = round(self.ratio, 4)
        out.update({k: round(v, 6) for k, v in self.extras.items()})
        return out


def evaluate_method(
    method: RankingMethod,
    database: TemporalDatabase,
    queries: Sequence[TopKQuery],
    exact_answers: Optional[Sequence] = None,
    measure_quality: bool = False,
) -> MethodReport:
    """Build ``method`` on ``database`` and run the workload.

    ``exact_answers`` (one per query) enables precision/ratio metrics;
    compute them once per workload with :func:`exact_reference` and
    share across methods.
    """
    if method.database is not database:
        method.build(database)
    ios: List[int] = []
    seconds: List[float] = []
    precisions: List[float] = []
    ratios: List[float] = []
    for idx, query in enumerate(queries):
        cost = method.measured_query(query, cold=True)
        ios.append(cost.ios)
        seconds.append(cost.seconds)
        if measure_quality and exact_answers is not None:
            exact = exact_answers[idx]
            precisions.append(precision_recall(cost.result, exact))
            ratios.append(
                approximation_ratio(cost.result, database, query.t1, query.t2)
            )
    return MethodReport(
        method=method.name,
        build_seconds=method.build_seconds,
        index_size_bytes=method.index_size_bytes,
        avg_query_ios=float(np.mean(ios)) if ios else float("nan"),
        avg_query_seconds=float(np.mean(seconds)) if seconds else float("nan"),
        precision=float(np.mean(precisions)) if precisions else float("nan"),
        ratio=float(np.mean(ratios)) if ratios else float("nan"),
    )


def exact_reference(
    database: TemporalDatabase, queries: Sequence[TopKQuery]
) -> List:
    """Ground-truth answers for a workload (brute force, done once)."""
    return [
        database.brute_force_top_k(q.t1, q.t2, q.k) for q in queries
    ]


def sweep(
    parameter_values: Sequence,
    make_database: Callable,
    make_methods: Callable,
    make_queries: Callable,
    measure_quality: bool = False,
) -> Dict[object, List[MethodReport]]:
    """Run a full parameter sweep (one paper figure).

    ``make_database(value)``, ``make_methods(db, value) -> list`` and
    ``make_queries(db, value) -> list`` define the experiment; returns
    ``{value: [MethodReport, ...]}``.
    """
    results: Dict[object, List[MethodReport]] = {}
    for value in parameter_values:
        database = make_database(value)
        queries = make_queries(database, value)
        exact = exact_reference(database, queries) if measure_quality else None
        reports = []
        for method in make_methods(database, value):
            reports.append(
                evaluate_method(
                    method, database, queries, exact, measure_quality
                )
            )
        results[value] = reports
    return results
