"""Experiment harness: run methods over workloads, collect the paper's
measurement axes (index size, build time, query IOs, query time,
precision/recall, approximation ratio).

Every figure-reproduction benchmark builds on :func:`evaluate_method`
and :class:`MethodReport`, so a row of a paper figure is one call.

Two kernel-oriented entry points track the columnar
:class:`~repro.core.plfstore.PLFStore` in the BENCH trajectory:

* :func:`kernel_microbenchmark` — scalar per-object scoring vs the
  batched kernel on identical queries (the ISSUE's >= 5x gate),
* :func:`evaluate_batched` — a query-batching mode that answers a whole
  workload through one ``integrals_many`` pass and reports it in the
  same :class:`MethodReport` shape as the per-query methods.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.metrics import approximation_ratio, precision_recall
from repro.core.database import TemporalDatabase
from repro.core.queries import TopKQuery
from repro.exact.base import RankingMethod


@dataclass
class MethodReport:
    """Aggregated measurements for one method on one workload."""

    method: str
    build_seconds: float
    index_size_bytes: int
    avg_query_ios: float
    avg_query_seconds: float
    precision: float = float("nan")
    ratio: float = float("nan")
    extras: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat dict for table printing."""
        out = {
            "method": self.method,
            "build_s": round(self.build_seconds, 4),
            "size_bytes": self.index_size_bytes,
            "query_ios": round(self.avg_query_ios, 1),
            "query_s": round(self.avg_query_seconds, 6),
        }
        if not np.isnan(self.precision):
            out["precision"] = round(self.precision, 4)
        if not np.isnan(self.ratio):
            out["ratio"] = round(self.ratio, 4)
        out.update({k: round(v, 6) for k, v in self.extras.items()})
        return out


def evaluate_method(
    method: RankingMethod,
    database: TemporalDatabase,
    queries: Sequence[TopKQuery],
    exact_answers: Optional[Sequence] = None,
    measure_quality: bool = False,
) -> MethodReport:
    """Build ``method`` on ``database`` and run the workload.

    ``exact_answers`` (one per query) enables precision/ratio metrics;
    compute them once per workload with :func:`exact_reference` and
    share across methods.
    """
    if method.database is not database:
        method.build(database)
    ios: List[int] = []
    seconds: List[float] = []
    precisions: List[float] = []
    ratios: List[float] = []
    for idx, query in enumerate(queries):
        cost = method.measured_query(query, cold=True)
        ios.append(cost.ios)
        seconds.append(cost.seconds)
        if measure_quality and exact_answers is not None:
            exact = exact_answers[idx]
            precisions.append(precision_recall(cost.result, exact))
            ratios.append(
                approximation_ratio(cost.result, database, query.t1, query.t2)
            )
    return MethodReport(
        method=method.name,
        build_seconds=method.build_seconds,
        index_size_bytes=method.index_size_bytes,
        avg_query_ios=float(np.mean(ios)) if ios else float("nan"),
        avg_query_seconds=float(np.mean(seconds)) if seconds else float("nan"),
        precision=float(np.mean(precisions)) if precisions else float("nan"),
        ratio=float(np.mean(ratios)) if ratios else float("nan"),
    )


def exact_reference(
    database: TemporalDatabase, queries: Sequence[TopKQuery]
) -> List:
    """Ground-truth answers for a workload (brute force, done once)."""
    return [
        database.brute_force_top_k(q.t1, q.t2, q.k) for q in queries
    ]


# ----------------------------------------------------------------------
# columnar-kernel measurements
# ----------------------------------------------------------------------
def kernel_microbenchmark(
    database: TemporalDatabase,
    num_queries: int = 8,
    seed: int = 7,
    repeats: int = 3,
) -> Dict[str, float]:
    """Time scalar per-object scoring against the batched kernel.

    Scores every object for ``num_queries`` random intervals twice:
    once through the historical ``for obj in database`` loop of scalar
    ``PiecewiseLinearFunction.integral`` calls, once through a single
    :meth:`PLFStore.integrals_many` pass.  Best-of-``repeats`` wall
    times; results are asserted equal before timings are reported.
    """
    rng = np.random.default_rng(seed)
    t_min, t_max = database.span
    queries = np.sort(
        rng.uniform(t_min, t_max, (num_queries, 2)), axis=1
    )
    functions = [obj.function for obj in database]
    store = database.store()

    def run_scalar() -> np.ndarray:
        return np.asarray(
            [[fn.integral(a, b) for fn in functions] for a, b in queries]
        )

    def run_batch() -> np.ndarray:
        return store.integrals_many(queries)

    # Warm both paths (prefix masses, store segment view) before timing.
    scalar_result = run_scalar()
    batch_result = run_batch()
    if not np.allclose(scalar_result, batch_result, atol=1e-9):
        raise AssertionError("kernel and scalar scoring disagree")
    scalar_seconds = min(
        _timed(run_scalar) for _ in range(repeats)
    )
    batch_seconds = min(_timed(run_batch) for _ in range(repeats))
    return {
        "m": float(database.num_objects),
        "n_avg": float(database.avg_segments),
        "num_queries": float(num_queries),
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "speedup": scalar_seconds / max(batch_seconds, 1e-12),
    }


def _timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def evaluate_batched(
    database: TemporalDatabase,
    queries: Sequence[TopKQuery],
    exact_answers: Optional[Sequence] = None,
    measure_quality: bool = False,
) -> MethodReport:
    """Query-batching mode: answer the whole workload in one kernel pass.

    The columnar store is the "index"; ``build_seconds`` measures a
    genuinely cold build — fresh PLF shells (which discard the lazily
    cached prefix arrays) packed into a fresh store — so the reported
    cost includes the O(N) prefix integrals and is comparable across
    runs regardless of which harness steps (e.g.
    :func:`exact_reference`) ran first.  The workload is scored with
    one chunked ``integrals_many`` call, and the report uses the same
    shape as :func:`evaluate_method` so sweeps can place the kernel
    beside the paper's methods.  ``extras`` carries the
    whole-workload wall time.
    """
    from repro.core.plf import PiecewiseLinearFunction
    from repro.core.plfstore import PLFStore

    query_array = np.asarray([(q.t1, q.t2) for q in queries], dtype=np.float64)
    k = max((q.k for q in queries), default=1)
    shells = [
        PiecewiseLinearFunction(obj.function.times, obj.function.values)
        for obj in database
    ]
    start = time.perf_counter()
    store = PLFStore(shells, database.object_ids())
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    results = store.top_k_many(query_array, k)
    batch_seconds = time.perf_counter() - start
    precisions: List[float] = []
    ratios: List[float] = []
    if measure_quality and exact_answers is not None:
        for idx, query in enumerate(queries):
            got = results[idx].truncated(query.k)
            precisions.append(precision_recall(got, exact_answers[idx]))
            ratios.append(
                approximation_ratio(got, database, query.t1, query.t2)
            )
    count = max(len(queries), 1)
    return MethodReport(
        method="KERNEL-BATCH",
        build_seconds=build_seconds,
        index_size_bytes=store.nbytes,
        avg_query_ios=0.0,
        avg_query_seconds=batch_seconds / count,
        precision=float(np.mean(precisions)) if precisions else float("nan"),
        ratio=float(np.mean(ratios)) if ratios else float("nan"),
        extras={"workload_seconds": batch_seconds},
    )


def sweep(
    parameter_values: Sequence,
    make_database: Callable,
    make_methods: Callable,
    make_queries: Callable,
    measure_quality: bool = False,
) -> Dict[object, List[MethodReport]]:
    """Run a full parameter sweep (one paper figure).

    ``make_database(value)``, ``make_methods(db, value) -> list`` and
    ``make_queries(db, value) -> list`` define the experiment; returns
    ``{value: [MethodReport, ...]}``.
    """
    results: Dict[object, List[MethodReport]] = {}
    for value in parameter_values:
        database = make_database(value)
        queries = make_queries(database, value)
        exact = exact_reference(database, queries) if measure_quality else None
        reports = []
        for method in make_methods(database, value):
            reports.append(
                evaluate_method(
                    method, database, queries, exact, measure_quality
                )
            )
        results[value] = reports
    return results
