"""Quality metrics for approximate answers (paper Section 5).

The paper evaluates approximations with (a) precision/recall between
the approximate and exact top-k sets — identical here since both sets
have size k — and (b) the average *approximation ratio*
``sigma~_i(t1,t2) / sigma_i(t1,t2)`` over the returned objects.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.results import TopKResult


def precision_recall(approx: TopKResult, exact: TopKResult) -> float:
    """``|A~ ∩ A| / k`` — precision == recall for equal-size answers.

    When the approximate answer is shorter than the exact one (e.g. a
    degenerate snapped interval), the denominator stays ``k`` so the
    shortfall is penalized.
    """
    if len(exact) == 0:
        return 1.0
    approx_ids = set(approx.object_ids)
    exact_ids = set(exact.object_ids)
    return len(approx_ids & exact_ids) / len(exact_ids)


def approximation_ratio(
    approx: TopKResult, database: TemporalDatabase, t1: float, t2: float
) -> float:
    """Mean ``sigma~_i / sigma_i`` over returned objects.

    Objects whose true score is (near) zero are skipped — the ratio is
    undefined there and the paper's data never produces them.
    """
    ratios = []
    for item in approx:
        truth = database.exact_score(item.object_id, t1, t2)
        if abs(truth) > 1e-12:
            ratios.append(item.score / truth)
    if not ratios:
        return 1.0
    return float(np.mean(ratios))


def rank_score_errors(
    approx: TopKResult, exact: TopKResult, total_mass: float
) -> np.ndarray:
    """Per-rank |approx score - exact score| / M (checks Definition 2)."""
    n = min(len(approx), len(exact))
    out = np.empty(n, dtype=np.float64)
    for j in range(n):
        out[j] = abs(approx[j].score - exact[j].score) / total_mass
    return out


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean with an empty-sequence guard."""
    if not values:
        return float("nan")
    return float(np.mean(values))
