"""Shared regression-gate arithmetic for the committed BENCH baselines.

Both bench scripts (``scripts/bench_build.py``, ``scripts/bench_kernel.
py``) gate CI on trajectory entries committed in ``BENCH_*.json``.
The comparison rules live here, once:

* wall-clock keys are gated only above a noise floor (tiny timings
  are scheduler noise, not signal),
* speedup-ratio keys are always gated — ratios compare two paths
  within one run, so they normalize away how fast the recording
  machine was,
* a run regresses when a timing grows, or a ratio shrinks, by more
  than ``max_regression`` x.
"""

from __future__ import annotations

import os
import platform
from typing import Dict, List, Optional, Sequence

#: Baseline timings below this are dominated by scheduler noise and
#: are not gated by the wall-clock regression check.
GATE_FLOOR_SECONDS = 0.05


def host_metadata() -> dict:
    """Host facts recorded beside every BENCH trajectory entry.

    Kept out of ``config`` (baseline matching is on the
    machine-independent workload shape) but always stored, so
    pool-overhead-only points from low-core hosts — the PR 3 1-core
    caveat — stay distinguishable in the trajectory.
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def single_core_host(host: Optional[dict] = None) -> bool:
    """True when the host (recorded or current) has a single core.

    Parallel bench points on such hosts measure executor pool
    overhead, not fan-out speedup, so gates must skip (and flag) them
    rather than silently hold future runs to an overhead measurement
    — the PR 3 caveat made explicit.  Pass a recorded ``host`` block
    from a trajectory entry to test the baseline's machine; default is
    the current host.
    """
    meta = host if host is not None else host_metadata()
    return int(meta.get("cpu_count") or 1) < 2


def find_baseline_entry(
    history, config: dict
) -> Optional[dict]:
    """The newest committed entry whose ``config`` matches, if any."""
    if isinstance(history, dict):
        history = [history]
    matches = [
        entry for entry in history if entry.get("config") == config
    ]
    return matches[-1] if matches else None


def compare_results(
    base: Dict[str, float],
    current: Dict[str, float],
    gated_keys: Sequence[str],
    gated_ratios: Sequence[str],
    max_regression: float,
    floor: float = GATE_FLOOR_SECONDS,
    label: str = "",
) -> List[str]:
    """Failure lines for every gated regression of ``current`` vs ``base``.

    ``label`` prefixes each line (e.g. ``"r=200 "`` for per-point
    build results).  Keys missing on either side are skipped, so old
    baselines keep gating new runs that add keys.
    """
    failures: List[str] = []
    for key in gated_keys:
        if key not in base or key not in current:
            continue
        if base[key] < floor:
            continue  # noise-dominated at this scale
        if current[key] > base[key] * max_regression:
            failures.append(
                f"{label}{key}: {current[key]:.4f}s vs baseline "
                f"{base[key]:.4f}s (> {max_regression}x)"
            )
    for key in gated_ratios:
        if key not in base or key not in current:
            continue
        if current[key] * max_regression < base[key]:
            failures.append(
                f"{label}{key}: {current[key]:.2f}x vs baseline "
                f"{base[key]:.2f}x (lost > {max_regression}x)"
            )
    return failures
