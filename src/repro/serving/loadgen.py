"""Open-loop Poisson load generation for the serving tier.

The generator fires requests on a *precomputed* arrival schedule
(:func:`repro.datasets.workload.sample_poisson_arrivals` — seeded,
replayable) and never waits for responses before firing the next one.
That open-loop discipline is what makes the benchmark honest: under
an overloaded server the schedule keeps firing, queues grow, and
measured latency explodes — exactly the saturation behavior a
closed-loop driver (which slows down with the server) structurally
cannot observe.  Latency is measured against the *scheduled* arrival
time, so generator scheduling jitter counts against the server, never
in its favor.

Two submission modes share the driver:

* micro-batched — requests go through a running
  :class:`~repro.serving.coordinator.ServingCoordinator`;
* direct (batch = 1) — each request executes alone through the same
  single worker thread (:class:`DirectClient`), the per-request
  baseline the coordinator must beat.

Both modes produce per-request answers, so the bench asserts them
bit-identical to each other and to one direct ``serve_many`` call
over the whole workload.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.results import TopKResult
from repro.datasets.workload import (
    WorkloadBatch,
    sample_poisson_arrivals,
    sample_workload,
)


@dataclass(frozen=True)
class ArrivalPlan:
    """A replayable open-loop run: queries plus their arrival times.

    ``arrivals`` holds ascending offsets (seconds from run start) for
    the corresponding :class:`WorkloadBatch` rows.  Built by
    :func:`plan_poisson_load` from seeds, so identical parameters
    reproduce the identical run on any host.
    """

    batch: WorkloadBatch
    arrivals: np.ndarray
    rate: float

    def __len__(self) -> int:
        return len(self.batch)


def plan_poisson_load(
    database,
    count: int,
    rate: float,
    kmax: int = 20,
    seed: int = 0,
    interval_fractions=(0.05, 0.2, 0.5),
) -> ArrivalPlan:
    """Sample a seeded aggregate workload with Poisson arrivals.

    The query stream comes from :func:`sample_workload` (seed) and the
    schedule from :func:`sample_poisson_arrivals` (seed + 1), so the
    two draws are independent but both replayable.
    """
    batch = sample_workload(
        database,
        count=count,
        kmax=kmax,
        seed=seed,
        interval_fractions=interval_fractions,
    )
    arrivals = sample_poisson_arrivals(count, rate, seed=seed + 1)
    return ArrivalPlan(batch=batch, arrivals=arrivals, rate=rate)


@dataclass
class LoadResult:
    """Measured outcome of one open-loop run."""

    #: Offered arrival rate (requests/second) of the plan.
    offered_rate: float
    #: Per-request latency, seconds, completion minus *scheduled*
    #: arrival, in request order.
    latencies: np.ndarray
    #: Wall-clock span from run start to last completion, seconds.
    duration: float
    #: Answers, in request order (equivalence checks).
    answers: List[TopKResult]

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall clock."""
        return len(self.answers) / self.duration if self.duration else 0.0

    def latency_quantile(self, q: float) -> float:
        return float(np.quantile(self.latencies, q))

    @property
    def p50(self) -> float:
        return self.latency_quantile(0.50)

    @property
    def p99(self) -> float:
        return self.latency_quantile(0.99)

    def summary(self) -> dict:
        return {
            "offered_rate": float(self.offered_rate),
            "requests": int(len(self.answers)),
            "duration_s": float(self.duration),
            "throughput_qps": float(self.throughput),
            "p50_ms": self.p50 * 1e3,
            "p99_ms": self.p99 * 1e3,
        }


class DirectClient:
    """The batch=1 baseline: one backend execution per request.

    Mirrors the coordinator's execution discipline — a single worker
    thread runs the backend — but with no batching, no result cache,
    and no dedup, so the comparison isolates exactly what
    micro-batching buys.  Exposes the coordinator's ``top_k``
    coroutine signature so the driver treats both uniformly.
    """

    def __init__(self, backend) -> None:
        self.backend = backend
        self._executor: Optional[ThreadPoolExecutor] = None

    async def start(self) -> "DirectClient":
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-direct"
        )
        return self

    async def stop(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "DirectClient":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def top_k(self, t1: float, t2: float, k: int) -> TopKResult:
        def one() -> TopKResult:
            return self.backend.serve_many(
                np.asarray([t1], dtype=np.float64),
                np.asarray([t2], dtype=np.float64),
                np.asarray([k], dtype=np.int64),
            )[0]

        return await asyncio.get_running_loop().run_in_executor(
            self._executor, one
        )


async def run_open_loop(
    client,
    plan: ArrivalPlan,
    clock: Callable[[], float] = time.monotonic,
) -> LoadResult:
    """Replay ``plan`` open-loop against ``client.top_k``.

    Fires each request at its scheduled offset (catching up without
    pause when behind schedule — the open-loop property) and gathers
    completions concurrently.  Latency for request ``i`` is
    ``completion - (start + arrivals[i])``: time spent queued behind
    an overloaded server is charged to the server.
    """
    t1s, t2s, ks = plan.batch.t1s, plan.batch.t2s, plan.batch.ks
    arrivals = plan.arrivals
    start = clock()

    async def fire(index: int) -> tuple:
        scheduled = start + float(arrivals[index])
        answer = await client.top_k(
            float(t1s[index]), float(t2s[index]), int(ks[index])
        )
        return clock() - scheduled, answer

    tasks: List[asyncio.Task] = []
    for index in range(len(plan)):
        delay = (start + float(arrivals[index])) - clock()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(fire(index)))
    outcomes = await asyncio.gather(*tasks)
    duration = clock() - start
    latencies = np.asarray([lat for lat, _ in outcomes], dtype=np.float64)
    answers = [answer for _, answer in outcomes]
    return LoadResult(
        offered_rate=plan.rate,
        latencies=latencies,
        duration=duration,
        answers=answers,
    )
