"""Process-backed serving execution pool over the mmap storage tier.

The coordinator's single worker thread serializes batch execution
(engines are not thread-safe), so pipelined micro-batches queue — they
never overlap.  This module removes that ceiling without giving up
determinism: the backend is snapshotted once into an mmap-able
directory (:func:`repro.storage.snapshot.snapshot_any`) and **worker
processes mount it read-only** (zero-copy ``np.memmap``, zero index
builds), so concurrently dispatched batches run on genuinely separate
cores against byte-identical immutable state.  Answers, tie-breaks,
and modeled IO charges stay bit-identical to the direct single-thread
path because a mounted snapshot answers bit-identically to the live
object (the PR 8 contract) and batch execution is a pure function of
the mounted state.

Epoch protocol
--------------
Appends stay on the coordinator (the live backend); the pool serves a
snapshot *of* some epoch.  Every dispatch carries its snapshot path
and epoch token, so a worker holding a stale mount detects the
mismatch and re-mounts before serving (counted as a ``remount``).
When the live backend's epoch moves past the pool's, the coordinator
calls :meth:`ServingProcessPool.resync` before the next flush: a new
snapshot directory is written under the pool root
(``epoch_<e>``), the dispatch token advances, and superseded
directories are pruned (keeping the immediately previous one, which
in-flight dispatches may still be reading).
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.errors import ReproError
from repro.parallel.executor import WorkerPool
from repro.parallel.workers import serving_dispatch, serving_warm
from repro.storage.snapshot import snapshot_any


class ServingProcessPool:
    """A pool of worker processes serving mounted snapshots of one backend.

    Parameters
    ----------
    backend:
        A serving backend adapter (:mod:`repro.serving.backends`) that
        also implements the snapshot-handle protocol
        (``snapshot_target`` / ``prepare_for_pool`` / ``pool_spec``).
    workers:
        Worker process count (>= 1).
    root:
        Directory for the pool's epoch snapshots.  Default: a private
        temporary directory, removed on :meth:`close`.
    initial_snapshot:
        An existing snapshot directory of the backend's *current*
        state (e.g. the ``--catalog`` the CLI served from).  Reused as
        the epoch-0 mount instead of writing a fresh snapshot — but
        only when :meth:`prepare_for_pool` built nothing new, so the
        directory is guaranteed to record every index the spec serves.
    worker_delay:
        Seconds each worker sleeps before serving a dispatch —
        test/chaos instrumentation for the drain/close paths (travels
        in the pool spec; see
        :class:`repro.serving.backends.DelayedBackend`).
    """

    def __init__(
        self,
        backend,
        workers: int,
        root: Optional[str | Path] = None,
        initial_snapshot: Optional[str | Path] = None,
        worker_delay: float = 0.0,
    ) -> None:
        if int(workers) < 1:
            raise ReproError(f"pool workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = int(workers)
        self.spec = dict(backend.pool_spec())
        if worker_delay:
            self.spec["delay_s"] = float(worker_delay)
        self._tmp = None
        if root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-serving-pool-")
            root = self._tmp.name
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.resyncs = 0
        built = int(backend.prepare_for_pool())
        self._epoch = int(backend.epoch)
        if initial_snapshot is not None and built == 0:
            self._path = Path(initial_snapshot)
        else:
            self._path = self._snapshot_path(self._epoch)
            snapshot_any(backend.snapshot_target(), self._path)
        self._procs = WorkerPool(
            self.workers,
            state=(str(self.root), str(self._path), self._epoch, self.spec),
        )
        # Warm every worker now: N concurrent warm tasks spawn N
        # workers, each mounting (and build-replaying) before traffic
        # arrives, so the first real flush never stalls on a cold
        # mount — and every fork happens before heavy kernels run.
        warm = [self._procs.submit(serving_warm) for _ in range(self.workers)]
        self.startup_warmups = sum(int(f.result()["warmups"]) for f in warm)

    # ------------------------------------------------------------------
    # epoch protocol
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The epoch the pool's current snapshot serves."""
        return self._epoch

    def in_sync(self) -> bool:
        """True when the live backend hasn't moved past the snapshot."""
        return int(self.backend.epoch) == self._epoch

    def resync(self) -> bool:
        """Re-snapshot the live backend if its epoch moved.

        Returns True when a new snapshot was written (subsequent
        dispatches carry the new token; workers re-mount on their next
        dispatch).  Thread-safe and idempotent: concurrent callers
        serialize on the pool lock and only the first does the work.

        Snapshotting temporarily strips live index block payloads
        (restored before returning), so callers must not let backend
        appends interleave with this call — the coordinator runs it
        inline on the event loop, where its appends also run.
        """
        with self._lock:
            epoch = int(self.backend.epoch)
            if epoch == self._epoch:
                return False
            self.backend.prepare_for_pool()
            path = self._snapshot_path(epoch)
            snapshot_any(self.backend.snapshot_target(), path)
            previous = self._path
            self._path, self._epoch = path, epoch
            self.resyncs += 1
            self._prune(keep={path, previous})
            return True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def submit(self, t1s, t2s, ks):
        """Dispatch one micro-batch to an idle worker.

        Returns a ``concurrent.futures.Future`` resolving to
        ``(results, info)`` — wrap with ``asyncio.wrap_future`` to
        await it from the event loop.
        """
        return self._procs.submit(
            serving_dispatch,
            (
                str(self.root),
                str(self._path),
                self._epoch,
                self.spec,
                np.asarray(t1s, dtype=np.float64),
                np.asarray(t2s, dtype=np.float64),
                np.asarray(ks, dtype=np.int64),
            ),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Shut the worker processes down and remove a private root."""
        self._procs.shutdown(wait=wait, cancel_futures=cancel_futures)
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _snapshot_path(self, epoch: int) -> Path:
        return self.root / f"epoch_{epoch}"

    def _prune(self, keep: set) -> None:
        # Only the pool's own epoch_* children are candidates, so an
        # externally supplied initial_snapshot is never touched.
        # Unlinking files a worker still has mapped is safe on POSIX
        # (the mapping keeps the data alive); elsewhere rmtree simply
        # skips busy files via ignore_errors.
        for child in self.root.glob("epoch_*"):
            if child not in keep and child.is_dir():
                shutil.rmtree(child, ignore_errors=True)

    def __repr__(self) -> str:
        return (
            f"ServingProcessPool(workers={self.workers}, "
            f"epoch={self._epoch}, root={str(self.root)!r})"
        )
