"""Adaptive micro-batching serving coordinator (asyncio front-end).

Per-request callers await ``top_k(t1, t2, k)``; the coordinator queues
requests and flushes **micro-batches** through the backend's batched
pipeline, which answers a whole batch far faster than the scalar loop
(the repo's vectorized ``query_many`` engines) while returning
bit-identical per-request answers.  Three mechanisms combine:

Adaptive micro-batching
    A flush fires when the queue reaches the *batch target* or when
    the oldest queued request has waited ``max_delay`` — whichever
    comes first, so an idle trickle is never held hostage to a size
    threshold.  The target adapts to the observed arrival rate (EWMA
    of inter-arrival gaps): roughly the number of arrivals expected
    within one ``max_delay`` window, clamped to
    ``[min_batch, max_batch]``.  Light load → small batches (latency
    bound by the deadline); heavy load → large batches (throughput
    bound by the batched kernels).

In-flight pipelining
    Execution runs on a worker thread; the event loop keeps accepting
    and queueing requests while a batch executes, so the *next*
    micro-batch forms during the current one's execution.
    ``pipeline_depth`` bounds how many flushed batches may be in
    flight (submitted, not yet finished) before the flusher itself
    waits.  The worker pool is single-threaded by default: the query
    engines are not thread-safe under concurrent mutation of their IO
    counters and pools, and a single worker already yields the
    overlap that matters (batch formation concurrent with execution)
    with strictly deterministic backend state.

Process-backed execution (``workers > 1``)
    With ``workers=N`` the coordinator dispatches flushed batches to a
    :class:`~repro.serving.pool.ServingProcessPool` instead: worker
    processes mount an immutable snapshot of the backend (zero-copy,
    zero builds — the PR 8 mmap tier) and concurrently dispatched
    batches genuinely overlap across cores.  Every dispatch carries
    the snapshot's epoch token; an append on the coordinator bumps
    the live epoch, the pool re-snapshots before the next flush
    (``stats.pool_resyncs``), and stale worker mounts re-mount on
    their next dispatch (``stats.pool_remounts``).  Answers,
    tie-breaks, and modeled IO charges stay bit-identical to the
    single-thread path because mounted snapshots answer
    bit-identically to the live backend.

Node-level result caching
    Answers are cached in an epoch-guarded LRU
    (:class:`~repro.serving.cache.ResultCache`) keyed on the exact
    ``(t1, t2, k)`` triple.  The guard epoch is the backend's append
    counter: a hit requires the entry's epoch to equal the *current*
    epoch, and entries are only inserted when the epoch did not move
    during execution — so a cached answer can never be stale, it is
    byte-for-byte the answer the backend would recompute.  Duplicate
    keys within one batch execute once (same determinism argument).

Answers are bit-identical to calling the backend's ``query_many``
directly — micro-batching, pipelining, and caching change *when* work
happens, never *what* is answered (asserted in
``tests/test_serving.py`` across engines and both cluster layouts).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import CoordinatorShutdown, DeadlineExceeded, ReproError
from repro.core.results import TopKResult
from repro.serving.cache import ResultCache

#: Query key: the exact request triple (cache / in-batch dedup unit).
Key = Tuple[float, float, int]


@dataclass
class ServingStats:
    """Counters describing how the coordinator served its traffic."""

    #: Requests accepted by :meth:`ServingCoordinator.top_k`.
    requests: int = 0
    #: Micro-batches flushed.
    batches: int = 0
    #: Flushes triggered by reaching the batch target.
    size_flushes: int = 0
    #: Flushes triggered by the oldest request's deadline (or drain).
    deadline_flushes: int = 0
    #: Unique query keys actually executed on the backend.
    executed: int = 0
    #: Requests answered from the result cache.
    cache_hits: int = 0
    #: Requests answered by an in-batch duplicate's execution.
    deduped: int = 0
    #: Largest micro-batch flushed.
    max_batch: int = 0
    #: Requests that failed structurally instead of being answered:
    #: per-request deadline blown (:class:`DeadlineExceeded`) or
    #: abandoned by a bounded :meth:`ServingCoordinator.close`
    #: (:class:`CoordinatorShutdown`).
    failed: int = 0
    #: Micro-batches dispatched to the process pool (``workers > 1``).
    pool_dispatches: int = 0
    #: Pool re-snapshots after a coordinator-side append moved the
    #: live epoch past the pool's mounted snapshot.
    pool_resyncs: int = 0
    #: Worker re-mounts triggered by a dispatch carrying a newer
    #: snapshot token than the worker's cached mount.
    pool_remounts: int = 0
    #: Index structures made query-ready by worker mounts (recorded
    #: builds replayed at pool start and after re-mounts), so the
    #: first flush never pays a cold-build stall.
    warmups: int = 0

    @property
    def mean_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


@dataclass
class _Request:
    key: Key
    arrival: float
    future: "asyncio.Future[TopKResult]" = field(repr=False)


class ServingCoordinator:
    """Async serving front-end over one backend.

    Parameters
    ----------
    backend:
        Any adapter from :mod:`repro.serving.backends` — an object
        with ``serve_many(t1s, t2s, ks)`` and an ``epoch`` property.
    max_batch:
        Hard cap on micro-batch size (backend batches never exceed
        it).
    min_batch:
        Floor for the adaptive batch target.
    max_delay:
        Longest a queued request may wait before its batch is
        flushed, in seconds (the latency the coordinator may spend
        *accumulating* a batch; queueing behind in-flight batches can
        add more under overload).
    adaptive:
        When True (default) the flush target tracks the arrival
        rate; when False every flush waits for ``max_batch`` or the
        deadline.
    pipeline_depth:
        Maximum flushed-but-unfinished batches before the flusher
        blocks.  ``1`` disables pipelining (next batch forms only
        queue-side); ``None`` (default) resolves to ``2`` on the
        single-thread path (one batch forms and submits while one
        executes) and to ``workers + 1`` with a process pool (every
        worker busy plus one batch forming).
    workers:
        Execution worker *processes*.  ``1`` (default) keeps the
        single-thread path; ``N > 1`` snapshots the backend and
        dispatches batches to a
        :class:`~repro.serving.pool.ServingProcessPool` so pipelined
        batches overlap across cores — answers stay bit-identical.
    pool:
        A pre-built :class:`~repro.serving.pool.ServingProcessPool`
        to adopt instead of creating one (tests; the CLI's
        snapshot-reuse path).  The coordinator owns it from
        :meth:`start` on and closes it on shutdown; ``workers`` is
        taken from the pool.
    pool_dir:
        Directory for the pool's epoch snapshots (default: a private
        temporary directory).
    pool_snapshot:
        An existing snapshot directory of the backend's current state
        to reuse as the pool's first mount (skips the initial
        snapshot write; see :class:`ServingProcessPool`).
    cache_size:
        Result-cache capacity in answers; ``0`` disables result
        caching.
    cache_min_cost:
        Admission threshold for the result cache: answers whose
        backend-declared recomputation cost (the backend's
        ``cost_hint``, default 1.0) falls below this are *not*
        cached, so instant-cheap backends never churn the LRU.  The
        default 0.0 admits everything.
    request_deadline:
        Optional per-request wall-clock budget in seconds.  A request
        still unanswered when it expires fails with a structured
        :class:`~repro.core.errors.DeadlineExceeded` (counted in
        ``stats.failed``) instead of awaiting forever — the guard
        that keeps one wedged shard from wedging every caller.
        ``None`` (default) preserves unbounded awaits.
    clock:
        Injectable monotonic clock (tests).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  :meth:`stop` drains: every accepted
    request is answered before it returns.  :meth:`close` is the
    bounded variant: after ``drain_timeout`` it fails whatever is
    still pending with :class:`CoordinatorShutdown` rather than hang.
    """

    def __init__(
        self,
        backend,
        max_batch: int = 64,
        min_batch: int = 1,
        max_delay: float = 0.002,
        adaptive: bool = True,
        pipeline_depth: Optional[int] = None,
        cache_size: int = 1024,
        cache_min_cost: float = 0.0,
        request_deadline: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        workers: int = 1,
        pool=None,
        pool_dir=None,
        pool_snapshot=None,
    ) -> None:
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        if not 1 <= min_batch <= max_batch:
            raise ReproError(
                f"need 1 <= min_batch <= max_batch, got {min_batch}"
            )
        self.backend = backend
        self.max_batch = int(max_batch)
        self.min_batch = int(min_batch)
        self.max_delay = float(max_delay)
        self.adaptive = bool(adaptive)
        self.workers = pool.workers if pool is not None else int(workers)
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self._pool = pool
        self._pool_dir = pool_dir
        self._pool_snapshot = pool_snapshot
        if pipeline_depth is None:
            # One batch forming while every execution slot is busy.
            pipeline_depth = 2 if self.workers == 1 else self.workers + 1
        if pipeline_depth < 1:
            raise ReproError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}"
            )
        self.pipeline_depth = int(pipeline_depth)
        if request_deadline is not None and request_deadline <= 0:
            raise ReproError(
                f"request_deadline must be positive, got {request_deadline}"
            )
        self.cache = ResultCache(
            capacity=int(cache_size), min_cost=float(cache_min_cost)
        )
        self.request_deadline = request_deadline
        self.stats = ServingStats()
        self._clock = clock
        self._queue: Deque[_Request] = deque()
        #: Futures of accepted-but-unanswered requests (for bounded
        #: shutdown: close() fails exactly these).
        self._outstanding: set = set()
        self._arrived: Optional[asyncio.Event] = None
        self._inflight: Optional[asyncio.Semaphore] = None
        self._flusher: Optional[asyncio.Task] = None
        self._exec_tasks: set = set()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closing = False
        # EWMA of inter-arrival gaps (seconds); None until two
        # arrivals have been seen.
        self._ewma_gap: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self._ewma_alpha = 0.2

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ServingCoordinator":
        """Spawn the flusher loop and the execution worker(s)."""
        if self._flusher is not None:
            raise ReproError("coordinator already started")
        self._closing = False
        self._arrived = asyncio.Event()
        self._inflight = asyncio.Semaphore(self.pipeline_depth)
        # Single worker thread: on the workers=1 path it serializes
        # backend execution (engines mutate IO counters and pools);
        # with a process pool it only runs pool construction, the
        # batches themselves go to the pool.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving"
        )
        if self._pool is None and self.workers > 1:
            from repro.serving.pool import ServingProcessPool

            loop = asyncio.get_running_loop()
            # Pool construction snapshots the backend and warms every
            # worker — real work; keep it off the event loop.
            self._pool = await loop.run_in_executor(
                self._executor,
                lambda: ServingProcessPool(
                    self.backend,
                    self.workers,
                    root=self._pool_dir,
                    initial_snapshot=self._pool_snapshot,
                ),
            )
        if self._pool is not None:
            self.stats.warmups += self._pool.startup_warmups
        self._flusher = asyncio.create_task(self._flush_loop())
        return self

    async def stop(self) -> None:
        """Drain the queue, finish in-flight batches, shut down.

        The unbounded form of :meth:`close`: every accepted request is
        answered before this returns.
        """
        await self.close(drain_timeout=None)

    async def close(self, drain_timeout: Optional[float] = None) -> None:
        """Shut down within ``drain_timeout`` seconds.

        Waits up to ``drain_timeout`` for the flusher and in-flight
        batches to finish (``None`` waits indefinitely — the
        :meth:`stop` behavior).  When the budget expires first, the
        remaining work is cancelled and **every still-pending request
        future is failed** with a structured
        :class:`~repro.core.errors.CoordinatorShutdown` (counted in
        ``stats.failed``) — callers get a clean error, never a
        forever-hanging await.
        """
        if self._flusher is None:
            return
        self._closing = True
        self._arrived.set()
        # Drain in rounds: the flusher keeps spawning execution tasks
        # while it empties the queue, so a single snapshot of
        # _exec_tasks would miss batches dispatched mid-drain (and a
        # pool makes that window real work, not an instant).  Re-poll
        # until nothing is left or the budget expires.
        deadline = (
            None if drain_timeout is None else self._clock() + drain_timeout
        )
        pending: set = set()
        while True:
            work = {
                task
                for task in {self._flusher} | set(self._exec_tasks)
                if not task.done()
            }
            if not work:
                pending = set()
                break
            timeout = (
                None
                if deadline is None
                else max(0.0, deadline - self._clock())
            )
            _, pending = await asyncio.wait(work, timeout=timeout)
            if pending:
                break
        if pending:
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        abandoned = [
            future for future in self._outstanding if not future.done()
        ]
        if abandoned:
            error = CoordinatorShutdown(
                f"coordinator closed with {len(abandoned)} requests "
                f"unanswered (drain_timeout={drain_timeout})"
            )
            for future in abandoned:
                future.set_exception(error)
                self.stats.failed += 1
        self._queue.clear()
        self._outstanding.clear()
        # A timed-out close must not block on the worker thread either;
        # anything still executing has no waiter left to deliver to.
        self._executor.shutdown(wait=not pending, cancel_futures=bool(pending))
        if self._pool is not None:
            # The coordinator owns the pool (built or adopted): worker
            # processes stop here.  A timed-out close abandons their
            # in-flight batches the same way it abandons the thread's.
            pool, self._pool = self._pool, None
            await asyncio.get_running_loop().run_in_executor(
                None,
                lambda: pool.close(
                    wait=not pending, cancel_futures=bool(pending)
                ),
            )
        self._flusher = None
        self._executor = None

    async def __aenter__(self) -> "ServingCoordinator":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    async def top_k(self, t1: float, t2: float, k: int) -> TopKResult:
        """Serve one aggregate (or instant) top-k request.

        Queues the request and awaits its micro-batch's answer; the
        result is exactly what the backend's ``query_many`` returns
        for this triple.
        """
        if self._flusher is None or self._closing:
            raise ReproError("coordinator is not running (use start())")
        now = self._clock()
        self._observe_arrival(now)
        future: "asyncio.Future[TopKResult]" = (
            asyncio.get_running_loop().create_future()
        )
        self._queue.append(
            _Request((float(t1), float(t2), int(k)), now, future)
        )
        self.stats.requests += 1
        self._outstanding.add(future)
        future.add_done_callback(self._outstanding.discard)
        self._arrived.set()
        if self.request_deadline is None:
            return await future
        try:
            return await asyncio.wait_for(future, self.request_deadline)
        except asyncio.TimeoutError:
            # wait_for cancelled the future; the executing batch (if
            # any) sees a done future and skips delivery.
            self.stats.failed += 1
            raise DeadlineExceeded(
                f"request exceeded its {self.request_deadline}s deadline",
                deadline=self.request_deadline,
            ) from None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Prometheus-style counters as one flat ``name -> value`` dict.

        Names follow the ``<namespace>_<subsystem>_<unit>_total``
        convention (counters monotone over the coordinator's
        lifetime; ``*_gauge`` entries are point-in-time values), so a
        scrape endpoint or the CLI's ``--stats-json`` dump can expose
        them without translation.
        """
        stats, cache = self.stats, self.cache.stats
        return {
            "repro_serving_requests_total": stats.requests,
            "repro_serving_batches_total": stats.batches,
            "repro_serving_size_flushes_total": stats.size_flushes,
            "repro_serving_deadline_flushes_total": stats.deadline_flushes,
            "repro_serving_executed_total": stats.executed,
            "repro_serving_cache_hits_total": stats.cache_hits,
            "repro_serving_deduped_total": stats.deduped,
            "repro_serving_failed_total": stats.failed,
            "repro_serving_pool_dispatches_total": stats.pool_dispatches,
            "repro_serving_pool_resyncs_total": stats.pool_resyncs,
            "repro_serving_pool_remounts_total": stats.pool_remounts,
            "repro_serving_warmups_total": stats.warmups,
            "repro_serving_max_batch_gauge": stats.max_batch,
            "repro_serving_mean_batch_gauge": stats.mean_batch,
            "repro_serving_workers_gauge": self.workers,
            "repro_serving_pipeline_depth_gauge": self.pipeline_depth,
            "repro_serving_backend_epoch_gauge": int(self.backend.epoch),
            "repro_serving_result_cache_hits_total": cache.hits,
            "repro_serving_result_cache_misses_total": cache.misses,
            "repro_serving_result_cache_stale_total": cache.stale,
            "repro_serving_result_cache_evictions_total": cache.evictions,
            "repro_serving_result_cache_rejected_total": cache.rejected,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _observe_arrival(self, now: float) -> None:
        last, self._last_arrival = self._last_arrival, now
        if last is None:
            return
        gap = max(now - last, 1e-9)
        if self._ewma_gap is None:
            self._ewma_gap = gap
        else:
            alpha = self._ewma_alpha
            self._ewma_gap = alpha * gap + (1.0 - alpha) * self._ewma_gap

    def batch_target(self) -> int:
        """Current flush-size target (adaptive unless disabled).

        The expected number of arrivals inside one ``max_delay``
        window at the EWMA-estimated rate, clamped to
        ``[min_batch, max_batch]``: waiting for more than that would
        blow the deadline anyway, flushing sooner wastes batching
        opportunity.
        """
        if not self.adaptive:
            return self.max_batch
        gap = self._ewma_gap
        if gap is None:
            return self.min_batch
        expected = int(round(self.max_delay / gap))
        return max(self.min_batch, min(self.max_batch, expected))

    async def _flush_loop(self) -> None:
        while True:
            if not self._queue:
                if self._closing:
                    return
                self._arrived.clear()
                # Re-check before sleeping: a request (or stop) may
                # have landed between the check and the clear.
                if not self._queue and not self._closing:
                    await self._arrived.wait()
                continue
            target = self.batch_target()
            deadline_hit = False
            while len(self._queue) < target and not self._closing:
                remaining = self.max_delay - (
                    self._clock() - self._queue[0].arrival
                )
                if remaining <= 0:
                    deadline_hit = True
                    break
                self._arrived.clear()
                try:
                    await asyncio.wait_for(self._arrived.wait(), remaining)
                except asyncio.TimeoutError:
                    deadline_hit = True
                    break
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), self.max_batch))
            ]
            self.stats.batches += 1
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            if deadline_hit or self._closing:
                self.stats.deadline_flushes += 1
            else:
                self.stats.size_flushes += 1
            # Pipelining bound: wait for an in-flight slot, then hand
            # the batch to the worker and immediately resume forming
            # the next one.
            await self._inflight.acquire()
            task = asyncio.create_task(self._execute(batch))
            self._exec_tasks.add(task)
            task.add_done_callback(self._exec_tasks.discard)

    async def _execute(self, batch: List[_Request]) -> None:
        try:
            epoch = self.backend.epoch
            pending: Dict[Key, List[_Request]] = {}
            for request in batch:
                cached = self.cache.get(request.key, epoch)
                if cached is not None:
                    # A done future here means the caller already gave
                    # up (deadline) — nothing to deliver.
                    if not request.future.done():
                        request.future.set_result(cached)
                    self.stats.cache_hits += 1
                    continue
                pending.setdefault(request.key, []).append(request)
            if pending:
                keys = list(pending)
                count = len(keys)
                t1s = np.fromiter((k[0] for k in keys), np.float64, count)
                t2s = np.fromiter((k[1] for k in keys), np.float64, count)
                ks = np.fromiter((k[2] for k in keys), np.int64, count)
                loop = asyncio.get_running_loop()
                if self._pool is not None:
                    # Re-sync the pool before dispatch when an append
                    # moved the live epoch past the mounted snapshot.
                    # The snapshot write runs *inline on the event
                    # loop*: dumping an index temporarily strips its
                    # live block payloads, so it must never interleave
                    # with a coordinator-side append (appends run on
                    # the loop thread too, hence serialized here).
                    if not self._pool.in_sync():
                        if self._pool.resync():
                            self.stats.pool_resyncs += 1
                    results, info = await asyncio.wrap_future(
                        self._pool.submit(t1s, t2s, ks)
                    )
                    self.stats.pool_dispatches += 1
                    self.stats.pool_remounts += int(info.get("remounts", 0))
                    self.stats.warmups += int(info.get("warmups", 0))
                else:
                    results = await loop.run_in_executor(
                        self._executor, self.backend.serve_many, t1s, t2s, ks
                    )
                self.stats.executed += count
                # Only cache when no append landed mid-execution: an
                # entry stamped with the pre-append epoch could
                # otherwise hold a post-append answer (or vice versa).
                fresh = self.backend.epoch == epoch
                cost = float(getattr(self.backend, "cost_hint", 1.0))
                for key, result in zip(keys, results):
                    if fresh:
                        self.cache.put(key, epoch, result, cost=cost)
                    waiters = pending[key]
                    self.stats.deduped += len(waiters) - 1
                    for request in waiters:
                        if not request.future.done():
                            request.future.set_result(result)
        except Exception as exc:  # propagate to every waiter
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
        finally:
            self._inflight.release()
