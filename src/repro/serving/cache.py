"""Epoch-guarded LRU result cache for the serving tier.

Distinct from the storage-layer block pool
(:class:`repro.storage.cache.LRUCache`): this caches whole *answers*
keyed on the query triple, above any engine or cluster.  Staleness is
impossible by construction — every entry records the backend's append
epoch at insertion time, and a lookup only hits when that epoch equals
the backend's *current* epoch.  Appends bump the epoch
(:attr:`repro.core.database.TemporalDatabase.epoch`), so every cached
answer from before the append silently becomes a miss; no scan or
explicit invalidation pass is needed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple


@dataclass
class ResultCacheStats:
    """Hit/miss counters (stale entries count as misses)."""

    hits: int = 0
    misses: int = 0
    stale: int = 0
    evictions: int = 0
    rejected: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Bounded LRU of ``(query key, epoch) -> answer``.

    ``get(key, epoch)`` hits only when the stored entry was inserted
    at the same backend epoch; otherwise the stale entry is dropped
    and the lookup counts as a miss.  ``put`` evicts the least
    recently used entry past ``capacity``.  ``capacity <= 0`` disables
    the cache entirely (every lookup misses, nothing is stored).

    Admission policy: ``put`` takes the answer's recomputation
    ``cost`` (backend-defined scale); answers cheaper than
    ``min_cost`` are rejected instead of cached, so trivially
    recomputable results never evict expensive ones.  The default
    ``min_cost`` of 0.0 admits everything.
    """

    capacity: int = 1024
    min_cost: float = 0.0
    stats: ResultCacheStats = field(default_factory=ResultCacheStats)

    def __post_init__(self) -> None:
        self._entries: "OrderedDict[Hashable, Tuple[int, object]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, epoch: int) -> Optional[object]:
        """The cached answer, or None on miss / epoch mismatch."""
        if self.capacity <= 0:
            self.stats.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        stored_epoch, value = entry
        if stored_epoch != epoch:
            # The backend advanced past this answer: drop it.
            del self._entries[key]
            self.stats.stale += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(
        self, key: Hashable, epoch: int, value: object, cost: float = 1.0
    ) -> None:
        """Insert (or refresh) an answer computed at ``epoch``.

        ``cost`` is the answer's recomputation cost; entries below
        :attr:`min_cost` are rejected (counted in ``stats.rejected``)
        rather than admitted.
        """
        if self.capacity <= 0:
            return
        if cost < self.min_cost:
            self.stats.rejected += 1
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (epoch, value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
