"""Async serving front-end over the batched query engines.

The repo's engines answer whole workloads an order of magnitude
faster than per-query loops (the ``query_many`` pipelines), but a
live service receives *single* requests.  This package closes that
gap: an asyncio coordinator queues per-request ``top_k(t1, t2, k)``
calls and flushes adaptive micro-batches through the batched
pipelines — with in-flight pipelining and an epoch-guarded result
cache — so request traffic inherits batched throughput while every
answer stays bit-identical to a direct ``query_many`` call.

* :class:`ServingCoordinator` — the front-end (micro-batching,
  pipelining, caching).
* :mod:`~repro.serving.backends` — adapters binding the coordinator
  to single-node engines (exact / approximate / instant) and both
  partitioned clusters.
* :class:`ResultCache` — the epoch-guarded answer cache (stale hits
  impossible by construction).
* :mod:`~repro.serving.loadgen` — seeded open-loop Poisson load
  generation and the batch=1 baseline client, feeding
  ``scripts/bench_serving.py``.
"""

from repro.serving.backends import (
    ClusterBackend,
    EngineBackend,
    InstantBackend,
    backend_from_snapshot,
)
from repro.serving.cache import ResultCache, ResultCacheStats
from repro.serving.coordinator import ServingCoordinator, ServingStats
from repro.serving.loadgen import (
    ArrivalPlan,
    DirectClient,
    LoadResult,
    plan_poisson_load,
    run_open_loop,
)
from repro.serving.pool import ServingProcessPool

__all__ = [
    "ArrivalPlan",
    "ClusterBackend",
    "DirectClient",
    "EngineBackend",
    "InstantBackend",
    "LoadResult",
    "ResultCache",
    "ResultCacheStats",
    "ServingCoordinator",
    "ServingProcessPool",
    "ServingStats",
    "backend_from_snapshot",
    "plan_poisson_load",
    "run_open_loop",
]
