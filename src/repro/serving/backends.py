"""Backend adapters: one micro-batch API over every query engine.

The coordinator (:mod:`repro.serving.coordinator`) speaks a single
narrow interface::

    backend.serve_many(t1s, t2s, ks) -> List[TopKResult]
    backend.epoch -> int   # append counter; result-cache guard

Adapters here bind that interface to each execution tier — the
single-node :class:`~repro.engine.TemporalRankingEngine` (exact,
approximate, or instant semantics) and both partitioned clusters.
Every adapter routes through the engine's *batched* pipeline
(``top_k_many`` / ``instant_top_k_many`` / cluster ``query_many``),
whose answers are bit-identical to the scalar per-query loops (the
repo-wide equivalence contract), so micro-batching requests changes
latency and throughput but never an answer.

Each adapter declares a ``cost_hint`` — the coordinator's result-cache
admission signal (relative recomputation cost of one answer).  The
instant path is a single fractional-cascading walk per query, cheap
enough that caching it mostly churns the LRU; the aggregate and
cluster paths pay real kernel work per answer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.results import TopKResult
from repro.datasets.workload import WorkloadBatch


class EngineBackend:
    """Aggregate ``top-k(t1, t2, k)`` over a single-node engine.

    ``approximate=True`` serves through APPX2+ (candidates from the
    tiny dyadic structure, scores exact) — the engine builds it
    lazily on the first batch.
    """

    #: Aggregate answers pay per-query kernel work: worth caching.
    cost_hint = 1.0

    def __init__(self, engine, approximate: bool = False) -> None:
        self.engine = engine
        self.approximate = approximate
        self.name = "engine-appx" if approximate else "engine-exact"

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    def serve_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
    ) -> List[TopKResult]:
        batch = WorkloadBatch(
            np.asarray(t1s, dtype=np.float64),
            np.asarray(t2s, dtype=np.float64),
            np.asarray(ks, dtype=np.int64),
        )
        return self.engine.top_k_many(batch, approximate=self.approximate)


class InstantBackend:
    """Instant ``top-k(t)`` over a single-node engine.

    The serving request triple is ``(t, t, k)`` — ``t2`` is ignored
    (and canonically equal to ``t1``), matching the coordinator's
    cache key.
    """

    name = "engine-instant"
    #: One fractional-cascading walk per answer — cheaper to recompute
    #: than to let it evict aggregate answers (admission rejects it
    #: under a positive ``cache_min_cost``).
    cost_hint = 0.0

    def __init__(self, engine) -> None:
        self.engine = engine

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    def serve_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
    ) -> List[TopKResult]:
        return self.engine.instant_top_k_many(
            np.asarray(t1s, dtype=np.float64),
            np.asarray(ks, dtype=np.int64),
        )


class ClusterBackend:
    """Aggregate top-k over a partitioned cluster.

    Works for both :class:`~repro.distributed.ObjectPartitionedCluster`
    and :class:`~repro.distributed.TimePartitionedCluster` — extra
    keyword arguments are forwarded to the cluster's ``query_many``
    (``protocol=`` / ``batch_size=`` for time partitions, ``executor=``
    for object partitions).  The epoch is the sum of the shard
    databases' append counters: any shard mutation invalidates every
    cached answer (shards are immutable after construction in the
    current clusters, so this is effectively constant — but the guard
    stays correct if that ever changes).
    """

    #: Cluster answers cross the (modeled) network: worth caching.
    cost_hint = 1.0

    def __init__(self, cluster, name: Optional[str] = None, **query_kwargs):
        self.cluster = cluster
        self.name = name or type(cluster).__name__
        self._query_kwargs = query_kwargs

    @property
    def epoch(self) -> int:
        return sum(node.database.epoch for node in self.cluster.nodes)

    def serve_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
    ) -> List[TopKResult]:
        batch = WorkloadBatch(
            np.asarray(t1s, dtype=np.float64),
            np.asarray(t2s, dtype=np.float64),
            np.asarray(ks, dtype=np.int64),
        )
        return self.cluster.query_many(batch, **self._query_kwargs)
