"""Backend adapters: one micro-batch API over every query engine.

The coordinator (:mod:`repro.serving.coordinator`) speaks a single
narrow interface::

    backend.serve_many(t1s, t2s, ks) -> List[TopKResult]
    backend.epoch -> int   # append counter; result-cache guard

Adapters here bind that interface to each execution tier — the
single-node :class:`~repro.engine.TemporalRankingEngine` (exact,
approximate, or instant semantics) and both partitioned clusters.
Every adapter routes through the engine's *batched* pipeline
(``top_k_many`` / ``instant_top_k_many`` / cluster ``query_many``),
whose answers are bit-identical to the scalar per-query loops (the
repo-wide equivalence contract), so micro-batching requests changes
latency and throughput but never an answer.

Each adapter declares a ``cost_hint`` — the coordinator's result-cache
admission signal (relative recomputation cost of one answer).  The
instant path is a single fractional-cascading walk per query, cheap
enough that caching it mostly churns the LRU; the aggregate and
cluster paths pay real kernel work per answer.

Snapshot handles (the process pool's worker protocol)
-----------------------------------------------------
Every adapter also describes itself as a *snapshot handle* for the
process-backed serving pool (:mod:`repro.serving.pool`):

* ``snapshot_target()`` — the engine/cluster object
  :func:`repro.storage.snapshot.snapshot_any` should persist,
* ``prepare_for_pool()`` — eagerly builds the lazy indexes the
  adapter serves, so the snapshot records them and worker mounts
  replay recorded builds instead of paying a cold build,
* ``pool_spec()`` — a small picklable dict from which
  :func:`backend_from_snapshot` reconstructs an equivalent adapter
  over a *mounted* snapshot inside a worker process.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.results import TopKResult
from repro.datasets.workload import WorkloadBatch


class EngineBackend:
    """Aggregate ``top-k(t1, t2, k)`` over a single-node engine.

    ``approximate=True`` serves through APPX2+ (candidates from the
    tiny dyadic structure, scores exact) — the engine builds it
    lazily on the first batch.
    """

    #: Aggregate answers pay per-query kernel work: worth caching.
    cost_hint = 1.0

    def __init__(self, engine, approximate: bool = False) -> None:
        self.engine = engine
        self.approximate = approximate
        self.name = "engine-appx" if approximate else "engine-exact"

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    def serve_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
    ) -> List[TopKResult]:
        batch = WorkloadBatch(
            np.asarray(t1s, dtype=np.float64),
            np.asarray(t2s, dtype=np.float64),
            np.asarray(ks, dtype=np.int64),
        )
        return self.engine.top_k_many(batch, approximate=self.approximate)

    def snapshot_target(self):
        return self.engine

    def prepare_for_pool(self) -> int:
        return self.engine.prepare(approximate=self.approximate)

    def pool_spec(self) -> dict:
        return {"kind": "engine", "approximate": bool(self.approximate)}


class InstantBackend:
    """Instant ``top-k(t)`` over a single-node engine.

    The serving request triple is ``(t, t, k)`` — ``t2`` is ignored
    (and canonically equal to ``t1``), matching the coordinator's
    cache key.
    """

    name = "engine-instant"
    #: One fractional-cascading walk per answer — cheaper to recompute
    #: than to let it evict aggregate answers (admission rejects it
    #: under a positive ``cache_min_cost``).
    cost_hint = 0.0

    def __init__(self, engine) -> None:
        self.engine = engine

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    def serve_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
    ) -> List[TopKResult]:
        return self.engine.instant_top_k_many(
            np.asarray(t1s, dtype=np.float64),
            np.asarray(ks, dtype=np.int64),
        )

    def snapshot_target(self):
        return self.engine

    def prepare_for_pool(self) -> int:
        return self.engine.prepare(instant=True)

    def pool_spec(self) -> dict:
        return {"kind": "instant"}


class ClusterBackend:
    """Aggregate top-k over a partitioned cluster.

    Works for both :class:`~repro.distributed.ObjectPartitionedCluster`
    and :class:`~repro.distributed.TimePartitionedCluster` — extra
    keyword arguments are forwarded to the cluster's ``query_many``
    (``protocol=`` / ``batch_size=`` for time partitions, ``executor=``
    for object partitions).  The epoch is the sum of the shard
    databases' append counters: any shard mutation invalidates every
    cached answer (shards are immutable after construction in the
    current clusters, so this is effectively constant — but the guard
    stays correct if that ever changes).
    """

    #: Cluster answers cross the (modeled) network: worth caching.
    cost_hint = 1.0

    def __init__(self, cluster, name: Optional[str] = None, **query_kwargs):
        self.cluster = cluster
        self.name = name or type(cluster).__name__
        self._query_kwargs = query_kwargs

    @property
    def epoch(self) -> int:
        return sum(node.database.epoch for node in self.cluster.nodes)

    def serve_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
    ) -> List[TopKResult]:
        batch = WorkloadBatch(
            np.asarray(t1s, dtype=np.float64),
            np.asarray(t2s, dtype=np.float64),
            np.asarray(ks, dtype=np.int64),
        )
        return self.cluster.query_many(batch, **self._query_kwargs)

    def snapshot_target(self):
        return self.cluster

    def prepare_for_pool(self) -> int:
        # Cluster shards build their indexes eagerly at construction;
        # there is nothing lazy left to force.
        return 0

    def pool_spec(self) -> dict:
        return {
            "kind": "cluster",
            "name": self.name,
            "query_kwargs": dict(self._query_kwargs),
        }


class DelayedBackend:
    """A backend that sleeps before serving — test/chaos instrumentation.

    The drain/close tests need pool batches that are reliably *in
    flight* when the coordinator shuts down; a worker-side sleep is
    the deterministic way to get one.  Reconstructed worker-side when
    a pool spec carries ``delay_s`` (see :func:`backend_from_snapshot`).
    """

    def __init__(self, inner, delay_s: float) -> None:
        self.inner = inner
        self.delay_s = float(delay_s)
        self.name = f"delayed({getattr(inner, 'name', '?')})"

    @property
    def cost_hint(self) -> float:
        return float(getattr(self.inner, "cost_hint", 1.0))

    @property
    def epoch(self) -> int:
        return self.inner.epoch

    def serve_many(self, t1s, t2s, ks) -> List[TopKResult]:
        import time

        time.sleep(self.delay_s)
        return self.inner.serve_many(t1s, t2s, ks)


def backend_from_snapshot(obj, spec: dict):
    """Rebuild a serving backend over a freshly mounted snapshot.

    The worker side of the serving pool's snapshot-handle protocol:
    ``obj`` is what :func:`repro.storage.snapshot.open_any` mounted,
    ``spec`` is the coordinator backend's ``pool_spec()``.  Returns
    ``(backend, warmups)`` where ``warmups`` counts the index
    structures made query-ready at mount time — replayed from the
    catalog's recorded ``index_builds`` rows, or (when the snapshot
    predates the index the spec serves) built eagerly here — so the
    worker's first flush never pays a cold-build stall.
    """
    kind = spec.get("kind")
    if kind == "engine":
        engine = obj
        approximate = bool(spec.get("approximate"))
        engine.prepare(approximate=approximate)
        # exact3 always mounts (or deterministically rebuilds) ready;
        # the approximate path adds APPX2+ when the spec serves it.
        warmups = 2 if approximate else 1
        backend = EngineBackend(engine, approximate=approximate)
    elif kind == "instant":
        engine = obj
        engine.prepare(instant=True)
        warmups = 2  # exact3 mount + the instant engine, both ready
        backend = InstantBackend(engine)
    elif kind == "cluster":
        kwargs = dict(spec.get("query_kwargs") or {})
        if kwargs.get("executor") is not None:
            # Nested fan-out inside a pool worker would stack process
            # pools without adding cores (the node_build_chunk rule).
            from repro.parallel import ParallelExecutor

            kwargs["executor"] = ParallelExecutor("serial", 1)
        backend = ClusterBackend(obj, name=spec.get("name"), **kwargs)
        warmups = len(obj.nodes)
    else:
        raise ValueError(f"unknown pool spec kind {kind!r}")
    delay = float(spec.get("delay_s") or 0.0)
    if delay > 0.0:
        backend = DelayedBackend(backend, delay)
    return backend, warmups
