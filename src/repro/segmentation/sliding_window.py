"""Sliding-window time series segmentation.

The paper assumes temporal data "has already been converted to a
piecewise linear representation by any segmentation method" (Section
1, citing Keogh et al.).  This module supplies the simplest online
algorithm from that literature so raw sample streams can be ingested:
grow the current segment sample by sample and cut it when the maximum
vertical deviation of the chord from the enclosed samples exceeds a
tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidFunctionError
from repro.core.plf import PiecewiseLinearFunction


def chord_error(times: np.ndarray, values: np.ndarray) -> float:
    """Max |sample - chord| over the samples between two anchor points."""
    if times.size <= 2:
        return 0.0
    t0, t1 = times[0], times[-1]
    v0, v1 = values[0], values[-1]
    slope = (v1 - v0) / (t1 - t0)
    approx = v0 + slope * (times - t0)
    return float(np.abs(values - approx).max())


def sliding_window(
    times: np.ndarray, values: np.ndarray, tolerance: float
) -> PiecewiseLinearFunction:
    """Segment ``(times, values)`` with max-deviation <= ``tolerance``.

    Non-adaptive lookahead-free growth: O(n * max_segment_length) in the
    worst case, linear in practice on smooth data.
    """
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.size < 2:
        raise InvalidFunctionError("need at least two samples")
    if tolerance < 0:
        raise InvalidFunctionError("tolerance must be nonnegative")
    anchors = [0]
    start = 0
    i = 2
    while i <= times.size:
        if i < times.size and chord_error(times[start : i + 1], values[start : i + 1]) <= tolerance:
            i += 1
            continue
        cut = i - 1 if i < times.size else times.size - 1
        if cut == start:
            cut = start + 1
        anchors.append(cut)
        start = cut
        i = cut + 2
    if anchors[-1] != times.size - 1:
        anchors.append(times.size - 1)
    idx = np.asarray(sorted(set(anchors)))
    return PiecewiseLinearFunction(times[idx], values[idx])
