"""SWAB: Sliding-Window-And-Bottom-up online segmentation.

Keogh et al.'s hybrid (the reference the paper cites for online
segmentation): keep a small buffer of recent samples, run bottom-up on
the buffer, emit the leftmost segment as final, and refill the buffer
using a sliding-window scan of the incoming stream.  It produces
near-bottom-up quality with online (streaming) operation, which is the
natural fit for the paper's append-style updates.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.core.errors import InvalidFunctionError
from repro.core.plf import PiecewiseLinearFunction, from_samples
from repro.segmentation.bottom_up import bottom_up


def swab(
    times: np.ndarray,
    values: np.ndarray,
    tolerance: float,
    buffer_size: int = 64,
) -> PiecewiseLinearFunction:
    """Online segmentation of a full series via the SWAB scheme."""
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.size < 2:
        raise InvalidFunctionError("need at least two samples")
    if buffer_size < 4:
        raise InvalidFunctionError("buffer_size must be at least 4")

    anchors: List[int] = [0]
    lo = 0
    while lo < times.size - 1:
        hi = min(lo + buffer_size, times.size)
        piece = bottom_up(times[lo:hi], values[lo:hi], tolerance)
        piece_anchor_times = piece.times
        if hi < times.size and piece_anchor_times.size > 2:
            # Emit only the leftmost segment; the rest is re-buffered.
            second_anchor = float(piece_anchor_times[1])
            cut = int(np.searchsorted(times, second_anchor))
        else:
            # Stream exhausted (or buffer collapsed): emit everything.
            cut = hi - 1
        for anchor_time in piece_anchor_times[1:]:
            idx = int(np.searchsorted(times, float(anchor_time)))
            if idx <= cut and idx > anchors[-1]:
                anchors.append(idx)
            if idx >= cut:
                break
        if anchors[-1] < cut:
            anchors.append(cut)
        lo = cut
    if anchors[-1] != times.size - 1:
        anchors.append(times.size - 1)
    idx = np.asarray(sorted(set(anchors)))
    return PiecewiseLinearFunction(times[idx], values[idx])


def segment_stream(
    stream: Iterable[Tuple[float, float]], tolerance: float, buffer_size: int = 64
) -> PiecewiseLinearFunction:
    """Convenience wrapper: collect a ``(t, v)`` stream, then segment."""
    pairs = list(stream)
    times = np.asarray([p[0] for p in pairs])
    values = np.asarray([p[1] for p in pairs])
    raw = from_samples(times, values)
    return swab(raw.times, raw.values, tolerance, buffer_size)
