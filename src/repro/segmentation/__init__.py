"""Time series -> piecewise-linear segmentation (paper Section 1 input)."""

from repro.segmentation.bottom_up import bottom_up
from repro.segmentation.sliding_window import chord_error, sliding_window
from repro.segmentation.swab import segment_stream, swab

__all__ = ["sliding_window", "bottom_up", "swab", "segment_stream", "chord_error"]
