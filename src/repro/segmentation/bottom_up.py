"""Bottom-up time series segmentation.

The adaptive algorithm the segmentation literature (Keogh et al.,
cited in the paper's Section 1) recommends over sliding windows: start
from the finest segmentation and repeatedly merge the adjacent pair
whose merged chord deviates least, until no merge stays within the
tolerance.  Adaptivity — more knots where the series is volatile — is
exactly the property the paper's observation (2) in Section 1 credits
with better approximation per segment.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.errors import InvalidFunctionError
from repro.core.plf import PiecewiseLinearFunction
from repro.segmentation.sliding_window import chord_error


def bottom_up(
    times: np.ndarray, values: np.ndarray, tolerance: float
) -> PiecewiseLinearFunction:
    """Merge-based segmentation with max chord deviation <= tolerance."""
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.size < 2:
        raise InvalidFunctionError("need at least two samples")

    # Doubly linked list of anchor indices.
    prev = list(range(-1, times.size - 1))
    nxt = list(range(1, times.size + 1))
    alive = [True] * times.size
    version = [0] * times.size

    def merge_cost(a: int) -> float:
        """Cost of removing anchor ``a`` (merging its two segments)."""
        left = prev[a]
        right = nxt[a]
        if left < 0 or right >= times.size:
            return float("inf")
        return chord_error(times[left : right + 1], values[left : right + 1])

    heap = []
    for a in range(1, times.size - 1):
        heapq.heappush(heap, (merge_cost(a), a, 0))

    while heap:
        cost, a, ver = heapq.heappop(heap)
        if not alive[a] or ver != version[a]:
            continue
        if cost > tolerance:
            break
        # Remove anchor a; neighbours get new merge costs.
        alive[a] = False
        left, right = prev[a], nxt[a]
        nxt[left] = right
        prev[right] = left
        for neighbour in (left, right):
            if 0 < neighbour < times.size - 1 and alive[neighbour]:
                version[neighbour] += 1
                heapq.heappush(
                    heap, (merge_cost(neighbour), neighbour, version[neighbour])
                )

    idx = [i for i in range(times.size) if alive[i]]
    return PiecewiseLinearFunction(times[idx], values[idx])
