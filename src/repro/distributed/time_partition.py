"""Time-partitioned distributed ranking, with a threshold algorithm.

The harder distributed layout: the time domain is cut into ``p``
slices (:func:`~repro.distributed.partitioner.time_range_partition`) and
node ``i`` stores *every* object restricted to slice ``i``.  A query
interval now spans several nodes, each holding only a partial
aggregate per object, so the coordinator must combine per-node
partials.

Two protocols:

* :meth:`TimePartitionedCluster.query_scatter_gather` — every touched
  node ships **all** ``m`` partial scores; exact, one round, but
  ``O(m * p)`` pairs of communication.
* :meth:`TimePartitionedCluster.query_threshold` — Fagin-style
  Threshold Algorithm: nodes stream their partials in descending
  batches (sorted access); the coordinator random-access-probes the
  other nodes for every newly seen object and stops as soon as the
  running k-th best total reaches the threshold (the sum of the
  current batch frontiers).  Exact, and on skewed data it ships a
  small fraction of the pairs.  Every sorted-access-plus-probe round
  is recorded in :attr:`CommStats.rounds` (with sorted vs random
  splits), so convergence is observable per round, not just in final
  totals.  Sorted access streams from each node's **prefix-list TA
  index** (:mod:`repro.distributed.ta_index`): one CSR kernel pass
  materializes the partial-score row, and the descending order is an
  argpartition prefix extended lazily — a TA round never pays a full
  local top-``m`` sort.

:meth:`TimePartitionedCluster.query_many` serves whole workloads.
``protocol="scatter"`` replays the scatter-gather protocol batched:
per-node partial-score matrices through each shard's CSR kernel,
accumulated in node order (bit-identical float sequence to the scalar
coordinator) and reduced with one columnar top-k pass.
``protocol="threshold"`` runs the **lock-step batched TA**: all live
queries advance their TA rounds together, so each round is one
vectorized sorted-access pass per node (every live query's next batch
from that node's prefix lists) and one batched random-access probe per
node (the union of newly seen ids, scattered back per query), with
per-query early termination masking finished queries out of later
rounds.  Answers, tie-breaks, per-round comm records, and round counts
are bit-identical to looping :meth:`query_threshold` — both paths read
the same canonical prefix streams and the same kernel score rows.

This realizes, at simulation level, the "distributed setting" the
paper's conclusion leaves open.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import NodeUnavailable, PartialResultError
from repro.core.queries import workload_arrays
from repro.core.results import TopKResult, top_k_from_arrays
from repro.distributed.comm import CommStats
from repro.distributed.nodes import (
    StorageNode,
    build_node_methods,
    make_replica_groups,
)
from repro.distributed.partitioner import time_boundaries, time_range_partition
from repro.parallel.executor import ParallelExecutor


class _DeadStream:
    """Stand-in stream for a slot whose node lost every replica.

    Size 0 reads as "exhausted": the TA charges it a 0.0 frontier (the
    same bound an exhausted healthy stream gets) and never slices or
    probes it, so the protocol keeps running over the survivors.
    """

    __slots__ = ()
    size = 0


_DEAD_STREAM = _DeadStream()


class _TAQueryState:
    """Per-query bookkeeping for the lock-step threshold protocol.

    Mirrors the scalar :meth:`TimePartitionedCluster.query_threshold`
    locals exactly — cursors, frontiers, totals dict, seen set, the
    bounded best-k min-heap — plus the per-round comm tallies that are
    replayed into :class:`CommStats` in query order once the whole
    batch has drained.
    """

    __slots__ = (
        "index",
        "t1",
        "t2",
        "k",
        "nodes",
        "streams",
        "cursors",
        "frontiers",
        "totals",
        "seen",
        "best_k",
        "rounds",
        "round_batches",
        "round_probes",
        "new_ids",
        "live",
        "lost",
    )

    def __init__(self, index, t1, t2, k, nodes):
        self.index = index
        self.t1 = t1
        self.t2 = t2
        self.k = k
        self.nodes = nodes
        self.streams = [None] * len(nodes)
        self.cursors = [0] * len(nodes)
        self.frontiers = [0.0] * len(nodes)
        self.totals: Dict[int, float] = {}
        self.seen: set = set()
        self.best_k: List[float] = []
        #: (sorted_msgs, sorted_pairs, random_msgs, random_pairs) per round.
        self.rounds: List[tuple] = []
        self.round_batches: Dict[int, tuple] = {}
        self.round_probes: List[tuple] = []
        self.new_ids: List[int] = []
        self.live = True
        #: Slots whose node lost every replica mid-protocol.
        self.lost: set = set()

    def mark_lost(self, slot: int) -> None:
        """Retire a slot whose node has no surviving replica.

        The slot reads as an exhausted stream from here on (0.0
        frontier, nothing left to slice), which keeps the TA exact
        over the *surviving* slices: the lost slice simply stops
        contributing, and the final answer is flagged with the
        query's coverage.
        """
        if slot in self.lost:
            return
        self.lost.add(slot)
        self.streams[slot] = _DEAD_STREAM
        self.cursors[slot] = 0
        self.frontiers[slot] = 0.0

    def coverage(self) -> float:
        """Fraction of this query's touched slices still serving."""
        return 1.0 - len(self.lost) / max(len(self.nodes), 1)

    def init_frontiers(self) -> None:
        # Guarded like the scalar path: a frontier below 0 is not a
        # valid bound for objects absent from the shard (they
        # contribute exactly 0), so frontiers are clamped at 0.
        self.frontiers = [
            max(stream.score_at(0), 0.0) if stream.size else 0.0
            for stream in self.streams
        ]

    def threshold(self) -> float:
        return float(sum(self.frontiers))

    def kth_best(self) -> float:
        if len(self.best_k) < self.k:
            return -np.inf
        return self.best_k[0]

    def should_continue(self) -> bool:
        return self.kth_best() < self.threshold() and any(
            self.cursors[i] < self.streams[i].size
            for i in range(len(self.nodes))
        )

    def finalize(self) -> TopKResult:
        if not self.totals:
            return TopKResult()
        ids = np.fromiter(
            self.totals.keys(), dtype=np.int64, count=len(self.totals)
        )
        vals = np.fromiter(
            self.totals.values(), dtype=np.float64, count=len(self.totals)
        )
        return top_k_from_arrays(ids, vals, self.k)


class TimePartitionedCluster:
    """A cluster whose shards partition the *time domain*.

    ``executor`` fans the per-node index builds through one
    :class:`~repro.parallel.executor.Session`; built shards are
    byte-identical on every backend.
    """

    def __init__(
        self,
        database: TemporalDatabase,
        num_nodes: int,
        executor: Optional[ParallelExecutor] = None,
        replicas: int = 1,
        fault_plan=None,
        retry_policy=None,
        allow_partial: bool = True,
    ) -> None:
        self.comm = CommStats()
        self.database = database
        self.boundaries = time_boundaries(database, num_nodes)
        partitions = time_range_partition(database, num_nodes, self.boundaries)
        methods = build_node_methods(
            [partition.database for partition in partitions],
            None,
            executor,
        )
        self.nodes: List[StorageNode] = [
            StorageNode(partition.node_id, partition.database, method)
            for partition, method in zip(partitions, methods)
        ]
        self.allow_partial = allow_partial
        self.groups = make_replica_groups(
            self.nodes, replicas, fault_plan, retry_policy
        )
        # The node layout is immutable after construction, so the
        # batched coordinator's global answer columns (union of shard
        # object sets, ascending) and each node's scatter positions
        # are computed once, not per batch.
        self._columns = np.unique(
            np.concatenate([node.object_ids for node in self.nodes])
        )
        self._node_cols = [
            np.searchsorted(self._columns, node.object_ids)
            for node in self.nodes
        ]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def snapshot(self, path) -> "TimePartitionedCluster":
        """Write a durable per-shard snapshot (see the storage tier)."""
        from repro.storage.snapshot import snapshot_cluster

        snapshot_cluster(self, path)
        return self

    @classmethod
    def open(cls, path, verify: bool = True) -> "TimePartitionedCluster":
        """Mount a snapshot written by :meth:`snapshot`: no rebuilds."""
        from repro.storage.snapshot import open_cluster

        cluster = open_cluster(path, verify=verify)
        if not isinstance(cluster, cls):
            raise TypeError(f"{path} does not hold a {cls.__name__} snapshot")
        return cluster

    def _touched_nodes(self, t1: float, t2: float) -> List[StorageNode]:
        touched = []
        for node in self.nodes:
            lo = float(self.boundaries[node.node_id])
            hi = float(self.boundaries[node.node_id + 1])
            if hi > t1 and lo < t2:
                touched.append(node)
        return touched

    # ------------------------------------------------------------------
    def query_scatter_gather(self, t1: float, t2: float, k: int) -> TopKResult:
        """Exact one-round protocol: ship all partials from all nodes."""
        totals: Dict[int, float] = {}
        for node in self._touched_nodes(t1, t2):
            partials = node.partial_scores(t1, t2)
            self.comm.record(len(partials))
            for object_id, score in partials.items():
                totals[object_id] = totals.get(object_id, 0.0) + score
        if not totals:
            return TopKResult()
        ids = np.fromiter(totals.keys(), dtype=np.int64, count=len(totals))
        vals = np.fromiter(totals.values(), dtype=np.float64, count=len(totals))
        return top_k_from_arrays(ids, vals, k)

    # ------------------------------------------------------------------
    # batched serving
    # ------------------------------------------------------------------
    def query_many(
        self,
        queries,
        protocol: str = "scatter",
        batch_size: int = 8,
    ) -> List[TopKResult]:
        """Answer a whole workload through the partitioned layout.

        ``protocol="scatter"`` (default) replays
        :meth:`query_scatter_gather` batched: each touched node
        computes the partial scores of its query slice in one CSR
        kernel pass, the coordinator accumulates per-node partials in
        ascending node order (the scalar coordinator's float-addition
        sequence, so totals are bit-identical), and one columnar top-k
        pass produces every answer.  Answers, tie-breaks, and comm
        totals equal the scalar loop exactly.

        ``protocol="threshold"`` runs the lock-step batched TA: all
        live queries advance their rounds together — one sorted-access
        pass and one batched probe per node per round — with per-query
        early termination.  Answers, per-round comm records, and round
        counts are bit-identical to looping :meth:`query_threshold`
        with the same ``batch_size``.
        """
        t1s, t2s, ks = workload_arrays(queries)
        if t1s.size == 0:
            return []
        if protocol == "threshold":
            return self._threshold_many(t1s, t2s, ks, batch_size)
        if protocol != "scatter":
            from repro.core.errors import ReproError

            raise ReproError(
                f"unknown protocol {protocol!r}; choose scatter or threshold"
            )
        return self._scatter_gather_many(t1s, t2s, ks)

    def _scatter_gather_many(
        self, t1s: np.ndarray, t2s: np.ndarray, ks: np.ndarray
    ) -> List[TopKResult]:
        from repro.approximate.toplists import top_k_rows
        from repro.core.plfstore import _CHUNK_ELEMENTS

        # Global answer columns (precomputed): the canonical top-k
        # order makes the column order irrelevant to answers;
        # ascending ids keep the per-node scatter an exact position
        # array.
        columns = self._columns
        ks = np.asarray(ks, dtype=np.int64)
        # Queries are processed in fixed-size blocks so the dense
        # (block, m) coordinator matrices stay within a bounded
        # footprint (the scalar protocol peaks at O(m)); per-query
        # accumulation order and comm totals are block-invariant.
        step = max(1, _CHUNK_ELEMENTS // max(int(columns.size), 1))
        results: List[TopKResult] = []
        for block_lo in range(0, int(t1s.size), step):
            block = slice(block_lo, block_lo + step)
            results.extend(
                self._scatter_gather_block(
                    t1s[block], t2s[block], ks[block], columns, top_k_rows
                )
            )
        return results

    def _scatter_gather_block(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
        columns: np.ndarray,
        top_k_rows,
    ) -> List[TopKResult]:
        q = int(t1s.size)
        totals = np.zeros((q, columns.size), dtype=np.float64)
        present = np.zeros((q, columns.size), dtype=bool)
        touched = np.zeros(q, dtype=np.int64)
        served = np.zeros(q, dtype=np.int64)
        for group, cols in zip(self.groups, self._node_cols):
            node = group.inner
            lo = float(self.boundaries[node.node_id])
            hi = float(self.boundaries[node.node_id + 1])
            rows = np.flatnonzero((hi > t1s) & (lo < t2s))
            if rows.size == 0:
                continue
            touched[rows] += 1
            try:
                partials = group.call(
                    "partial_scores_many", t1s[rows], t2s[rows]
                )
            except NodeUnavailable:
                # No surviving replica for this slice: the queries it
                # touches lose its contribution and are answered
                # best-effort from the remaining slices.
                continue
            served[rows] += 1
            # Ascending-node accumulation: object totals see the same
            # float-addition sequence as the scalar coordinator's
            # ``totals[id] = totals.get(id, 0.0) + score`` dict walk.
            totals[np.ix_(rows, cols)] += partials
            present[np.ix_(rows, cols)] = True
            self.comm.record_messages(
                int(rows.size), int(rows.size) * node.num_objects
            )
        # Objects absent from every touched node are not candidates
        # (the scalar coordinator never sees them): -inf marks them
        # and per-query k is clamped so a pad can never be selected.
        scores = np.where(present, totals, -np.inf)
        k_eff = np.minimum(ks, present.sum(axis=1))
        results = top_k_rows(columns, scores, k_eff)
        if np.array_equal(served, touched):
            return results
        coverage = np.where(touched > 0, served / np.maximum(touched, 1), 1.0)
        degraded_rows = np.flatnonzero(served < touched)
        for row in degraded_rows:
            results[row] = results[row].with_coverage(float(coverage[row]))
            self.comm.record_degraded(float(coverage[row]))
        if not self.allow_partial:
            worst = float(coverage[degraded_rows].min())
            raise PartialResultError(
                f"{degraded_rows.size} queries lost time slices "
                "(no surviving replica)",
                result=results,
                coverage=worst,
            )
        return results

    # ------------------------------------------------------------------
    def query_threshold(
        self, t1: float, t2: float, k: int, batch_size: int = 8
    ) -> TopKResult:
        """Exact TA protocol: sorted access in batches + random probes.

        Sorted access streams from each node's prefix-list TA index —
        no node ever sorts past the prefix the coordinator actually
        consumes — and random-access probes gather from the same
        cached score rows, so stream and probe values are mutually
        consistent (and bit-identical to ``obj.score``).

        Frontier guard: a batch frontier is ``max(last served score,
        0.0)``.  The raw last-score frontier assumes nonnegative
        partials — an object *absent* from a shard contributes exactly
        0 to its total, which would exceed a negative frontier and
        break the threshold's upper-bound property; the clamp keeps
        the TA exact when score functions go negative (Section 4) and
        is a bitwise no-op on nonnegative data.
        """
        nodes = self._touched_nodes(t1, t2)
        if not nodes or k <= 0:
            return TopKResult()
        streams = [node.ta_stream(t1, t2) for node in nodes]
        cursors = [0] * len(nodes)
        frontiers = [
            max(stream.score_at(0), 0.0) if stream.size else 0.0
            for stream in streams
        ]
        totals: Dict[int, float] = {}
        seen: set = set()
        # Bounded min-heap of the k best running totals.  A total is
        # final the round it is resolved (random access probes every
        # node for a newly seen object exactly once), so the k-th best
        # is maintained in O(log k) per object instead of re-sorting
        # all totals on every batch round.
        best_k: List[float] = []

        def threshold() -> float:
            return float(sum(frontiers))

        def kth_best() -> float:
            if len(best_k) < k:
                return -np.inf
            return best_k[0]

        while kth_best() < threshold() and any(
            cursors[i] < streams[i].size for i in range(len(nodes))
        ):
            # One TA round: a sorted-access batch from every stream
            # plus the random-access probes it triggers, recorded as
            # one CommStats round.
            self.comm.start_round()
            new_ids: List[int] = []
            for i, stream in enumerate(streams):
                lo = cursors[i]
                hi = min(lo + batch_size, stream.size)
                if hi > lo:
                    ids, scores = stream.slice(lo, hi)
                    self.comm.record_sorted(hi - lo)
                    for object_id in ids:
                        if object_id not in seen:
                            seen.add(object_id)
                            new_ids.append(object_id)
                    cursors[i] = hi
                    frontiers[i] = max(scores[-1], 0.0)
                else:
                    # Exhausted stream: every shard object was already
                    # streamed, and objects absent from the shard
                    # contribute exactly 0 — so 0.0 is the tight bound
                    # regardless of sign.
                    frontiers[i] = 0.0
            # Random access: resolve full totals for newly seen objects.
            if new_ids:
                arr = np.asarray(new_ids, dtype=np.int64)
                for stream in streams:
                    present, values = stream.probe(new_ids)
                    self.comm.record_random(int(values.size))
                    for object_id, score in zip(
                        arr[present].tolist(), values.tolist()
                    ):
                        totals[object_id] = (
                            totals.get(object_id, 0.0) + score
                        )
                for object_id in new_ids:
                    if object_id not in totals:
                        continue
                    value = totals[object_id]
                    if len(best_k) < k:
                        heapq.heappush(best_k, value)
                    elif value > best_k[0]:
                        heapq.heapreplace(best_k, value)
            self.comm.end_round()
        if not totals:
            return TopKResult()
        ids = np.fromiter(totals.keys(), dtype=np.int64, count=len(totals))
        vals = np.fromiter(totals.values(), dtype=np.float64, count=len(totals))
        return top_k_from_arrays(ids, vals, k)

    # ------------------------------------------------------------------
    # lock-step batched TA
    # ------------------------------------------------------------------
    def _threshold_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
        batch_size: int,
    ) -> List[TopKResult]:
        """All queries' TA rounds in lock-step, batched per node.

        Each global round performs (a) **one sorted-access pass per
        node** — :meth:`StorageNode.sorted_access_many` serves every
        live query's next batch from that node's prefix lists — and
        (b) **one batched random-access probe per node** —
        :meth:`StorageNode.probe_partials_many` resolves the union of
        newly seen ids in a single vectorized lookup, scattered back
        per query.  Per-query state then advances with exactly the
        scalar :meth:`query_threshold` logic (same cursors, frontier
        clamps, heap updates, termination test), so each query's round
        sequence is bit-identical to its scalar run; finished queries
        drop out of later rounds.

        Comm accounting: rounds for different queries interleave in
        wall time, so per-query round tallies are buffered and
        replayed into :attr:`comm` in query order afterwards — the
        rounds list (with sorted/random splits) and the totals equal
        the scalar per-query loop exactly.
        """
        num_queries = int(t1s.size)
        results: List[Optional[TopKResult]] = [None] * num_queries
        states: List[_TAQueryState] = []
        # Vectorized _touched_nodes: same boundary comparisons, one
        # (q, nodes) pass instead of a Python scan per query.
        bounds = np.asarray(self.boundaries, dtype=np.float64)
        touched_matrix = (bounds[None, 1:] > t1s[:, None]) & (
            bounds[None, :-1] < t2s[:, None]
        )
        for j in range(num_queries):
            t1, t2, k = float(t1s[j]), float(t2s[j]), int(ks[j])
            groups = [self.groups[i] for i in np.flatnonzero(touched_matrix[j])]
            if not groups or k <= 0:
                results[j] = TopKResult()
                continue
            states.append(_TAQueryState(j, t1, t2, k, groups))
        if states:
            # Membership lists per node, built once: which (state,
            # stream slot) pairs read from each node's replica group.
            per_node: Dict[int, tuple] = {}
            for state in states:
                for slot, group in enumerate(state.nodes):
                    per_node.setdefault(group.node_id, (group, []))[1].append(
                        (state, slot)
                    )
            # Stream creation: one kernel pass per node covering every
            # query that touches it, served through the replica group
            # (retry + failover); a node with no surviving replica
            # retires its slot in every touching query.
            for group, members in per_node.values():
                try:
                    streams = group.call(
                        "ta_streams",
                        [state.t1 for state, _ in members],
                        [state.t2 for state, _ in members],
                    )
                except NodeUnavailable:
                    for state, slot in members:
                        state.mark_lost(slot)
                    continue
                for (state, slot), stream in zip(members, streams):
                    state.streams[slot] = stream
            for state in states:
                state.init_frontiers()
                state.live = state.should_continue()
            live = [state for state in states if state.live]
            for state in states:
                if not state.live:
                    results[state.index] = self._finish_state(state)
            while live:
                self._threshold_round(live, per_node, batch_size)
                still = []
                for state in live:
                    if state.should_continue():
                        still.append(state)
                    else:
                        state.live = False
                        results[state.index] = self._finish_state(state)
                live = still
            # Replay per-query round tallies in query order: the comm
            # log reads exactly as if the scalar loop had run.
            for state in states:
                for s_msgs, s_pairs, r_msgs, r_pairs in state.rounds:
                    self.comm.start_round()
                    if s_msgs:
                        self.comm.record_sorted_messages(s_msgs, s_pairs)
                    if r_msgs:
                        self.comm.record_random_messages(r_msgs, r_pairs)
                    self.comm.end_round()
            if not self.allow_partial:
                lost_states = [state for state in states if state.lost]
                if lost_states:
                    raise PartialResultError(
                        f"{len(lost_states)} queries lost time slices "
                        "(no surviving replica)",
                        result=results,
                        coverage=min(
                            state.coverage() for state in lost_states
                        ),
                    )
        return results

    def _finish_state(self, state: _TAQueryState) -> TopKResult:
        """Finalize one TA query, annotating lost-slice degradation."""
        result = state.finalize()
        if state.lost:
            result = result.with_coverage(state.coverage())
            self.comm.record_degraded(state.coverage())
        return result

    def _threshold_round(
        self,
        live: List[_TAQueryState],
        per_node: Dict[int, tuple],
        batch_size: int,
    ) -> None:
        """One lock-step round over all live queries."""
        # (a) one sorted-access pass per node, through its replica
        # group.  A group whose last replica dies mid-round retires
        # its slot in every live query (the batch it failed to serve
        # reads as an exhausted stream) and the round carries on over
        # the survivors.
        for group, members in per_node.values():
            served = [
                (state, slot)
                for state, slot in members
                if state.live
                and state.cursors[slot] < state.streams[slot].size
            ]
            if not served:
                continue
            try:
                batches = group.call(
                    "sorted_access_many",
                    [state.t1 for state, _ in served],
                    [state.t2 for state, _ in served],
                    [state.cursors[slot] for state, slot in served],
                    batch_size,
                )
            except NodeUnavailable:
                for state, slot in members:
                    if state.live:
                        state.mark_lost(slot)
                continue
            for (state, slot), batch in zip(served, batches):
                state.round_batches[slot] = batch
        # Per-query new-id scan and frontier updates, in each query's
        # own stream order — the scalar loop's iteration exactly.
        for state in live:
            state.new_ids = []
            s_msgs = 0
            s_pairs = 0
            for slot in range(len(state.nodes)):
                batch = state.round_batches.pop(slot, None)
                if batch is not None:
                    ids, scores, hi = batch
                    s_msgs += 1
                    s_pairs += hi - state.cursors[slot]
                    for object_id in ids:
                        if object_id not in state.seen:
                            state.seen.add(object_id)
                            state.new_ids.append(object_id)
                    state.cursors[slot] = hi
                    state.frontiers[slot] = max(scores[-1], 0.0)
                else:
                    state.frontiers[slot] = 0.0
            state.round_probes = [None] * len(state.nodes)
            state.rounds.append((s_msgs, s_pairs, 0, 0))
        # (b) one batched random-access probe per node over the union
        # of newly seen ids (every touched node is probed, as in the
        # scalar protocol).  Lost slots are skipped — a dead slice
        # contributes nothing to any total from here on.
        for group, members in per_node.values():
            probing = [
                (state, slot)
                for state, slot in members
                if state.live and state.new_ids and slot not in state.lost
            ]
            if not probing:
                continue
            try:
                probes = group.call(
                    "probe_partials_many",
                    [state.t1 for state, _ in probing],
                    [state.t2 for state, _ in probing],
                    [state.new_ids for state, _ in probing],
                )
            except NodeUnavailable:
                for state, slot in members:
                    if state.live:
                        state.mark_lost(slot)
                continue
            for (state, slot), probe in zip(probing, probes):
                state.round_probes[slot] = probe
        # Scatter probe results back per query: accumulate totals in
        # ascending node order (the scalar float-addition sequence)
        # and update the best-k heap in new-id order.
        for state in live:
            if not state.new_ids:
                continue
            arr = np.asarray(state.new_ids, dtype=np.int64)
            acc = np.zeros(arr.size, dtype=np.float64)
            any_present = np.zeros(arr.size, dtype=bool)
            r_msgs = 0
            r_pairs = 0
            for probe in state.round_probes:
                if probe is None:
                    # Lost slot (or a node retired this round): no
                    # probe was served, no comm is charged.
                    continue
                present, values = probe
                r_msgs += 1
                r_pairs += int(values.size)
                if values.size:
                    acc[present] += values
                    any_present |= present
            state.totals.update(
                zip(arr[any_present].tolist(), acc[any_present].tolist())
            )
            for object_id in state.new_ids:
                if object_id not in state.totals:
                    continue
                value = state.totals[object_id]
                if len(state.best_k) < state.k:
                    heapq.heappush(state.best_k, value)
                elif value > state.best_k[0]:
                    heapq.heapreplace(state.best_k, value)
            s_msgs, s_pairs, _, _ = state.rounds[-1]
            state.rounds[-1] = (s_msgs, s_pairs, r_msgs, r_pairs)
