"""Time-partitioned distributed ranking, with a threshold algorithm.

The harder distributed layout: the time domain is cut into ``p``
slices and node ``i`` stores *every* object restricted to slice ``i``.
A query interval now spans several nodes, each holding only a partial
aggregate per object, so the coordinator must combine per-node
partials.

Two protocols:

* :meth:`TimePartitionedCluster.query_scatter_gather` — every touched
  node ships **all** ``m`` partial scores; exact, one round, but
  ``O(m * p)`` pairs of communication.
* :meth:`TimePartitionedCluster.query_threshold` — Fagin-style
  Threshold Algorithm: nodes stream their partials in descending
  batches (sorted access); the coordinator random-access-probes the
  other nodes for every newly seen object and stops as soon as the
  running k-th best total reaches the threshold (the sum of the
  current batch frontiers).  Exact, and on skewed data it ships a
  small fraction of the pairs.

This realizes, at simulation level, the "distributed setting" the
paper's conclusion leaves open.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import ReproError
from repro.core.objects import TemporalObject
from repro.core.results import TopKResult, top_k_from_arrays
from repro.distributed.comm import CommStats
from repro.distributed.nodes import StorageNode


class TimePartitionedCluster:
    """A cluster whose shards partition the *time domain*."""

    def __init__(
        self,
        database: TemporalDatabase,
        num_nodes: int,
    ) -> None:
        if num_nodes < 1:
            raise ReproError("need at least one node")
        self.comm = CommStats()
        self.database = database
        t_min, t_max = database.span
        self.boundaries = np.linspace(t_min, t_max, num_nodes + 1)
        self.nodes: List[StorageNode] = []
        for node_id in range(num_nodes):
            lo = float(self.boundaries[node_id])
            hi = float(self.boundaries[node_id + 1])
            objects = []
            for obj in database:
                sliced = obj.function.restricted(lo, hi)
                if sliced is not None:
                    objects.append(
                        TemporalObject(obj.object_id, sliced, obj.label)
                    )
            if objects:
                shard = TemporalDatabase(objects, span=(lo, hi), pad=True)
                self.nodes.append(StorageNode(node_id, shard))

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def _touched_nodes(self, t1: float, t2: float) -> List[StorageNode]:
        touched = []
        for node in self.nodes:
            lo = float(self.boundaries[node.node_id])
            hi = float(self.boundaries[node.node_id + 1])
            if hi > t1 and lo < t2:
                touched.append(node)
        return touched

    # ------------------------------------------------------------------
    def query_scatter_gather(self, t1: float, t2: float, k: int) -> TopKResult:
        """Exact one-round protocol: ship all partials from all nodes."""
        totals: Dict[int, float] = {}
        for node in self._touched_nodes(t1, t2):
            partials = node.partial_scores(t1, t2)
            self.comm.record(len(partials))
            for object_id, score in partials.items():
                totals[object_id] = totals.get(object_id, 0.0) + score
        if not totals:
            return TopKResult()
        ids = np.fromiter(totals.keys(), dtype=np.int64, count=len(totals))
        vals = np.fromiter(totals.values(), dtype=np.float64, count=len(totals))
        return top_k_from_arrays(ids, vals, k)

    def query_threshold(
        self, t1: float, t2: float, k: int, batch_size: int = 8
    ) -> TopKResult:
        """Exact TA protocol: sorted access in batches + random probes."""
        nodes = self._touched_nodes(t1, t2)
        if not nodes:
            return TopKResult()
        # Sorted access streams (lazily materialized per node).
        streams = []
        for node in nodes:
            full = node.sorted_partials(t1, t2)
            streams.append(list(full))
        cursors = [0] * len(nodes)
        frontiers = [
            stream[0].score if stream else 0.0 for stream in streams
        ]
        totals: Dict[int, float] = {}
        seen: set = set()
        # Bounded min-heap of the k best running totals.  A total is
        # final the round it is resolved (random access probes every
        # node for a newly seen object exactly once), so the k-th best
        # is maintained in O(log k) per object instead of re-sorting
        # all totals on every batch round.
        best_k: List[float] = []

        def threshold() -> float:
            return float(sum(frontiers))

        def kth_best() -> float:
            if len(best_k) < k:
                return -np.inf
            return best_k[0]

        while kth_best() < threshold() and any(
            cursors[i] < len(streams[i]) for i in range(len(nodes))
        ):
            new_ids = []
            for i, stream in enumerate(streams):
                lo = cursors[i]
                hi = min(lo + batch_size, len(stream))
                if hi > lo:
                    self.comm.record(hi - lo)
                    for item in stream[lo:hi]:
                        if item.object_id not in seen:
                            seen.add(item.object_id)
                            new_ids.append(item.object_id)
                    cursors[i] = hi
                    frontiers[i] = (
                        stream[hi - 1].score if hi - 1 < len(stream) else 0.0
                    )
                else:
                    frontiers[i] = 0.0
            # Random access: resolve full totals for newly seen objects.
            if new_ids:
                for i, node in enumerate(nodes):
                    probed = node.partial_scores(t1, t2, new_ids)
                    self.comm.record(len(probed))
                    for object_id, score in probed.items():
                        totals[object_id] = totals.get(object_id, 0.0) + score
                for object_id in new_ids:
                    if object_id not in totals:
                        continue
                    value = totals[object_id]
                    if len(best_k) < k:
                        heapq.heappush(best_k, value)
                    elif value > best_k[0]:
                        heapq.heapreplace(best_k, value)
        if not totals:
            return TopKResult()
        ids = np.fromiter(totals.keys(), dtype=np.int64, count=len(totals))
        vals = np.fromiter(totals.values(), dtype=np.float64, count=len(totals))
        return top_k_from_arrays(ids, vals, k)
