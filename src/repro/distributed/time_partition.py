"""Time-partitioned distributed ranking, with a threshold algorithm.

The harder distributed layout: the time domain is cut into ``p``
slices (:func:`~repro.distributed.partitioner.time_range_partition`) and
node ``i`` stores *every* object restricted to slice ``i``.  A query
interval now spans several nodes, each holding only a partial
aggregate per object, so the coordinator must combine per-node
partials.

Two protocols:

* :meth:`TimePartitionedCluster.query_scatter_gather` — every touched
  node ships **all** ``m`` partial scores; exact, one round, but
  ``O(m * p)`` pairs of communication.
* :meth:`TimePartitionedCluster.query_threshold` — Fagin-style
  Threshold Algorithm: nodes stream their partials in descending
  batches (sorted access); the coordinator random-access-probes the
  other nodes for every newly seen object and stops as soon as the
  running k-th best total reaches the threshold (the sum of the
  current batch frontiers).  Exact, and on skewed data it ships a
  small fraction of the pairs.  Every sorted-access-plus-probe round
  is recorded in :attr:`CommStats.rounds`, so convergence is
  observable per round, not just in final totals.

:meth:`TimePartitionedCluster.query_many` serves whole workloads: the
scatter-gather protocol is replayed *batched* — per-node partial-score
matrices through each shard's CSR kernel, accumulated in node order
(bit-identical float sequence to the scalar coordinator) and reduced
with one columnar top-k pass.  The adaptive threshold protocol has no
batched form (each round depends on the previous one's frontier), so
``protocol="threshold"`` replays the scalar rounds per query.

This realizes, at simulation level, the "distributed setting" the
paper's conclusion leaves open.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.queries import workload_arrays
from repro.core.results import TopKResult, top_k_from_arrays
from repro.distributed.comm import CommStats
from repro.distributed.nodes import StorageNode, build_node_methods
from repro.distributed.partitioner import time_boundaries, time_range_partition
from repro.parallel.executor import ParallelExecutor


class TimePartitionedCluster:
    """A cluster whose shards partition the *time domain*.

    ``executor`` fans the per-node index builds through one
    :class:`~repro.parallel.executor.Session`; built shards are
    byte-identical on every backend.
    """

    def __init__(
        self,
        database: TemporalDatabase,
        num_nodes: int,
        executor: Optional[ParallelExecutor] = None,
    ) -> None:
        self.comm = CommStats()
        self.database = database
        self.boundaries = time_boundaries(database, num_nodes)
        partitions = time_range_partition(database, num_nodes, self.boundaries)
        methods = build_node_methods(
            [partition.database for partition in partitions],
            None,
            executor,
        )
        self.nodes: List[StorageNode] = [
            StorageNode(partition.node_id, partition.database, method)
            for partition, method in zip(partitions, methods)
        ]
        # The node layout is immutable after construction, so the
        # batched coordinator's global answer columns (union of shard
        # object sets, ascending) and each node's scatter positions
        # are computed once, not per batch.
        self._columns = np.unique(
            np.concatenate([node.object_ids for node in self.nodes])
        )
        self._node_cols = [
            np.searchsorted(self._columns, node.object_ids)
            for node in self.nodes
        ]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def _touched_nodes(self, t1: float, t2: float) -> List[StorageNode]:
        touched = []
        for node in self.nodes:
            lo = float(self.boundaries[node.node_id])
            hi = float(self.boundaries[node.node_id + 1])
            if hi > t1 and lo < t2:
                touched.append(node)
        return touched

    # ------------------------------------------------------------------
    def query_scatter_gather(self, t1: float, t2: float, k: int) -> TopKResult:
        """Exact one-round protocol: ship all partials from all nodes."""
        totals: Dict[int, float] = {}
        for node in self._touched_nodes(t1, t2):
            partials = node.partial_scores(t1, t2)
            self.comm.record(len(partials))
            for object_id, score in partials.items():
                totals[object_id] = totals.get(object_id, 0.0) + score
        if not totals:
            return TopKResult()
        ids = np.fromiter(totals.keys(), dtype=np.int64, count=len(totals))
        vals = np.fromiter(totals.values(), dtype=np.float64, count=len(totals))
        return top_k_from_arrays(ids, vals, k)

    # ------------------------------------------------------------------
    # batched serving
    # ------------------------------------------------------------------
    def query_many(
        self,
        queries,
        protocol: str = "scatter",
        batch_size: int = 8,
    ) -> List[TopKResult]:
        """Answer a whole workload through the partitioned layout.

        ``protocol="scatter"`` (default) replays
        :meth:`query_scatter_gather` batched: each touched node
        computes the partial scores of its query slice in one CSR
        kernel pass, the coordinator accumulates per-node partials in
        ascending node order (the scalar coordinator's float-addition
        sequence, so totals are bit-identical), and one columnar top-k
        pass produces every answer.  Answers, tie-breaks, and comm
        totals equal the scalar loop exactly.

        ``protocol="threshold"`` replays :meth:`query_threshold` per
        query (the TA's rounds are adaptive — each depends on the
        previous frontier — so there is no cross-query batching), with
        ``batch_size`` forwarded.
        """
        t1s, t2s, ks = workload_arrays(queries)
        if t1s.size == 0:
            return []
        if protocol == "threshold":
            return [
                self.query_threshold(
                    float(t1), float(t2), int(k), batch_size=batch_size
                )
                for t1, t2, k in zip(t1s, t2s, ks)
            ]
        if protocol != "scatter":
            from repro.core.errors import ReproError

            raise ReproError(
                f"unknown protocol {protocol!r}; choose scatter or threshold"
            )
        return self._scatter_gather_many(t1s, t2s, ks)

    def _scatter_gather_many(
        self, t1s: np.ndarray, t2s: np.ndarray, ks: np.ndarray
    ) -> List[TopKResult]:
        from repro.approximate.toplists import top_k_rows
        from repro.core.plfstore import _CHUNK_ELEMENTS

        # Global answer columns (precomputed): the canonical top-k
        # order makes the column order irrelevant to answers;
        # ascending ids keep the per-node scatter an exact position
        # array.
        columns = self._columns
        ks = np.asarray(ks, dtype=np.int64)
        # Queries are processed in fixed-size blocks so the dense
        # (block, m) coordinator matrices stay within a bounded
        # footprint (the scalar protocol peaks at O(m)); per-query
        # accumulation order and comm totals are block-invariant.
        step = max(1, _CHUNK_ELEMENTS // max(int(columns.size), 1))
        results: List[TopKResult] = []
        for block_lo in range(0, int(t1s.size), step):
            block = slice(block_lo, block_lo + step)
            results.extend(
                self._scatter_gather_block(
                    t1s[block], t2s[block], ks[block], columns, top_k_rows
                )
            )
        return results

    def _scatter_gather_block(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
        columns: np.ndarray,
        top_k_rows,
    ) -> List[TopKResult]:
        q = int(t1s.size)
        totals = np.zeros((q, columns.size), dtype=np.float64)
        present = np.zeros((q, columns.size), dtype=bool)
        for node, cols in zip(self.nodes, self._node_cols):
            lo = float(self.boundaries[node.node_id])
            hi = float(self.boundaries[node.node_id + 1])
            rows = np.flatnonzero((hi > t1s) & (lo < t2s))
            if rows.size == 0:
                continue
            partials = node.partial_scores_many(t1s[rows], t2s[rows])
            # Ascending-node accumulation: object totals see the same
            # float-addition sequence as the scalar coordinator's
            # ``totals[id] = totals.get(id, 0.0) + score`` dict walk.
            totals[np.ix_(rows, cols)] += partials
            present[np.ix_(rows, cols)] = True
            self.comm.record_messages(
                int(rows.size), int(rows.size) * node.num_objects
            )
        # Objects absent from every touched node are not candidates
        # (the scalar coordinator never sees them): -inf marks them
        # and per-query k is clamped so a pad can never be selected.
        scores = np.where(present, totals, -np.inf)
        k_eff = np.minimum(ks, present.sum(axis=1))
        return top_k_rows(columns, scores, k_eff)

    # ------------------------------------------------------------------
    def query_threshold(
        self, t1: float, t2: float, k: int, batch_size: int = 8
    ) -> TopKResult:
        """Exact TA protocol: sorted access in batches + random probes."""
        nodes = self._touched_nodes(t1, t2)
        if not nodes:
            return TopKResult()
        # Sorted access streams (lazily materialized per node).
        streams = []
        for node in nodes:
            full = node.sorted_partials(t1, t2)
            streams.append(list(full))
        cursors = [0] * len(nodes)
        frontiers = [
            stream[0].score if stream else 0.0 for stream in streams
        ]
        totals: Dict[int, float] = {}
        seen: set = set()
        # Bounded min-heap of the k best running totals.  A total is
        # final the round it is resolved (random access probes every
        # node for a newly seen object exactly once), so the k-th best
        # is maintained in O(log k) per object instead of re-sorting
        # all totals on every batch round.
        best_k: List[float] = []

        def threshold() -> float:
            return float(sum(frontiers))

        def kth_best() -> float:
            if len(best_k) < k:
                return -np.inf
            return best_k[0]

        while kth_best() < threshold() and any(
            cursors[i] < len(streams[i]) for i in range(len(nodes))
        ):
            # One TA round: a sorted-access batch from every stream
            # plus the random-access probes it triggers, recorded as
            # one CommStats round.
            self.comm.start_round()
            new_ids = []
            for i, stream in enumerate(streams):
                lo = cursors[i]
                hi = min(lo + batch_size, len(stream))
                if hi > lo:
                    self.comm.record(hi - lo)
                    for item in stream[lo:hi]:
                        if item.object_id not in seen:
                            seen.add(item.object_id)
                            new_ids.append(item.object_id)
                    cursors[i] = hi
                    frontiers[i] = (
                        stream[hi - 1].score if hi - 1 < len(stream) else 0.0
                    )
                else:
                    frontiers[i] = 0.0
            # Random access: resolve full totals for newly seen objects.
            if new_ids:
                for i, node in enumerate(nodes):
                    probed = node.partial_scores(t1, t2, new_ids)
                    self.comm.record(len(probed))
                    for object_id, score in probed.items():
                        totals[object_id] = totals.get(object_id, 0.0) + score
                for object_id in new_ids:
                    if object_id not in totals:
                        continue
                    value = totals[object_id]
                    if len(best_k) < k:
                        heapq.heappush(best_k, value)
                    elif value > best_k[0]:
                        heapq.heapreplace(best_k, value)
            self.comm.end_round()
        if not totals:
            return TopKResult()
        ids = np.fromiter(totals.keys(), dtype=np.int64, count=len(totals))
        vals = np.fromiter(totals.values(), dtype=np.float64, count=len(totals))
        return top_k_from_arrays(ids, vals, k)
