"""Communication accounting for the distributed setting.

The paper's conclusion names "extending to the distributed setting" as
an open direction.  When reproducing distributed protocols in-process,
the quantity of interest is the *communication cost*: how many
messages and how many ``(object_id, score)`` pairs cross the network.
:class:`CommStats` tracks both, mirroring how :class:`~repro.storage.
stats.IOStats` tracks block IOs.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Wire size of one (object_id, score) pair: two 8-byte words.
PAIR_BYTES = 16


@dataclass
class CommStats:
    """Message and payload counters for one coordinator."""

    messages: int = 0
    pairs: int = 0

    @property
    def bytes(self) -> int:
        """Payload bytes shipped (16 bytes per pair)."""
        return self.pairs * PAIR_BYTES

    def record(self, num_pairs: int) -> None:
        """One message carrying ``num_pairs`` pairs."""
        self.messages += 1
        self.pairs += int(num_pairs)

    def reset(self) -> None:
        self.messages = 0
        self.pairs = 0
