"""Communication accounting for the distributed setting.

The paper's conclusion names "extending to the distributed setting" as
an open direction.  When reproducing distributed protocols in-process,
the quantity of interest is the *communication cost*: how many
messages and how many ``(object_id, score)`` pairs cross the network.
:class:`CommStats` tracks both in the accounting style of
:class:`~repro.storage.stats.IOStats`:

* scalar ``record`` plus bulk ``record_messages`` counters (a batched
  coordinator charges a whole workload slice in one call, with totals
  identical to the scalar per-message loop),
* :meth:`CommStats.snapshot` / snapshot subtraction, so equivalence
  suites can diff the comm cost of one protocol run in isolation, and
* per-round records for the round-based protocols (the threshold
  algorithm), so convergence behavior is observable — not just final
  totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Wire size of one (object_id, score) pair: two 8-byte words.
PAIR_BYTES = 16


@dataclass(frozen=True)
class CommSnapshot:
    """Immutable view of the counters at a point in time."""

    messages: int = 0
    pairs: int = 0

    @property
    def bytes(self) -> int:
        """Payload bytes shipped (16 bytes per pair)."""
        return self.pairs * PAIR_BYTES

    def __sub__(self, other: "CommSnapshot") -> "CommSnapshot":
        return CommSnapshot(
            messages=self.messages - other.messages,
            pairs=self.pairs - other.pairs,
        )


@dataclass
class RoundRecord:
    """Message/pair counters for one protocol round.

    Beyond the totals, the TA's two access kinds are tracked
    separately — ``sorted_*`` for sorted-access batches, ``random_*``
    for random-access probes — so the comm bill of a threshold run is
    attributable per mechanism (surfaced by
    ``scripts/bench_distributed.py``).  Records written through the
    plain :meth:`CommStats.record` path leave the split fields at 0.
    """

    messages: int = 0
    pairs: int = 0
    sorted_messages: int = 0
    sorted_pairs: int = 0
    random_messages: int = 0
    random_pairs: int = 0


@dataclass
class CommStats:
    """Message and payload counters for one coordinator.

    ``rounds`` holds one :class:`RoundRecord` per protocol round
    opened with :meth:`start_round`; protocols that are not
    round-based (single-round scatter-gather, top-k merges) leave it
    empty.
    """

    messages: int = 0
    pairs: int = 0
    rounds: List[RoundRecord] = field(default_factory=list)
    #: Queries answered best-effort because some partition had no
    #: surviving replica, and each such query's coverage fraction.
    degraded_queries: int = 0
    coverages: List[float] = field(default_factory=list)
    _open_round: Optional[RoundRecord] = field(
        default=None, repr=False, compare=False
    )

    @property
    def bytes(self) -> int:
        """Payload bytes shipped (16 bytes per pair)."""
        return self.pairs * PAIR_BYTES

    def record(self, num_pairs: int) -> None:
        """One message carrying ``num_pairs`` pairs."""
        self.record_messages(1, num_pairs)

    def record_messages(self, num_messages: int, num_pairs: int) -> None:
        """Charge ``num_messages`` messages carrying ``num_pairs`` total.

        The bulk counterpart of :meth:`record` (compare
        :meth:`IOStats.record_reads`): a batched coordinator models a
        whole workload slice — one logical message per query — with
        one counter update, keeping totals identical to the scalar
        per-query loop.
        """
        self.messages += int(num_messages)
        self.pairs += int(num_pairs)
        if self._open_round is not None:
            self._open_round.messages += int(num_messages)
            self._open_round.pairs += int(num_pairs)

    # ------------------------------------------------------------------
    # TA access kinds (attributable comm bill)
    # ------------------------------------------------------------------
    def record_sorted(self, num_pairs: int) -> None:
        """One sorted-access message carrying ``num_pairs`` pairs."""
        self.record_sorted_messages(1, num_pairs)

    def record_sorted_messages(self, num_messages: int, num_pairs: int) -> None:
        """Bulk sorted-access charge (totals + the round's split)."""
        self.record_messages(num_messages, num_pairs)
        if self._open_round is not None:
            self._open_round.sorted_messages += int(num_messages)
            self._open_round.sorted_pairs += int(num_pairs)

    def record_random(self, num_pairs: int) -> None:
        """One random-access probe message carrying ``num_pairs`` pairs."""
        self.record_random_messages(1, num_pairs)

    def record_random_messages(self, num_messages: int, num_pairs: int) -> None:
        """Bulk random-access charge (totals + the round's split)."""
        self.record_messages(num_messages, num_pairs)
        if self._open_round is not None:
            self._open_round.random_messages += int(num_messages)
            self._open_round.random_pairs += int(num_pairs)

    # ------------------------------------------------------------------
    # degradation (fault-tolerant serving)
    # ------------------------------------------------------------------
    def record_degraded(self, coverage: float) -> None:
        """One query answered over ``coverage`` of its data.

        Charged by coordinators when no replica survives for some
        partition a query touches; the per-query coverage list is what
        the chaos bench aggregates into recall-vs-fault-rate curves.
        """
        self.degraded_queries += 1
        self.coverages.append(float(coverage))

    # ------------------------------------------------------------------
    # rounds (threshold-style protocols)
    # ------------------------------------------------------------------
    def start_round(self) -> None:
        """Open a new protocol round; subsequent records charge into it."""
        self._open_round = RoundRecord()
        self.rounds.append(self._open_round)

    def end_round(self) -> None:
        """Close the current round (records then only update totals)."""
        self._open_round = None

    def snapshot(self) -> CommSnapshot:
        """Capture current counter values."""
        return CommSnapshot(self.messages, self.pairs)

    def reset(self) -> None:
        self.messages = 0
        self.pairs = 0
        self.rounds = []
        self.degraded_queries = 0
        self.coverages = []
        self._open_round = None
