"""Storage nodes for the distributed aggregate top-k setting.

A :class:`StorageNode` owns a shard of the data — a per-partition
:class:`~repro.core.database.TemporalDatabase` together with its
columnar :class:`~repro.core.plfstore.CSRView` slice — and a local
ranking index (EXACT3 by default).  Coordinators (see
``object_partition`` / ``time_partition``) talk to nodes only through
the narrow message-like API here, so communication can be accounted
faithfully.

Both the scalar handlers and their vectorized ``*_many`` counterparts
are provided: the batched coordinators slice whole
:class:`~repro.datasets.workload.WorkloadBatch`\\ es per node and call
the vectorized handlers, whose answers, tie-breaks, and modeled IO
charges are bit-identical to looping the scalar ones (the kernel
contract of ``PLFStore``/``query_many``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.plfstore import CSRView
from repro.core.queries import TopKQuery
from repro.core.results import TopKResult
from repro.datasets.workload import WorkloadBatch
from repro.exact.base import RankingMethod
from repro.exact.exact3 import Exact3
from repro.parallel.executor import ParallelExecutor


def build_node_methods(
    databases: Sequence[TemporalDatabase],
    method_factory=None,
    executor: Optional[ParallelExecutor] = None,
) -> List[RankingMethod]:
    """Build one ranking index per shard, fanned through one session.

    ``method_factory`` must be picklable for the process backend (a
    method class like :class:`~repro.exact.exact3.Exact3`, or a
    ``functools.partial`` binding parameters); ``None`` builds EXACT3.
    With a serial (or absent) executor the builds run inline — the
    reference behavior.  Construction is deterministic per shard and
    each method owns a private device, so the built indexes (layout,
    IO counters) are byte-identical on every backend; methods built in
    pool workers are re-bound to the coordinator's shard database
    objects on receipt.
    """
    factory = method_factory if method_factory is not None else Exact3
    count = len(databases)
    if executor is None or executor.is_serial or count < 2:
        return [factory().build(database) for database in databases]
    from repro.parallel.executor import chunk_ranges
    from repro.parallel.workers import node_build_chunk

    chunks = chunk_ranges(count, executor.workers)
    state = (tuple(databases), factory)
    with executor.session(state) as session:
        parts = session.map(node_build_chunk, chunks)
    methods = [method for part in parts for method in part]
    for database, method in zip(databases, methods):
        method.database = database
        rescorer = getattr(method, "rescorer", None)
        if rescorer is not None:
            rescorer.database = database
    return methods


class StorageNode:
    """One shard: a sub-database, its CSR kernel slice, a local index."""

    def __init__(
        self,
        node_id: int,
        database: TemporalDatabase,
        method: Optional[RankingMethod] = None,
    ) -> None:
        self.node_id = node_id
        self.database = database
        self.method = method if method is not None else Exact3()
        # Adopt a prebuilt method only when it was built on this very
        # shard database (the build_node_methods fast path); anything
        # else is (re)built here, preserving the constructor's
        # invariant that the node answers from its own shard.
        if (
            not getattr(self.method, "_built", False)
            or self.method.database is not database
        ):
            self.method.build(database)
        # Warm the shard's columnar store eagerly so serving never
        # pays a first-query snapshot build.
        database.store()

    @property
    def view(self) -> CSRView:
        """The shard's picklable CSR kernel slice (cached on the store)."""
        return self.database.store().csr_view()

    @property
    def num_objects(self) -> int:
        return self.database.num_objects

    @property
    def object_ids(self) -> np.ndarray:
        """The shard's object ids, in storage order."""
        return self.database.store().object_ids

    # ------------------------------------------------------------------
    # message handlers (scalar: the preserved reference protocol)
    # ------------------------------------------------------------------
    def local_top_k(self, t1: float, t2: float, k: int) -> TopKResult:
        """Answer a local aggregate top-k over this shard."""
        k = min(k, self.database.num_objects)
        return self.method.query(TopKQuery(t1, t2, k))

    def partial_scores(
        self, t1: float, t2: float, object_ids: Optional[Sequence[int]] = None
    ) -> Dict[int, float]:
        """Per-object partial aggregates over this shard's time slice.

        With ``object_ids`` the node scores only those objects (the
        random-access probe of the threshold algorithm).
        """
        if object_ids is None:
            ids = self.database.object_ids()
        else:
            ids = np.asarray(object_ids, dtype=np.int64)
        out: Dict[int, float] = {}
        for object_id in ids:
            try:
                obj = self.database.get(int(object_id))
            except Exception:
                continue
            out[int(object_id)] = obj.score(t1, t2)
        return out

    def sorted_partials(self, t1: float, t2: float) -> TopKResult:
        """All local partial scores, descending (the TA's sorted access)."""
        return self.method.query(
            TopKQuery(t1, t2, self.database.num_objects)
        )

    # ------------------------------------------------------------------
    # message handlers (batched: whole workload slices per message)
    # ------------------------------------------------------------------
    def local_top_k_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
        executor: Optional[ParallelExecutor] = None,
    ) -> List[TopKResult]:
        """Batched :meth:`local_top_k`: one vectorized pass per shard.

        Answers (scores, tie-breaks) and the shard index's modeled IO
        charges are identical to looping :meth:`local_top_k` — the
        ``query_many`` equivalence contract, applied per node.
        """
        local_ks = np.minimum(
            np.asarray(ks, dtype=np.int64), self.database.num_objects
        )
        batch = WorkloadBatch(
            np.asarray(t1s, dtype=np.float64),
            np.asarray(t2s, dtype=np.float64),
            local_ks,
        )
        return self.method.query_many(batch, executor=executor)

    def partial_scores_many(
        self, t1s: np.ndarray, t2s: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`partial_scores`: a ``(q, num_objects)`` matrix.

        Row ``j`` holds, in shard storage order, exactly the values the
        scalar handler's dict would (``C_i(t2) - C_i(t1)`` through the
        CSR kernel is bit-identical to ``obj.score``), so coordinators
        can accumulate per-node partials with identical float bits.
        """
        queries = np.stack(
            [
                np.asarray(t1s, dtype=np.float64),
                np.asarray(t2s, dtype=np.float64),
            ],
            axis=1,
        )
        return self.database.store().integrals_many(queries)
