"""Storage nodes for the distributed aggregate top-k setting.

A :class:`StorageNode` owns a shard of the data — a per-partition
:class:`~repro.core.database.TemporalDatabase` together with its
columnar :class:`~repro.core.plfstore.CSRView` slice — and a local
ranking index (EXACT3 by default).  Coordinators (see
``object_partition`` / ``time_partition``) talk to nodes only through
the narrow message-like API here, so communication can be accounted
faithfully.

Both the scalar handlers and their vectorized ``*_many`` counterparts
are provided: the batched coordinators slice whole
:class:`~repro.datasets.workload.WorkloadBatch`\\ es per node and call
the vectorized handlers, whose answers, tie-breaks, and modeled IO
charges are bit-identical to looping the scalar ones (the kernel
contract of ``PLFStore``/``query_many``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.plfstore import CSRView
from repro.core.queries import TopKQuery
from repro.core.results import TopKResult
from repro.datasets.workload import WorkloadBatch
from repro.distributed.ta_index import SortedPrefixList, TANodeIndex
from repro.exact.base import RankingMethod
from repro.exact.exact3 import Exact3
from repro.parallel.executor import ParallelExecutor


def build_node_methods(
    databases: Sequence[TemporalDatabase],
    method_factory=None,
    executor: Optional[ParallelExecutor] = None,
) -> List[RankingMethod]:
    """Build one ranking index per shard, fanned through one session.

    ``method_factory`` must be picklable for the process backend (a
    method class like :class:`~repro.exact.exact3.Exact3`, or a
    ``functools.partial`` binding parameters); ``None`` builds EXACT3.
    With a serial (or absent) executor the builds run inline — the
    reference behavior.  Construction is deterministic per shard and
    each method owns a private device, so the built indexes (layout,
    IO counters) are byte-identical on every backend; methods built in
    pool workers are re-bound to the coordinator's shard database
    objects on receipt.
    """
    factory = method_factory if method_factory is not None else Exact3
    count = len(databases)
    if executor is None or executor.is_serial or count < 2:
        return [factory().build(database) for database in databases]
    from repro.parallel.executor import chunk_ranges
    from repro.parallel.workers import node_build_chunk

    chunks = chunk_ranges(count, executor.workers)
    state = (tuple(databases), factory)
    with executor.session(state) as session:
        parts = session.map(node_build_chunk, chunks)
    methods = [method for part in parts for method in part]
    for database, method in zip(databases, methods):
        method.database = database
        rescorer = getattr(method, "rescorer", None)
        if rescorer is not None:
            rescorer.database = database
    return methods


class StorageNode:
    """One shard: a sub-database, its CSR kernel slice, a local index."""

    def __init__(
        self,
        node_id: int,
        database: TemporalDatabase,
        method: Optional[RankingMethod] = None,
    ) -> None:
        self.node_id = node_id
        self.database = database
        self.method = method if method is not None else Exact3()
        # Adopt a prebuilt method only when it was built on this very
        # shard database (the build_node_methods fast path); anything
        # else is (re)built here, preserving the constructor's
        # invariant that the node answers from its own shard.
        if (
            not getattr(self.method, "_built", False)
            or self.method.database is not database
        ):
            self.method.build(database)
        # Warm the shard's columnar store eagerly so serving never
        # pays a first-query snapshot build.
        database.store()
        self._ta_index: Optional[TANodeIndex] = None

    @property
    def ta_index(self) -> TANodeIndex:
        """The node's prefix-list TA index (built lazily, cached)."""
        if self._ta_index is None:
            self._ta_index = TANodeIndex(self.database.store())
        return self._ta_index

    def reset_ta_index(self) -> None:
        """Drop the TA index's cached streams (cold-start benchmarks).

        Purely a perf event: rebuilt prefix lists are canonical, so
        results never change.
        """
        self._ta_index = None

    @property
    def view(self) -> CSRView:
        """The shard's picklable CSR kernel slice (cached on the store)."""
        return self.database.store().csr_view()

    @property
    def num_objects(self) -> int:
        return self.database.num_objects

    @property
    def object_ids(self) -> np.ndarray:
        """The shard's object ids, in storage order."""
        return self.database.store().object_ids

    # ------------------------------------------------------------------
    # message handlers (scalar: the preserved reference protocol)
    # ------------------------------------------------------------------
    def local_top_k(self, t1: float, t2: float, k: int) -> TopKResult:
        """Answer a local aggregate top-k over this shard."""
        k = min(k, self.database.num_objects)
        return self.method.query(TopKQuery(t1, t2, k))

    def partial_scores(
        self, t1: float, t2: float, object_ids: Optional[Sequence[int]] = None
    ) -> Dict[int, float]:
        """Per-object partial aggregates over this shard's time slice.

        With ``object_ids`` the node scores only those objects (the
        random-access probe of the threshold algorithm).
        """
        if object_ids is None:
            ids = self.database.object_ids()
        else:
            ids = np.asarray(object_ids, dtype=np.int64)
        out: Dict[int, float] = {}
        for object_id in ids:
            try:
                obj = self.database.get(int(object_id))
            except Exception:
                continue
            out[int(object_id)] = obj.score(t1, t2)
        return out

    def sorted_partials(self, t1: float, t2: float) -> TopKResult:
        """All local partial scores, descending (the TA's sorted access).

        The eager full-sort form, kept as a reference handler; the TA
        protocols stream from :meth:`ta_stream` instead, which never
        sorts past the consumed prefix.
        """
        return self.method.query(
            TopKQuery(t1, t2, self.database.num_objects)
        )

    def ta_stream(self, t1: float, t2: float) -> SortedPrefixList:
        """The node's sorted-access stream for one interval.

        Served from the prefix-list TA index: the partial-score row
        comes from one CSR kernel pass (bit-identical to
        ``obj.score``), and descending order is materialized only as
        far as the TA actually reads.
        """
        return self.ta_index.stream(t1, t2)

    def ta_streams(
        self, t1s: Sequence[float], t2s: Sequence[float]
    ) -> List[SortedPrefixList]:
        """Batched :meth:`ta_stream`: one stream per query interval.

        One CSR kernel pass covers every missing score row
        (:meth:`TANodeIndex.streams`); stream ``j`` is the same
        canonical prefix list :meth:`ta_stream` returns for
        ``(t1s[j], t2s[j])``.  This is the lock-step TA's stream-setup
        message — routing it through the node (rather than reaching
        into ``ta_index`` from the coordinator) keeps it on the remote
        API, where fault injection and failover apply.
        """
        return self.ta_index.streams(t1s, t2s)

    # ------------------------------------------------------------------
    # message handlers (batched: whole workload slices per message)
    # ------------------------------------------------------------------
    def local_top_k_many(
        self,
        t1s: np.ndarray,
        t2s: np.ndarray,
        ks: np.ndarray,
        executor: Optional[ParallelExecutor] = None,
    ) -> List[TopKResult]:
        """Batched :meth:`local_top_k`: one vectorized pass per shard.

        Answers (scores, tie-breaks) and the shard index's modeled IO
        charges are identical to looping :meth:`local_top_k` — the
        ``query_many`` equivalence contract, applied per node.
        """
        local_ks = np.minimum(
            np.asarray(ks, dtype=np.int64), self.database.num_objects
        )
        batch = WorkloadBatch(
            np.asarray(t1s, dtype=np.float64),
            np.asarray(t2s, dtype=np.float64),
            local_ks,
        )
        return self.method.query_many(batch, executor=executor)

    def partial_scores_many(
        self, t1s: np.ndarray, t2s: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`partial_scores`: a ``(q, num_objects)`` matrix.

        Row ``j`` holds, in shard storage order, exactly the values the
        scalar handler's dict would (``C_i(t2) - C_i(t1)`` through the
        CSR kernel is bit-identical to ``obj.score``), so coordinators
        can accumulate per-node partials with identical float bits.
        """
        queries = np.stack(
            [
                np.asarray(t1s, dtype=np.float64),
                np.asarray(t2s, dtype=np.float64),
            ],
            axis=1,
        )
        return self.database.store().integrals_many(queries)

    def sorted_access_many(
        self,
        t1s: Sequence[float],
        t2s: Sequence[float],
        cursors: Sequence[int],
        batch_size: int,
    ):
        """One sorted-access pass serving every live query's next batch.

        The lock-step TA's per-round node message: for query ``j`` the
        node returns ``(ids, scores, hi)`` — stream items
        ``[cursors[j], hi)`` with ``hi = min(cursors[j] + batch_size,
        stream size)`` — from its prefix-list index.  All missing
        score rows are materialized in one CSR kernel pass
        (:meth:`TANodeIndex.streams`); per-query slices are exactly
        what the scalar TA reads at the same cursor, so lock-step
        sorted-access order is bit-identical by construction.
        """
        streams = self.ta_index.streams(t1s, t2s)
        out = []
        for stream, cursor in zip(streams, cursors):
            lo = int(cursor)
            hi = min(lo + int(batch_size), stream.size)
            if hi > lo:
                ids, scores = stream.slice(lo, hi)
            else:
                ids, scores = [], []
            out.append((ids, scores, hi))
        return out

    def probe_partials_many(
        self,
        t1s: Sequence[float],
        t2s: Sequence[float],
        id_lists: Sequence[Sequence[int]],
    ):
        """Batched random-access probe over each query's newly seen ids.

        One node message per query (the scalar probe's unit); the
        lookup of the *union* of all queries' ids against the shard's
        object table runs as a single vectorized pass, and scores are
        gathered from the cached TA rows — bit-identical to
        ``partial_scores`` / ``obj.score``.  Returns, per query,
        ``(present_mask, scores_of_present)`` aligned to
        ``id_lists[j]``.
        """
        streams = self.ta_index.streams(t1s, t2s)
        lengths = [len(ids) for ids in id_lists]
        if not lengths:
            return []
        flat = np.concatenate(
            [np.asarray(ids, dtype=np.int64) for ids in id_lists]
        )
        sorted_ids, sorted_rows = self.ta_index._lookup
        pos = np.searchsorted(sorted_ids, flat)
        clamped = np.minimum(pos, sorted_ids.size - 1)
        present_flat = (pos < sorted_ids.size) & (
            sorted_ids[clamped] == flat
        )
        rows_flat = sorted_rows[clamped]
        out = []
        offset = 0
        for stream, length in zip(streams, lengths):
            present = present_flat[offset : offset + length]
            rows = rows_flat[offset : offset + length][present]
            out.append((present, stream.row[rows]))
            offset += length
        return out


# ----------------------------------------------------------------------
# replication (fault-tolerant serving)
# ----------------------------------------------------------------------
class ReplicaGroup:
    """The ``k`` serving endpoints of one shard, with failover.

    A group owns one logical partition.  Its endpoints all answer from
    the *same* shard state (in-process replication replicates the
    serving endpoint, not the bytes), so any live endpoint's answer is
    bit-identical to any other's — which is what makes failover
    invisible in the results.  :meth:`call` is the cluster→node
    chokepoint: each endpoint attempt runs under the group's
    :class:`~repro.faults.retry.RetryPolicy` (transient faults retried
    with backoff); a permanent endpoint failure rotates to the next
    replica; when every replica is gone the group raises a permanent
    :class:`~repro.core.errors.NodeUnavailable` and the coordinator's
    degradation path takes over.
    """

    __slots__ = ("node_id", "endpoints", "retry", "primary", "failovers")

    def __init__(self, node_id: int, endpoints, retry=None) -> None:
        self.node_id = node_id
        self.endpoints = list(endpoints)
        if not self.endpoints:
            raise ValueError("a replica group needs at least one endpoint")
        self.retry = retry
        #: Index of the endpoint currently serving (sticky: a failover
        #: promotes the survivor so later calls skip the corpse).
        self.primary = 0
        self.failovers = 0

    @property
    def inner(self) -> StorageNode:
        """The underlying shard node (unwrap a fault endpoint)."""
        endpoint = self.endpoints[0]
        return getattr(endpoint, "inner", endpoint)

    @property
    def replicas(self) -> int:
        return len(self.endpoints)

    @property
    def alive(self) -> bool:
        """True while at least one endpoint still serves."""
        return any(
            not getattr(endpoint, "dead", False) for endpoint in self.endpoints
        )

    def call(self, name: str, *args, **kwargs):
        """Serve one remote call with retry and replica failover.

        Raises a non-transient :class:`NodeUnavailable` only when
        every replica has failed permanently.
        """
        from repro.core.errors import DeadlineExceeded, NodeUnavailable

        count = len(self.endpoints)
        last = None
        for offset in range(count):
            idx = (self.primary + offset) % count
            endpoint = self.endpoints[idx]
            if getattr(endpoint, "dead", False):
                continue
            func = getattr(endpoint, name)
            try:
                if self.retry is not None:
                    result = self.retry.call(func, *args, **kwargs)
                else:
                    result = func(*args, **kwargs)
            except (NodeUnavailable, DeadlineExceeded) as exc:
                last = exc
                continue
            if idx != self.primary:
                self.failovers += 1
                self.primary = idx
            return result
        raise NodeUnavailable(
            f"node {self.node_id}: all {count} replicas failed",
            node_id=self.node_id,
            transient=False,
        ) from last


def make_replica_groups(
    nodes: Sequence[StorageNode],
    replicas: int = 1,
    fault_plan=None,
    retry_policy=None,
    sleep=None,
) -> List[ReplicaGroup]:
    """One :class:`ReplicaGroup` per shard node.

    The healthy fast path — one replica, no fault plan — serves the
    bare node through a trivial group (no wrapper in the call path),
    so an unfaulted cluster's behavior and accounting are unchanged.
    """
    import time as _time

    from repro.faults.injection import wrap_cluster_nodes

    endpoint_lists = wrap_cluster_nodes(
        nodes,
        fault_plan,
        replicas=replicas,
        sleep=sleep if sleep is not None else _time.sleep,
    )
    return [
        ReplicaGroup(node.node_id, endpoints, retry=retry_policy)
        for node, endpoints in zip(nodes, endpoint_lists)
    ]
