"""Storage nodes for the distributed aggregate top-k setting.

A :class:`StorageNode` owns a shard of the data (a sub-database) and a
local index (EXACT3 by default).  Coordinators (see
``object_partition`` / ``time_partition``) talk to nodes only through
the narrow message-like API here, so communication can be accounted
faithfully.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.queries import TopKQuery
from repro.core.results import TopKResult
from repro.exact.base import RankingMethod
from repro.exact.exact3 import Exact3


class StorageNode:
    """One shard: a sub-database plus a local ranking index."""

    def __init__(
        self,
        node_id: int,
        database: TemporalDatabase,
        method: Optional[RankingMethod] = None,
    ) -> None:
        self.node_id = node_id
        self.database = database
        self.method = method if method is not None else Exact3()
        self.method.build(database)

    @property
    def num_objects(self) -> int:
        return self.database.num_objects

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def local_top_k(self, t1: float, t2: float, k: int) -> TopKResult:
        """Answer a local aggregate top-k over this shard."""
        k = min(k, self.database.num_objects)
        return self.method.query(TopKQuery(t1, t2, k))

    def partial_scores(
        self, t1: float, t2: float, object_ids: Optional[Sequence[int]] = None
    ) -> Dict[int, float]:
        """Per-object partial aggregates over this shard's time slice.

        With ``object_ids`` the node scores only those objects (the
        random-access probe of the threshold algorithm).
        """
        if object_ids is None:
            ids = self.database.object_ids()
        else:
            ids = np.asarray(object_ids, dtype=np.int64)
        out: Dict[int, float] = {}
        for object_id in ids:
            try:
                obj = self.database.get(int(object_id))
            except Exception:
                continue
            out[int(object_id)] = obj.score(t1, t2)
        return out

    def sorted_partials(self, t1: float, t2: float) -> TopKResult:
        """All local partial scores, descending (the TA's sorted access)."""
        return self.method.query(
            TopKQuery(t1, t2, self.database.num_objects)
        )
