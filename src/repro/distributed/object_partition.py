"""Object-partitioned distributed ranking.

Each object lives on exactly one node (hash partitioning), so every
node holds *complete* score functions for its shard.  The coordinator
then needs only each node's local top-k: the global answer is the
k best of the union, exactly — communication is ``p * k`` pairs, one
round.  This is the easy half of the paper's distributed open problem
and the baseline any cleverer protocol must beat.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.database import TemporalDatabase
from repro.core.errors import ReproError
from repro.core.results import TopKResult, select_top_k
from repro.exact.base import RankingMethod
from repro.distributed.comm import CommStats
from repro.distributed.nodes import StorageNode


class ObjectPartitionedCluster:
    """A cluster whose shards partition the *objects*."""

    def __init__(
        self,
        database: TemporalDatabase,
        num_nodes: int,
        method_factory: Optional[Callable[[], RankingMethod]] = None,
    ) -> None:
        if num_nodes < 1:
            raise ReproError("need at least one node")
        if num_nodes > database.num_objects:
            raise ReproError("more nodes than objects")
        self.comm = CommStats()
        shards: List[List] = [[] for _ in range(num_nodes)]
        for obj in database:
            shards[obj.object_id % num_nodes].append(obj)
        self.nodes = []
        for node_id, objects in enumerate(shards):
            if not objects:
                continue
            shard_db = TemporalDatabase(
                objects, span=database.span, pad=database.padded
            )
            method = method_factory() if method_factory else None
            self.nodes.append(StorageNode(node_id, shard_db, method))

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def query(self, t1: float, t2: float, k: int) -> TopKResult:
        """Exact global top-k: merge each node's local top-k."""
        candidates = []
        for node in self.nodes:
            local = node.local_top_k(t1, t2, k)
            self.comm.record(len(local))
            candidates.extend((item.object_id, item.score) for item in local)
        return select_top_k(candidates, k)
