"""Object-partitioned distributed ranking.

Each object lives on exactly one node (hash partitioning via
:func:`~repro.distributed.partitioner.hash_partition`), so every node
holds *complete* score functions for its shard.  The coordinator then
needs only each node's local top-k: the global answer is the k best of
the union, exactly — communication is ``p * k`` pairs, one round.
This is the easy half of the paper's distributed open problem and the
baseline any cleverer protocol must beat.

Serving tier
------------
:meth:`ObjectPartitionedCluster.query` is the preserved scalar
protocol; :meth:`ObjectPartitionedCluster.query_many` serves a whole
:class:`~repro.datasets.workload.WorkloadBatch` by handing each node
its full query slice (answered through the node's vectorized
``query_many``) and merging with the columnar k-way merge in
:mod:`repro.core.results`.  Answers, tie-breaks, per-node modeled IO
charges, and :class:`~repro.distributed.comm.CommStats` totals are
bit-identical to looping the scalar protocol.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.database import TemporalDatabase
from repro.core.errors import NodeUnavailable, PartialResultError
from repro.core.queries import workload_arrays
from repro.core.results import TopKResult, merge_top_k_many, select_top_k
from repro.exact.base import RankingMethod
from repro.distributed.comm import CommStats
from repro.distributed.nodes import (
    StorageNode,
    build_node_methods,
    make_replica_groups,
)
from repro.distributed.partitioner import hash_partition
from repro.parallel.executor import ParallelExecutor


class ObjectPartitionedCluster:
    """A cluster whose shards partition the *objects*.

    ``executor`` fans the per-node index builds through one
    :class:`~repro.parallel.executor.Session` (the PR 3 build
    executor); the built shards are byte-identical on every backend.

    Fault tolerance: ``replicas`` endpoints serve each shard
    (failover between them is answer-invisible — same shard state),
    ``fault_plan`` injects deterministic chaos, ``retry_policy``
    governs every coordinator→node call in :meth:`query_many`.  When
    every replica of some shard is gone, the batched path degrades:
    with ``allow_partial`` (the default) it answers best-effort over
    the surviving shards, annotating each result with its coverage
    (fraction of objects still reachable); otherwise it raises
    :class:`~repro.core.errors.PartialResultError`.
    """

    def __init__(
        self,
        database: TemporalDatabase,
        num_nodes: int,
        method_factory: Optional[Callable[[], RankingMethod]] = None,
        executor: Optional[ParallelExecutor] = None,
        replicas: int = 1,
        fault_plan=None,
        retry_policy=None,
        allow_partial: bool = True,
    ) -> None:
        self.comm = CommStats()
        partitions = hash_partition(database, num_nodes)
        methods = build_node_methods(
            [partition.database for partition in partitions],
            method_factory,
            executor,
        )
        self.nodes = [
            StorageNode(partition.node_id, partition.database, method)
            for partition, method in zip(partitions, methods)
        ]
        self.allow_partial = allow_partial
        self.groups = make_replica_groups(
            self.nodes, replicas, fault_plan, retry_policy
        )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def snapshot(self, path) -> "ObjectPartitionedCluster":
        """Write a durable per-shard snapshot (see the storage tier)."""
        from repro.storage.snapshot import snapshot_cluster

        snapshot_cluster(self, path)
        return self

    @classmethod
    def open(cls, path, verify: bool = True) -> "ObjectPartitionedCluster":
        """Mount a snapshot written by :meth:`snapshot`: no rebuilds."""
        from repro.storage.snapshot import open_cluster

        cluster = open_cluster(path, verify=verify)
        if not isinstance(cluster, cls):
            raise TypeError(f"{path} does not hold a {cls.__name__} snapshot")
        return cluster

    def query(self, t1: float, t2: float, k: int) -> TopKResult:
        """Exact global top-k: merge each node's local top-k."""
        candidates = []
        for node in self.nodes:
            local = node.local_top_k(t1, t2, k)
            self.comm.record(len(local))
            candidates.extend((item.object_id, item.score) for item in local)
        return select_top_k(candidates, k)

    def query_many(
        self,
        queries,
        executor: Optional[ParallelExecutor] = None,
    ) -> List[TopKResult]:
        """Batched :meth:`query`: answer a whole workload at once.

        Each node receives the full batch (one logical request message
        per query, as in the scalar protocol) and answers it through
        its vectorized ``query_many``; per-query local answers are
        merged columnar (:func:`~repro.core.results.merge_top_k_many`)
        into the canonical global top-k.  Equivalence contract:
        answers, tie-breaks, per-node IO charges, and comm totals are
        bit-identical to looping :meth:`query` over the workload.

        ``executor`` is forwarded to each node's ``query_many``
        (EXACT3 fans query chunks; serial, thread, and process
        backends are answer-identical).

        Every node call goes through the shard's
        :class:`~repro.distributed.nodes.ReplicaGroup` — transient
        faults are retried, a dead replica fails over (the survivor's
        answer is bit-identical, so the merged results equal the
        healthy run's).  A shard with no surviving replica is skipped;
        the merged answers then carry ``coverage`` = the fraction of
        objects still reachable, each query is charged to
        :meth:`CommStats.record_degraded`, and with
        ``allow_partial=False`` the batch raises
        :class:`PartialResultError` carrying the best-effort results.
        """
        t1s, t2s, ks = workload_arrays(queries)
        if t1s.size == 0:
            return []
        per_node: List[List[TopKResult]] = []
        lost_objects = 0
        total_objects = 0
        for group in self.groups:
            total_objects += group.inner.num_objects
            try:
                local = group.call(
                    "local_top_k_many", t1s, t2s, ks, executor=executor
                )
            except NodeUnavailable:
                lost_objects += group.inner.num_objects
                continue
            self.comm.record_messages(
                len(local), sum(len(result) for result in local)
            )
            per_node.append(local)
        if per_node:
            results = merge_top_k_many(per_node, ks)
        else:
            results = [TopKResult() for _ in range(int(t1s.size))]
        if not lost_objects:
            return results
        coverage = 1.0 - lost_objects / max(total_objects, 1)
        results = [result.with_coverage(coverage) for result in results]
        for _ in results:
            self.comm.record_degraded(coverage)
        if not self.allow_partial:
            raise PartialResultError(
                f"{lost_objects}/{total_objects} objects unreachable "
                "(no surviving replica)",
                result=results,
                coverage=coverage,
            )
        return results
