"""Prefix-list TA node index: cheap sorted access for the threshold
algorithm.

The TA's *sorted access* asks a node for its partial scores in
descending order, a batch at a time.  Serving that from the node's
ranking index means one full local top-``m`` query per (query, node)
pair — an ``O(m log m)`` sort (plus index machinery) paid up front even
when the TA terminates after a round or two.  This module is the
cheaper index ROADMAP item 4 calls for:

* one CSR kernel pass (:meth:`~repro.core.plfstore.PLFStore.
  integrals_many`) materializes the node's partial-score *row* for a
  query interval — for a whole batch of intervals at once in the
  lock-step protocol — bit-identical to ``obj.score(t1, t2)`` per
  object (the kernel contract), and
* the descending order is materialized lazily as a **canonical prefix
  list**: an argpartition-based top-``L`` (with exact boundary-tie
  repair, via :func:`~repro.core.results.top_k_order`) that doubles
  on exhaustion instead of ever sorting the whole row.

Because the canonical order (descending score, ascending id) is a
total order, the length-``L`` prefix is unique and every extension
appends without reshuffling — so slices served before and after an
extension, or from a rebuilt list after cache eviction, are identical.
The scalar :meth:`~repro.distributed.time_partition.
TimePartitionedCluster.query_threshold` and the lock-step batched
protocol read the *same* lists, which is what makes their sorted-access
order (and hence rounds, comm, and answers) bit-identical by
construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.plfstore import PLFStore
from repro.core.results import top_k_order

#: Smallest prefix materialized by an extension; doubling starts here
#: so tiny TA batch sizes do not cause a cascade of small repairs.
#: Sized so a typical TA run (a handful of rounds at batch sizes
#: 8-32) is covered by the *first* materialization — selection work
#: is O(m) per extension, so overshooting is far cheaper than
#: repartitioning every few rounds.
_MIN_PREFIX = 64

#: Default number of query intervals whose prefix lists a node keeps
#: cached.  Sized to hold a whole serving batch per node; eviction is
#: purely a perf event (a rebuilt list is canonical, hence identical).
DEFAULT_CACHE_CAPACITY = 1024


class SortedPrefixList:
    """One node's descending partial-score stream for one interval.

    Holds the full score *row* (storage order, from one kernel pass)
    plus a lazily extended canonical prefix.  The stream the TA sees
    is ``(ids[i], scores[i])`` for ``i < size`` in canonical order;
    only the prefix actually consumed is ever materialized.
    """

    __slots__ = ("object_ids", "row", "size", "_ids", "_scores", "_lookup")

    def __init__(
        self,
        object_ids: np.ndarray,
        row: np.ndarray,
        lookup: Tuple[np.ndarray, np.ndarray],
    ) -> None:
        self.object_ids = object_ids
        self.row = row
        self.size = int(row.size)
        self._ids: list = []
        self._scores: list = []
        self._lookup = lookup

    @property
    def prefix_length(self) -> int:
        """How much of the canonical order is materialized."""
        return len(self._ids)

    def ensure(self, upto: int) -> None:
        """Extend the canonical prefix to cover at least ``upto`` items.

        Extensions at least double (from :data:`_MIN_PREFIX`), so the
        amortized selection work stays ``O(m)`` per stream no matter
        how small the TA's batch size is.  The recomputed prefix is
        the unique canonical top-``L``, so previously served slices
        are unchanged.
        """
        have = len(self._ids)
        if have >= self.size or have >= upto:
            return
        target = min(self.size, max(int(upto), 2 * have, _MIN_PREFIX))
        order = top_k_order(self.object_ids, self.row, target)
        self._ids = self.object_ids[order].tolist()
        self._scores = self.row[order].tolist()

    def slice(self, lo: int, hi: int) -> Tuple[list, list]:
        """Stream items ``[lo, hi)`` as parallel (ids, scores) lists."""
        self.ensure(hi)
        return self._ids[lo:hi], self._scores[lo:hi]

    def score_at(self, index: int) -> float:
        """The stream's score at position ``index`` (0-based)."""
        self.ensure(index + 1)
        return self._scores[index]

    def probe(self, ids: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Random access: ``(present_mask, scores_of_present)``.

        ``present_mask`` is aligned to ``ids``; scores are gathered
        from the cached row (one vectorized lookup), so probe values
        are bit-identical to the sorted-access scores for the same
        object — the consistency the TA's threshold needs.
        """
        sorted_ids, sorted_rows = self._lookup
        arr = np.asarray(ids, dtype=np.int64)
        pos = np.searchsorted(sorted_ids, arr)
        clamped = np.minimum(pos, sorted_ids.size - 1)
        present = (pos < sorted_ids.size) & (sorted_ids[clamped] == arr)
        rows = sorted_rows[clamped[present]]
        return present, self.row[rows]

    def __repr__(self) -> str:
        return (
            f"SortedPrefixList(size={self.size}, "
            f"prefix={self.prefix_length})"
        )


class TANodeIndex:
    """Per-node LRU of :class:`SortedPrefixList`\\ s keyed by interval.

    ``streams`` materializes the score rows of every *missing* key in
    one :meth:`~repro.core.plfstore.PLFStore.integrals_many` kernel
    pass — the "one sorted-access kernel pass per node" of the
    lock-step protocol.  Eviction never changes results: a rebuilt
    list recomputes the same row and the same canonical prefix.
    """

    def __init__(
        self, store: PLFStore, capacity: int = DEFAULT_CACHE_CAPACITY
    ) -> None:
        self._store = store
        self.object_ids = store.object_ids
        order = np.argsort(self.object_ids, kind="stable")
        # Shared id -> storage-row lookup for random-access probes.
        self._lookup = (self.object_ids[order], order)
        self.capacity = int(capacity)
        self._cache: "OrderedDict[Tuple[float, float], SortedPrefixList]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._cache)

    def streams(
        self, t1s: Sequence[float], t2s: Sequence[float]
    ) -> List[SortedPrefixList]:
        """The prefix lists for a batch of intervals (created as needed).

        Duplicate intervals share one list; all missing rows come from
        a single ``integrals_many`` call.
        """
        keys = [(float(t1), float(t2)) for t1, t2 in zip(t1s, t2s)]
        missing: List[Tuple[float, float]] = []
        queued = set()
        for key in keys:
            if key not in self._cache and key not in queued:
                queued.add(key)
                missing.append(key)
        if missing:
            rows = self._store.integrals_many(
                np.asarray(missing, dtype=np.float64)
            )
            for key, row in zip(missing, rows):
                self._cache[key] = SortedPrefixList(
                    self.object_ids, row, self._lookup
                )
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
        out = []
        for key in keys:
            stream = self._cache.get(key)
            if stream is None:
                # Evicted within this very call (capacity smaller than
                # the batch): rebuild standalone; canonical, identical.
                row = self._store.integrals_many(
                    np.asarray([key], dtype=np.float64)
                )[0]
                stream = SortedPrefixList(self.object_ids, row, self._lookup)
            else:
                self._cache.move_to_end(key)
            out.append(stream)
        return out

    def stream(self, t1: float, t2: float) -> SortedPrefixList:
        """The prefix list for one interval (the scalar TA's source)."""
        return self.streams([t1], [t2])[0]
