"""Partition construction for the distributed serving tier.

The clusters' two shard layouts — object-hash and time-range
partitioning (paper Section 7's scale-out discussion; the LSST
multi-petabyte partitioning playbook in PAPERS.md) — used to be built
inline by each cluster constructor.  This module is the one place
partitions come from, so the splitters can be tested directly for the
properties the serving tier relies on:

* the shards are a **disjoint cover** of the database (every object /
  every unit of mass lands on exactly one node),
* the split is **deterministic** — a pure function of the database
  contents, so re-partitioning a regenerated (same-seed) database
  yields identical shards on every host, and
* the ``num_nodes`` edge cases hold (one node degenerates to the
  centralized database; empty shards are dropped rather than built).

Each splitter returns :class:`Partition` records carrying the shard
database plus the metadata the coordinator needs (node id, time
range).  The shard databases are plain :class:`~repro.core.database.
TemporalDatabase` objects, so every piece of the shared kernel —
``PLFStore``/``CSRView``, the batched ``query_many`` pipelines, the
parallel build executor — applies per node unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.errors import ReproError
from repro.core.objects import TemporalObject


@dataclass(frozen=True)
class Partition:
    """One shard: its node id, database, and (for time splits) range."""

    node_id: int
    database: TemporalDatabase
    #: The shard's time slice ``[lo, hi)`` — the full span for object
    #: partitions.
    time_range: Tuple[float, float]


def hash_partition(
    database: TemporalDatabase, num_nodes: int
) -> List[Partition]:
    """Object-hash split: object ``i`` lives on node ``i % num_nodes``.

    Every node holds *complete* score functions for its shard, so a
    local index answers local top-k exactly.  Shards that receive no
    objects are dropped (their node ids simply never appear).
    """
    if num_nodes < 1:
        raise ReproError("need at least one node")
    if num_nodes > database.num_objects:
        raise ReproError("more nodes than objects")
    shards: List[List[TemporalObject]] = [[] for _ in range(num_nodes)]
    for obj in database:
        shards[obj.object_id % num_nodes].append(obj)
    partitions: List[Partition] = []
    for node_id, objects in enumerate(shards):
        if not objects:
            continue
        shard_db = TemporalDatabase(
            objects, span=database.span, pad=database.padded
        )
        partitions.append(Partition(node_id, shard_db, database.span))
    return partitions


def replica_placement(
    num_partitions: int, replicas: int, num_hosts: Optional[int] = None
) -> List[List[int]]:
    """Chained-declustering placement of ``replicas`` copies per shard.

    Returns, per partition, the ``replicas`` host ids serving it:
    partition ``i``'s copies land on hosts ``(i + r) % num_hosts`` for
    ``r in range(replicas)``.  The properties the fault-tolerant
    serving tier relies on (and the tests assert):

    * a partition's replicas occupy **distinct hosts** (requires
      ``replicas <= num_hosts``), so one host death loses at most one
      copy of any shard;
    * the placement is **balanced** — every host serves exactly
      ``num_partitions * replicas / num_hosts`` copies when hosts
      divide evenly (and within one otherwise);
    * losing any single host leaves every partition covered whenever
      ``replicas >= 2``.

    ``num_hosts`` defaults to ``num_partitions`` (the in-process
    clusters' layout: one primary host per shard, replicas chained
    onto neighbors).
    """
    if num_partitions < 1:
        raise ReproError("need at least one partition")
    if num_hosts is None:
        num_hosts = num_partitions
    if replicas < 1:
        raise ReproError("need at least one replica")
    if replicas > num_hosts:
        raise ReproError(
            f"cannot place {replicas} replicas on {num_hosts} hosts "
            "without co-locating copies of a shard"
        )
    return [
        [(i + r) % num_hosts for r in range(replicas)]
        for i in range(num_partitions)
    ]


def time_boundaries(database: TemporalDatabase, num_nodes: int) -> np.ndarray:
    """The ``num_nodes + 1`` equal-width slice boundaries over the span."""
    if num_nodes < 1:
        raise ReproError("need at least one node")
    t_min, t_max = database.span
    return np.linspace(t_min, t_max, num_nodes + 1)


def time_range_partition(
    database: TemporalDatabase,
    num_nodes: int,
    boundaries: Optional[np.ndarray] = None,
) -> List[Partition]:
    """Time-range split: node ``i`` stores every object clipped to slice ``i``.

    Each object's function is restricted (boundary knots interpolated,
    so integrals over any subinterval are conserved) to the slice;
    objects whose span is disjoint from a slice are absent from that
    node.  Slices that end up with no objects are dropped.
    """
    if boundaries is None:
        boundaries = time_boundaries(database, num_nodes)
    partitions: List[Partition] = []
    for node_id in range(num_nodes):
        lo = float(boundaries[node_id])
        hi = float(boundaries[node_id + 1])
        objects = []
        for obj in database:
            sliced = obj.function.restricted(lo, hi)
            if sliced is not None:
                objects.append(TemporalObject(obj.object_id, sliced, obj.label))
        if objects:
            shard = TemporalDatabase(objects, span=(lo, hi), pad=True)
            partitions.append(Partition(node_id, shard, (lo, hi)))
    return partitions
