"""Distributed aggregate top-k (the paper's open direction)."""

from repro.distributed.comm import (
    PAIR_BYTES,
    CommSnapshot,
    CommStats,
    RoundRecord,
)
from repro.distributed.nodes import (
    ReplicaGroup,
    StorageNode,
    build_node_methods,
    make_replica_groups,
)
from repro.distributed.object_partition import ObjectPartitionedCluster
from repro.distributed.partitioner import (
    Partition,
    hash_partition,
    replica_placement,
    time_boundaries,
    time_range_partition,
)
from repro.distributed.ta_index import SortedPrefixList, TANodeIndex
from repro.distributed.time_partition import TimePartitionedCluster

__all__ = [
    "CommSnapshot",
    "CommStats",
    "PAIR_BYTES",
    "Partition",
    "RoundRecord",
    "SortedPrefixList",
    "StorageNode",
    "TANodeIndex",
    "ObjectPartitionedCluster",
    "ReplicaGroup",
    "TimePartitionedCluster",
    "build_node_methods",
    "hash_partition",
    "make_replica_groups",
    "replica_placement",
    "time_boundaries",
    "time_range_partition",
]
