"""Distributed aggregate top-k (the paper's open direction)."""

from repro.distributed.comm import (
    PAIR_BYTES,
    CommSnapshot,
    CommStats,
    RoundRecord,
)
from repro.distributed.nodes import StorageNode, build_node_methods
from repro.distributed.object_partition import ObjectPartitionedCluster
from repro.distributed.partitioner import (
    Partition,
    hash_partition,
    time_boundaries,
    time_range_partition,
)
from repro.distributed.ta_index import SortedPrefixList, TANodeIndex
from repro.distributed.time_partition import TimePartitionedCluster

__all__ = [
    "CommSnapshot",
    "CommStats",
    "PAIR_BYTES",
    "Partition",
    "RoundRecord",
    "SortedPrefixList",
    "StorageNode",
    "TANodeIndex",
    "ObjectPartitionedCluster",
    "TimePartitionedCluster",
    "build_node_methods",
    "hash_partition",
    "time_boundaries",
    "time_range_partition",
]
