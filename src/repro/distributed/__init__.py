"""Distributed aggregate top-k (the paper's open direction)."""

from repro.distributed.comm import PAIR_BYTES, CommStats
from repro.distributed.nodes import StorageNode
from repro.distributed.object_partition import ObjectPartitionedCluster
from repro.distributed.time_partition import TimePartitionedCluster

__all__ = [
    "CommStats",
    "PAIR_BYTES",
    "StorageNode",
    "ObjectPartitionedCluster",
    "TimePartitionedCluster",
]
