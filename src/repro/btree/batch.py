"""Vectorized successor lookups with the exact IO charge of the walks.

The batched query pipelines (``query_many`` on the approximate
structures) snap whole workloads of query endpoints at once.  The
scalar path resolves each endpoint with :meth:`BPlusTree.successor` —
one root-to-leaf descent (``height`` block reads) plus, occasionally,
one next-leaf hop when the landed leaf's entries all precede the key.
Re-walking the tree per endpoint would keep the Python-per-query cost
the batch is meant to remove, so this module computes, for every
lookup key in one pass over the *bulk-loaded key array*:

* the successor's entry index (the snapped breakpoint row), and
* exactly how many block reads the scalar walk would have charged.

The model is valid only for trees still in bulk-loaded form (leaves
packed to capacity in key order; ``tree.bulk_layout``) — the same
precondition as EXACT2's batched Equation-(2) IO model.  Callers fall
back to real walks otherwise.

Walk replication
----------------
``InternalNode.child_index_for`` routes with ``searchsorted(separators,
key, side="right")`` and bulk-built separators are the child-min keys,
so the descent lands in the *last* leaf whose minimum key is ``<=
key`` (the first leaf when the key precedes everything).  With the
global successor position ``s = searchsorted(keys, key, "left")``:

* ``keys[s] == key``: the landed leaf is ``s``'s own leaf (its min is
  ``<= key``), so the walk never hops;
* ``keys[s] > key``: the landed leaf is the one holding ``s - 1``, and
  the walk pays one extra read iff ``s`` starts the next leaf;
* ``s == n`` (no successor): the descent lands in the rightmost leaf
  and returns ``None`` without touching another block.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def modeled_successor_many(
    keys: np.ndarray,
    lookups: np.ndarray,
    leaf_capacity: int,
    height: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Successor indices and walk IO charges for many lookups at once.

    Parameters
    ----------
    keys:
        The tree's bulk-loaded key array, ascending (the same array
        ``bulk_load`` received).
    lookups:
        Lookup keys, any shape ``(q,)``.
    leaf_capacity, height:
        The tree's packed-leaf capacity and height.

    Returns ``(succ, exists, reads)``: per lookup the successor's
    entry index (undefined where ``exists`` is False), whether a
    successor exists, and the block reads the scalar
    :meth:`BPlusTree.successor` walk charges for that lookup.
    """
    keys = np.asarray(keys, dtype=np.float64)
    lookups = np.asarray(lookups, dtype=np.float64)
    n = keys.size
    succ = np.searchsorted(keys, lookups, side="left")
    exists = succ < n
    clamped = np.minimum(succ, n - 1)
    tie = exists & (keys[clamped] == lookups)
    landed = np.maximum((succ + tie - 1) // leaf_capacity, 0)
    hops = np.where(exists, succ // leaf_capacity - landed, 0)
    reads = height + hops
    return succ, exists, reads


def supports_model(tree) -> bool:
    """True when ``tree`` is in the packed form the model assumes.

    Trees unpickled from files written before the flag existed report
    False (conservative: the caller takes the real walks instead).
    """
    return bool(getattr(tree, "bulk_layout", False))
