"""B+-tree node payloads stored on the simulated block device.

Each node occupies exactly one block.  Leaves hold parallel numpy
arrays (keys and fixed-width value rows) so scans can process a whole
block vectorized; internal nodes hold separator keys and child block
ids.  Capacities derive from the block size and the declared entry
width, as they would in TPIE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

#: Bytes per leaf entry component: 8-byte float key plus 8 bytes per
#: value column.
KEY_BYTES = 8
VALUE_COLUMN_BYTES = 8
#: Bytes per internal-node router: separator key + child pointer.
ROUTER_BYTES = 16


def leaf_capacity(value_columns: int, block_bytes: int) -> int:
    """Max entries per leaf for rows with ``value_columns`` columns."""
    entry = KEY_BYTES + value_columns * VALUE_COLUMN_BYTES
    return max(2, block_bytes // entry)


def internal_fanout(block_bytes: int) -> int:
    """Max children per internal node."""
    return max(3, block_bytes // ROUTER_BYTES)


@dataclass
class LeafNode:
    """A leaf block: sorted keys, value rows, and a next-leaf pointer."""

    keys: np.ndarray
    values: np.ndarray
    next_leaf: Optional[int] = None

    @property
    def num_entries(self) -> int:
        return int(self.keys.size)

    def check(self) -> None:
        """Structural sanity (used by tests)."""
        assert self.values.shape[0] == self.keys.size
        assert np.all(np.diff(self.keys) >= 0), "leaf keys must be sorted"


@dataclass
class InternalNode:
    """An internal block: separators ``s_1..s_{f-1}`` and ``f`` children.

    Child ``i`` covers keys in ``[s_i, s_{i+1})`` with ``s_0 = -inf``
    and ``s_f = +inf``.
    """

    separators: np.ndarray
    children: List[int] = field(default_factory=list)

    @property
    def num_children(self) -> int:
        return len(self.children)

    def child_for(self, key: float) -> int:
        """Block id of the child subtree that may contain ``key``."""
        idx = int(np.searchsorted(self.separators, key, side="right"))
        return self.children[idx]

    def child_index_for(self, key: float) -> int:
        return int(np.searchsorted(self.separators, key, side="right"))

    def check(self) -> None:
        assert len(self.children) == self.separators.size + 1
        assert np.all(np.diff(self.separators) >= 0)
