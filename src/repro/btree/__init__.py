"""Disk-based B+-tree (bulk load, successor search, scans, inserts)."""

from repro.btree.node import InternalNode, LeafNode, internal_fanout, leaf_capacity
from repro.btree.tree import BPlusTree

__all__ = [
    "BPlusTree",
    "InternalNode",
    "LeafNode",
    "internal_fanout",
    "leaf_capacity",
]
