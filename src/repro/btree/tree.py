"""A disk-based B+-tree over the simulated block device.

This is the workhorse index of the paper: EXACT1 indexes all ``N``
segments by left endpoint in one tree; EXACT2 builds one tree per
object over prefix sums; the approximate structures index breakpoints
with (nested) B+-trees.  Supported operations:

* :meth:`BPlusTree.bulk_load` — ``O(N/B)`` writes after sorting, the
  paper's construction path ("all line segments are sorted ...").
* :meth:`BPlusTree.successor` — first entry with key >= q in
  ``O(log_B N)`` IOs (the stabbing primitive of EXACT2/Equation (2)).
* :meth:`BPlusTree.scan_from` — leaf-chained range scan (EXACT1's
  sequential pass from ``t1`` to ``t2``).
* :meth:`BPlusTree.insert` — single-entry insert with node splits
  (Section 4 updates), ``O(log_B N)`` IOs.
* :meth:`BPlusTree.last_entry` — rightmost entry (EXACT2's update needs
  the running prefix ``sigma_i(I_{i,n_i})``).

Keys are float64; values are fixed-width float64 rows, so a whole leaf
is processed vectorized.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.errors import IndexStateError
from repro.btree.node import (
    InternalNode,
    LeafNode,
    internal_fanout,
    leaf_capacity,
)
from repro.storage.device import BlockDevice


class BPlusTree:
    """B+-tree with numpy leaves on a :class:`BlockDevice`.

    Parameters
    ----------
    device:
        Block device the nodes live on (IO charged per node touch).
    value_columns:
        Width of each value row; determines leaf capacity.
    """

    def __init__(self, device: BlockDevice, value_columns: int) -> None:
        if value_columns < 0:
            raise ValueError("value_columns must be >= 0")
        self.device = device
        self.value_columns = value_columns
        self.leaf_capacity = leaf_capacity(value_columns, device.block_bytes)
        self.fanout = internal_fanout(device.block_bytes)
        self.root_id: Optional[int] = None
        self.height = 0
        self.num_entries = 0
        self._first_leaf: Optional[int] = None
        # True while the tree is exactly its bulk-loaded form (leaves
        # packed to capacity in key order).  The batched successor IO
        # model (repro.btree.batch) relies on that layout; any insert
        # clears the flag and modeled consumers fall back to real walks.
        self.bulk_layout = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def bulk_load(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Build the tree from already-sorted keys (ascending).

        Leaves are packed to capacity and chained; internal levels are
        built bottom-up — the classic sorted bulk load whose IO cost is
        linear in the number of blocks written.
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values.reshape(-1, max(self.value_columns, 1))
        if keys.size != values.shape[0]:
            raise ValueError("keys and values must align")
        if keys.size == 0:
            raise ValueError("cannot bulk load an empty tree")
        if np.any(np.diff(keys) < 0):
            raise ValueError("bulk load requires sorted keys")

        cap = self.leaf_capacity
        leaf_ids = []
        min_keys = []
        for lo in range(0, keys.size, cap):
            hi = min(lo + cap, keys.size)
            leaf = LeafNode(keys=keys[lo:hi].copy(), values=values[lo:hi].copy())
            leaf_ids.append(self.device.allocate(leaf))
            min_keys.append(float(keys[lo]))
        # Chain the leaves left to right.
        for i in range(len(leaf_ids) - 1):
            leaf = self.device.read(leaf_ids[i])
            leaf.next_leaf = leaf_ids[i + 1]
            self.device.write(leaf_ids[i], leaf)
        self._first_leaf = leaf_ids[0]

        level_ids = leaf_ids
        level_mins = min_keys
        height = 1
        while len(level_ids) > 1:
            parent_ids = []
            parent_mins = []
            for lo in range(0, len(level_ids), self.fanout):
                hi = min(lo + self.fanout, len(level_ids))
                node = InternalNode(
                    separators=np.asarray(level_mins[lo + 1 : hi], dtype=np.float64),
                    children=list(level_ids[lo:hi]),
                )
                parent_ids.append(self.device.allocate(node))
                parent_mins.append(level_mins[lo])
            level_ids = parent_ids
            level_mins = parent_mins
            height += 1
        self.root_id = level_ids[0]
        self.height = height
        self.num_entries = int(keys.size)
        self.bulk_layout = True

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _require_built(self) -> None:
        if self.root_id is None:
            raise IndexStateError("B+-tree has not been built")

    def _descend_to_leaf(self, key: float) -> Tuple[int, LeafNode, list]:
        """Walk root -> leaf for ``key``; returns (leaf_id, leaf, path).

        ``path`` holds ``(node_id, child_index)`` for every internal
        node visited (needed by insert splits).
        """
        self._require_built()
        node_id = self.root_id
        path = []
        node = self.device.read(node_id)
        while isinstance(node, InternalNode):
            child_idx = node.child_index_for(key)
            path.append((node_id, child_idx))
            node_id = node.children[child_idx]
            node = self.device.read(node_id)
        return node_id, node, path

    def successor(self, key: float) -> Optional[Tuple[float, np.ndarray]]:
        """First entry ``(k, value_row)`` with ``k >= key``; None if past end."""
        leaf_id, leaf, _ = self._descend_to_leaf(key)
        pos = int(np.searchsorted(leaf.keys, key, side="left"))
        while pos >= leaf.num_entries:
            if leaf.next_leaf is None:
                return None
            leaf = self.device.read(leaf.next_leaf)
            pos = 0
        return float(leaf.keys[pos]), leaf.values[pos]

    def successor_with_blocks(
        self, key: float
    ) -> Tuple[list, Optional[Tuple[float, np.ndarray]]]:
        """The :meth:`successor` walk simulated with uncharged peeks.

        Returns ``(blocks, hit)``: the ordered block-id sequence the
        scalar walk reads (root-to-leaf descent plus any next-leaf
        hops) and the successor entry (``None`` past the end).  The
        cache-aware batched query pipelines replay ``blocks`` through
        :meth:`~repro.storage.device.BlockDevice.replay_reads`, so an
        attached LRU pool sees the identical access stream — hence
        identical hits, charges, and final contents — as the scalar
        per-query loop.  Valid for any tree shape (the walk is
        simulated on the real nodes, not modeled).
        """
        self._require_built()
        blocks = [self.root_id]
        node = self.device.peek(self.root_id)
        while isinstance(node, InternalNode):
            child_id = node.children[node.child_index_for(key)]
            blocks.append(child_id)
            node = self.device.peek(child_id)
        pos = int(np.searchsorted(node.keys, key, side="left"))
        while pos >= node.num_entries:
            if node.next_leaf is None:
                return blocks, None
            blocks.append(node.next_leaf)
            node = self.device.peek(node.next_leaf)
            pos = 0
        return blocks, (float(node.keys[pos]), node.values[pos])

    def predecessor_or_equal(self, key: float) -> Optional[Tuple[float, np.ndarray]]:
        """Last entry ``(k, value_row)`` with ``k <= key``; None if before start."""
        leaf_id, leaf, _ = self._descend_to_leaf(key)
        pos = int(np.searchsorted(leaf.keys, key, side="right")) - 1
        if pos < 0:
            return None
        return float(leaf.keys[pos]), leaf.values[pos]

    def last_entry(self) -> Tuple[float, np.ndarray]:
        """The rightmost (largest-key) entry."""
        self._require_built()
        node_id = self.root_id
        node = self.device.read(node_id)
        while isinstance(node, InternalNode):
            node_id = node.children[-1]
            node = self.device.read(node_id)
        return float(node.keys[-1]), node.values[-1]

    def scan_from(self, key: float) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(keys, values)`` leaf arrays starting at successor(key).

        The first yielded block is trimmed to start at the first entry
        with key >= ``key``; following blocks arrive whole, one IO each
        — EXACT1's sequential scan.
        """
        leaf_id, leaf, _ = self._descend_to_leaf(key)
        pos = int(np.searchsorted(leaf.keys, key, side="left"))
        while True:
            if pos < leaf.num_entries:
                yield leaf.keys[pos:], leaf.values[pos:]
            if leaf.next_leaf is None:
                return
            leaf = self.device.read(leaf.next_leaf)
            pos = 0

    def scan_range(self, lo: float, hi: float) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Leaf blocks restricted to keys in ``[lo, hi]``."""
        for keys, values in self.scan_from(lo):
            if keys.size == 0:
                continue
            if keys[0] > hi:
                return
            mask_hi = int(np.searchsorted(keys, hi, side="right"))
            yield keys[:mask_hi], values[:mask_hi]
            if mask_hi < keys.size:
                return

    def items(self) -> Iterator[Tuple[float, np.ndarray]]:
        """All entries in key order (testing aid; O(N/B) IOs)."""
        self._require_built()
        leaf = self.device.read(self._first_leaf)
        while True:
            for i in range(leaf.num_entries):
                yield float(leaf.keys[i]), leaf.values[i]
            if leaf.next_leaf is None:
                return
            leaf = self.device.read(leaf.next_leaf)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, key: float, value_row: np.ndarray) -> None:
        """Insert one entry, splitting overfull nodes up the path."""
        self.bulk_layout = False
        value_row = np.asarray(value_row, dtype=np.float64).reshape(-1)
        if self.root_id is None:
            leaf = LeafNode(
                keys=np.asarray([key], dtype=np.float64),
                values=value_row.reshape(1, -1),
            )
            self.root_id = self.device.allocate(leaf)
            self._first_leaf = self.root_id
            self.height = 1
            self.num_entries = 1
            return

        leaf_id, leaf, path = self._descend_to_leaf(key)
        pos = int(np.searchsorted(leaf.keys, key, side="right"))
        leaf.keys = np.insert(leaf.keys, pos, key)
        leaf.values = np.insert(leaf.values, pos, value_row, axis=0)
        self.num_entries += 1

        if leaf.num_entries <= self.leaf_capacity:
            self.device.write(leaf_id, leaf)
            return

        # Split the leaf.
        mid = leaf.num_entries // 2
        right = LeafNode(
            keys=leaf.keys[mid:].copy(),
            values=leaf.values[mid:].copy(),
            next_leaf=leaf.next_leaf,
        )
        right_id = self.device.allocate(right)
        leaf.keys = leaf.keys[:mid].copy()
        leaf.values = leaf.values[:mid].copy()
        leaf.next_leaf = right_id
        self.device.write(leaf_id, leaf)
        self._insert_into_parent(path, leaf_id, float(right.keys[0]), right_id)

    def _insert_into_parent(
        self, path: list, left_id: int, separator: float, right_id: int
    ) -> None:
        """Propagate a split upward, possibly growing a new root."""
        if not path:
            root = InternalNode(
                separators=np.asarray([separator], dtype=np.float64),
                children=[left_id, right_id],
            )
            self.root_id = self.device.allocate(root)
            self.height += 1
            return
        parent_id, child_idx = path[-1]
        parent = self.device.read(parent_id)
        parent.separators = np.insert(parent.separators, child_idx, separator)
        parent.children.insert(child_idx + 1, right_id)
        if parent.num_children <= self.fanout:
            self.device.write(parent_id, parent)
            return
        # Split the internal node; the middle separator moves up.
        mid = parent.num_children // 2
        up_separator = float(parent.separators[mid - 1])
        right_node = InternalNode(
            separators=parent.separators[mid:].copy(),
            children=parent.children[mid:],
        )
        right_node_id = self.device.allocate(right_node)
        parent.separators = parent.separators[: mid - 1].copy()
        parent.children = parent.children[:mid]
        self.device.write(parent_id, parent)
        self._insert_into_parent(path[:-1], parent_id, up_separator, right_node_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert sortedness/occupancy across the whole tree (tests)."""
        self._require_built()
        last_key = -np.inf
        count = 0
        for key, _ in self.items():
            assert key >= last_key, "keys out of order across leaves"
            last_key = key
            count += 1
        assert count == self.num_entries, "entry count drifted"

    def __repr__(self) -> str:
        return (
            f"BPlusTree(entries={self.num_entries}, height={self.height}, "
            f"leaf_capacity={self.leaf_capacity}, fanout={self.fanout})"
        )
