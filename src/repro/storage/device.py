"""A simulated block device with IO accounting.

The paper's implementation sits on TPIE, which reads and writes 4 KB
blocks on a real disk and reports block-IO counts.  Reproducing IO
*counts* does not require a physical disk: it requires that every data
structure route each block access through a single chokepoint that
charges one IO per uncached block touch.  :class:`BlockDevice` is that
chokepoint.

Payloads are arbitrary Python objects (typically numpy arrays packed by
the index structures); the device never serializes them, but each block
conceptually occupies exactly ``block_bytes`` bytes, which is how index
sizes are reported (paper Figures 11c, 13a, 14a, 18a, 19a).

Structures decide their own packing via :func:`entries_per_block`.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, Optional, Sequence

from repro.core.errors import BlockDeviceError
from repro.storage.stats import IOStats

__all__ = ["BlockDevice", "BlockDeviceError", "DEFAULT_BLOCK_BYTES", "entries_per_block"]

#: Default block size used throughout the paper's evaluation (Section 5).
DEFAULT_BLOCK_BYTES = 4096


def entries_per_block(entry_bytes: int, block_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
    """How many fixed-size records of ``entry_bytes`` fit in one block.

    Every index structure in this package declares the byte width of its
    record once and derives its fanout / leaf capacity from this helper,
    exactly as a TPIE structure would.
    """
    if entry_bytes <= 0:
        raise ValueError("entry_bytes must be positive")
    capacity = block_bytes // entry_bytes
    if capacity < 1:
        raise ValueError(
            f"entry of {entry_bytes} bytes does not fit in a {block_bytes}-byte block"
        )
    return capacity


class BlockDevice:
    """An in-memory disk made of fixed-size blocks with IO counters.

    Parameters
    ----------
    block_bytes:
        Size of one block; 4096 by default to match the paper.
    cache:
        Optional buffer pool (see :class:`repro.storage.cache.LRUCache`).
        Reads served by the cache are *not* charged as IOs, mirroring the
        OS/page-cache effects the paper remarks on in Section 5.
    name:
        Diagnostic label (useful when a method owns several devices,
        e.g. EXACT2's forest of per-object trees).
    """

    def __init__(
        self,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        cache: Optional["LRUCache"] = None,
        name: str = "device",
        stats: Optional[IOStats] = None,
    ) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.block_bytes = block_bytes
        self.name = name
        # A shared IOStats lets one logical index spread over several
        # devices (EXACT2's forest of per-object files) report one total.
        self.stats = stats if stats is not None else IOStats()
        self._blocks: Dict[int, Any] = {}
        self._next_id = 0
        self._cache = cache
        # Parallel build discipline: every mutation must come from the
        # process that owns the device (the build coordinator).  A
        # fan-out worker inheriting a forked copy may read payloads,
        # but an attempted write there would silently diverge from the
        # coordinator's layout and IO counts — so it raises instead.
        self._owner_pid = os.getpid()
        if cache is not None:
            cache.attach(self)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, payload: Any = None) -> int:
        """Allocate a new block holding ``payload``; returns its id.

        Charged as one write IO (the block must reach disk).
        """
        self._require_coordinator()
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = payload
        self.stats.record_allocation()
        self.stats.record_write()
        if self._cache is not None:
            self._cache.put(block_id, payload)
        return block_id

    def allocate_many(self, payloads: list) -> list:
        """Allocate one block per payload; returns their ids in order.

        Equivalent to calling :meth:`allocate` in a loop — identical id
        sequence and identical IO accounting (one allocation + one
        write per block) — but the counters are updated in bulk, so
        index builders can pack a whole family of lists without a
        Python-level stats round-trip per block.

        This is the ordered bulk-commit chokepoint of the parallel
        builders: workers hand their payloads back to the coordinator,
        which commits them here in task order.
        """
        self._require_coordinator()
        count = len(payloads)
        block_ids = list(range(self._next_id, self._next_id + count))
        self._next_id += count
        for block_id, payload in zip(block_ids, payloads):
            self._blocks[block_id] = payload
            if self._cache is not None:
                self._cache.put(block_id, payload)
        self.stats.record_allocations(count)
        self.stats.record_writes(count)
        return block_ids

    def allocate_run(self, payloads: list) -> list:
        """Allocate a contiguous run of blocks; returns their ids in order.

        Contiguity matters only for documentation purposes — sequential
        ids model sequential disk layout produced by bulk loading.
        """
        return self.allocate_many(payloads)

    def free(self, block_id: int) -> None:
        """Release a block. Freed ids are never reused."""
        self._require_coordinator()
        self._require(block_id)
        del self._blocks[block_id]
        if self._cache is not None:
            self._cache.invalidate(block_id)

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> Any:
        """Read a block, charging one IO unless the buffer pool has it."""
        self._require(block_id)
        if self._cache is not None:
            hit = self._cache.get(block_id)
            if hit is not _MISS:
                self.stats.record_cache_hit()
                return hit
        payload = self._blocks[block_id]
        self.stats.record_read()
        if self._cache is not None:
            self._cache.put(block_id, payload)
        return payload

    def read_many(self, block_ids: Sequence[int]) -> list:
        """Read several blocks in order with one bulk read charge.

        IO accounting matches a loop of :meth:`read` exactly — one
        cache-hit count per cached block, one read IO per uncached
        block — but the counters are updated once, which matters for
        multi-block list reads on the query path.
        """
        payloads = []
        misses = 0
        for block_id in block_ids:
            self._require(block_id)
            if self._cache is not None:
                hit = self._cache.get(block_id)
                if hit is not _MISS:
                    self.stats.record_cache_hit()
                    payloads.append(hit)
                    continue
            payload = self._blocks[block_id]
            misses += 1
            if self._cache is not None:
                self._cache.put(block_id, payload)
            payloads.append(payload)
        if misses:
            self.stats.record_reads(misses)
        return payloads

    def replay_reads(self, block_ids: Sequence[int]) -> None:
        """Charge the IO and buffer-pool effects of reading each block.

        Exactly what a loop of :meth:`read` would do to the counters
        and the LRU state — one cache-hit count per cached block, one
        read IO plus a pool insertion per uncached block — without
        returning payloads.  This is the cache-aware companion of the
        modeled-cost batched query pipelines: they compute answers
        from the columnar kernel but *replay* the scalar path's block
        access sequence here, so ``cache_blocks > 0`` configurations
        keep identical hit/miss accounting and identical final pool
        contents (asserted by the equivalence suites).
        """
        if self._cache is None:
            for block_id in block_ids:
                self._require(block_id)
            self.stats.record_reads(len(block_ids))
            return
        for block_id in block_ids:
            self._require(block_id)
            hit = self._cache.get(block_id)
            if hit is not _MISS:
                self.stats.record_cache_hit()
                continue
            self.stats.record_read()
            self._cache.put(block_id, self._blocks[block_id])

    def peek(self, block_id: int) -> Any:
        """Read a block *without* charging IOs or touching the cache.

        This is the escape hatch of the modeled-cost batched query
        pipelines: they dedup physical payload fetches across a whole
        workload while charging, analytically, exactly the IOs the
        per-query scalar loop would have paid.  Never use it on a path
        whose IO cost is measured by the device itself.
        """
        self._require(block_id)
        return self._blocks[block_id]

    def write(self, block_id: int, payload: Any) -> None:
        """Overwrite a block in place, charging one write IO."""
        self._require_coordinator()
        self._require(block_id)
        self._blocks[block_id] = payload
        self.stats.record_write()
        if self._cache is not None:
            self._cache.put(block_id, payload)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def has_cache(self) -> bool:
        """True when a buffer pool is attached.

        Batched query paths model per-query IO charges analytically;
        the model assumes uncached reads, so they fall back to the
        scalar loop when a cache could absorb some of those reads.
        """
        return self._cache is not None

    @property
    def num_blocks(self) -> int:
        """Number of live (allocated, unfreed) blocks."""
        return len(self._blocks)

    @property
    def size_bytes(self) -> int:
        """Bytes occupied on "disk": live blocks x block size."""
        return self.num_blocks * self.block_bytes

    def drop_cache(self) -> None:
        """Empty the buffer pool (used to measure cold-cache query IOs)."""
        if self._cache is not None:
            self._cache.clear()

    def set_cache(self, cache: Optional["LRUCache"]) -> None:
        """Attach or detach a buffer pool."""
        self._cache = cache
        if cache is not None:
            cache.attach(self)

    def _require(self, block_id: int) -> None:
        if block_id not in self._blocks:
            raise BlockDeviceError(f"{self.name}: invalid block id {block_id}")

    def _require_coordinator(self) -> None:
        if os.getpid() != self._owner_pid:
            raise BlockDeviceError(
                f"{self.name}: block mutation from a worker process "
                f"(pid {os.getpid()}, owner {self._owner_pid}); device "
                "writes must stay on the build coordinator"
            )

    def __setstate__(self, state: dict) -> None:
        # A device deliberately unpickled by a top-level process (a
        # saved index loaded by the CLI, a mounted snapshot) belongs to
        # that process.  Inside a multiprocessing child — a spawned
        # pool worker receiving session state, or a worker re-mounting
        # a read-only segment — ownership stays with the original
        # coordinator, matching fork-inherited copies: workers may
        # read, but a write there would silently diverge from the
        # coordinator's layout and IO counts, so it keeps raising.
        self.__dict__.update(state)
        if multiprocessing.parent_process() is None:
            self._owner_pid = os.getpid()


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<MISS>"


_MISS = _Miss()
