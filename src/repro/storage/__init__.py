"""Simulated external-memory substrate.

The paper builds all of its indexes with the TPIE C++ library on a real
disk with 4 KB blocks and reports block-IO counts.  This subpackage is
the Python substitute: a :class:`BlockDevice` that charges one IO per
uncached block access, an :class:`LRUCache` buffer pool, and
:class:`IOStats` counters that benchmarks snapshot around each
operation.  See DESIGN.md ("Substitutions") for why this preserves the
behaviour the paper measures.
"""

from repro.storage.cache import LRUCache
from repro.storage.device import (
    DEFAULT_BLOCK_BYTES,
    BlockDevice,
    BlockDeviceError,
    entries_per_block,
)
from repro.storage.stats import IOMeasurement, IOSnapshot, IOStats

__all__ = [
    "BlockDevice",
    "BlockDeviceError",
    "DEFAULT_BLOCK_BYTES",
    "entries_per_block",
    "IOMeasurement",
    "IOSnapshot",
    "IOStats",
    "LRUCache",
]
