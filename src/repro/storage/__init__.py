"""Simulated external-memory substrate.

The paper builds all of its indexes with the TPIE C++ library on a real
disk with 4 KB blocks and reports block-IO counts.  This subpackage is
the Python substitute: a :class:`BlockDevice` that charges one IO per
uncached block access, an :class:`LRUCache` buffer pool, and
:class:`IOStats` counters that benchmarks snapshot around each
operation.  See DESIGN.md ("Substitutions") for why this preserves the
behaviour the paper measures.

The durable tier lives beside it: aligned, checksummed, mmap-able
array segments (:mod:`repro.storage.segments`), a WAL-mode SQLite
catalog (:mod:`repro.storage.catalog`), and the snapshot/open
orchestration (:mod:`repro.storage.snapshot`) behind
``TemporalRankingEngine.snapshot`` / ``repro.open``.
"""

from repro.storage.cache import LRUCache
from repro.storage.catalog import Catalog
from repro.storage.device import (
    DEFAULT_BLOCK_BYTES,
    BlockDevice,
    BlockDeviceError,
    entries_per_block,
)
from repro.storage.persistence import (
    PersistenceError,
    read_payload,
    write_payload,
)
from repro.storage.segments import (
    MappedSegment,
    SegmentInfo,
    open_segment,
    read_header,
    write_segment,
    write_store_segment,
)
from repro.storage.stats import IOMeasurement, IOSnapshot, IOStats

__all__ = [
    "BlockDevice",
    "BlockDeviceError",
    "Catalog",
    "DEFAULT_BLOCK_BYTES",
    "entries_per_block",
    "IOMeasurement",
    "IOSnapshot",
    "IOStats",
    "LRUCache",
    "MappedSegment",
    "PersistenceError",
    "SegmentInfo",
    "open_segment",
    "read_header",
    "read_payload",
    "write_payload",
    "write_segment",
    "write_store_segment",
]
