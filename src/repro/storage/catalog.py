"""WAL-mode SQLite catalog for the durable storage tier.

A snapshot directory holds one ``catalog.sqlite`` beside its segment
and index files.  The catalog is the source of truth for *what* is on
disk — datasets, partitions (one per cluster shard, or one ``full``
row for a single-node engine), the segments backing each partition
(with per-array dtypes, offsets, and checksums mirrored out of the
segment headers), and the index builds layered on top — so a node (or
shard) mounts exactly its slice without parsing anything else.

``sqlite3`` is stdlib; WAL mode + NORMAL sync is the standard
single-writer/many-reader configuration (the per-dataset SQLite
catalog idiom of SNIPPETS.md).  A schema-version stamp is checked on
every open: a catalog written by an incompatible layout is refused
with :class:`~repro.storage.persistence.PersistenceError` instead of
being misread.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import List, Optional

from repro.storage.persistence import PersistenceError

#: Bump when the catalog schema changes incompatibly.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE catalog_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE datasets (
    dataset_id   INTEGER PRIMARY KEY,
    name         TEXT NOT NULL UNIQUE,
    num_objects  INTEGER NOT NULL,
    num_segments INTEGER NOT NULL,
    t_min        REAL NOT NULL,
    t_max        REAL NOT NULL,
    padded       INTEGER NOT NULL,
    epoch        INTEGER NOT NULL
);
CREATE TABLE partitions (
    partition_id INTEGER PRIMARY KEY,
    dataset_id   INTEGER NOT NULL REFERENCES datasets(dataset_id)
                 ON DELETE CASCADE,
    node_id      INTEGER NOT NULL,
    kind         TEXT NOT NULL,  -- 'full' | 'object' | 'time'
    t_lo         REAL NOT NULL,
    t_hi         REAL NOT NULL,
    num_objects  INTEGER NOT NULL,
    epoch        INTEGER NOT NULL
);
CREATE TABLE segments (
    segment_id     INTEGER PRIMARY KEY,
    partition_id   INTEGER NOT NULL REFERENCES partitions(partition_id)
                   ON DELETE CASCADE,
    role           TEXT NOT NULL,  -- 'csr' | 'blocks'
    path           TEXT NOT NULL,  -- relative to the catalog directory
    bytes          INTEGER NOT NULL,
    crc32          INTEGER NOT NULL,
    format_version INTEGER NOT NULL
);
CREATE TABLE segment_arrays (
    segment_id INTEGER NOT NULL REFERENCES segments(segment_id)
               ON DELETE CASCADE,
    name       TEXT NOT NULL,
    dtype      TEXT NOT NULL,
    shape      TEXT NOT NULL,  -- JSON list
    offset     INTEGER NOT NULL,
    nbytes     INTEGER NOT NULL,
    crc32      INTEGER NOT NULL,
    PRIMARY KEY (segment_id, name)
);
CREATE TABLE index_builds (
    index_id      INTEGER PRIMARY KEY,
    partition_id  INTEGER NOT NULL REFERENCES partitions(partition_id)
                  ON DELETE CASCADE,
    kind          TEXT NOT NULL,  -- 'exact3' | 'appx2plus' | 'instant'
    path          TEXT NOT NULL,
    blocks_path   TEXT,
    bytes         INTEGER NOT NULL,
    crc32         INTEGER NOT NULL,
    build_seconds REAL NOT NULL,
    params        TEXT NOT NULL   -- JSON
);
"""


def _connect(path: Path) -> sqlite3.Connection:
    conn = sqlite3.connect(str(path))
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute("PRAGMA foreign_keys=ON")
    conn.execute("PRAGMA busy_timeout=30000")
    return conn


class Catalog:
    """The snapshot directory's metadata store (see module docstring)."""

    FILENAME = "catalog.sqlite"

    def __init__(self, conn: sqlite3.Connection, path: Path) -> None:
        self._conn = conn
        self.path = path

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | Path, kind: str) -> "Catalog":
        """Initialize a fresh catalog at ``path`` (an sqlite file path).

        ``kind`` names the snapshot flavor (``engine``,
        ``cluster-object``, ``cluster-time``) and drives
        :func:`repro.storage.snapshot.open_any`'s dispatch.
        """
        path = Path(path)
        if path.exists():
            path.unlink()
        conn = _connect(path)
        with conn:
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT INTO catalog_meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            conn.execute(
                "INSERT INTO catalog_meta (key, value) VALUES (?, ?)",
                ("kind", kind),
            )
        return cls(conn, path)

    @classmethod
    def open(cls, path: str | Path) -> "Catalog":
        """Open an existing catalog, refusing incompatible schemas."""
        path = Path(path)
        if not path.exists():
            raise PersistenceError(f"no catalog at {path}")
        try:
            conn = _connect(path)
            row = conn.execute(
                "SELECT value FROM catalog_meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise PersistenceError(
                f"{path} is not a repro catalog: {exc}"
            ) from exc
        if row is None:
            raise PersistenceError(f"{path} has no schema-version stamp")
        version = int(row["value"])
        if version != SCHEMA_VERSION:
            raise PersistenceError(
                f"{path} has catalog schema version {version}, "
                f"expected {SCHEMA_VERSION}"
            )
        return cls(conn, path)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # meta
    # ------------------------------------------------------------------
    def set_meta(self, key: str, value: str) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO catalog_meta (key, value) "
                "VALUES (?, ?)",
                (key, value),
            )

    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM catalog_meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row["value"]

    @property
    def kind(self) -> str:
        kind = self.get_meta("kind")
        if kind is None:
            raise PersistenceError(f"{self.path} records no snapshot kind")
        return kind

    # ------------------------------------------------------------------
    # inserts
    # ------------------------------------------------------------------
    def add_dataset(
        self,
        name: str,
        num_objects: int,
        num_segments: int,
        t_min: float,
        t_max: float,
        padded: bool,
        epoch: int,
    ) -> int:
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO datasets (name, num_objects, num_segments, "
                "t_min, t_max, padded, epoch) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    name,
                    int(num_objects),
                    int(num_segments),
                    float(t_min),
                    float(t_max),
                    int(bool(padded)),
                    int(epoch),
                ),
            )
        return int(cursor.lastrowid)

    def add_partition(
        self,
        dataset_id: int,
        node_id: int,
        kind: str,
        t_lo: float,
        t_hi: float,
        num_objects: int,
        epoch: int,
    ) -> int:
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO partitions (dataset_id, node_id, kind, t_lo, "
                "t_hi, num_objects, epoch) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    int(dataset_id),
                    int(node_id),
                    kind,
                    float(t_lo),
                    float(t_hi),
                    int(num_objects),
                    int(epoch),
                ),
            )
        return int(cursor.lastrowid)

    def add_segment(self, partition_id: int, role: str, relpath: str, info) -> int:
        """Record a written segment (and mirror its per-array header)."""
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO segments (partition_id, role, path, bytes, "
                "crc32, format_version) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    int(partition_id),
                    role,
                    relpath,
                    int(info.file_bytes),
                    int(info.crc32),
                    int(info.version),
                ),
            )
            segment_id = int(cursor.lastrowid)
            self._conn.executemany(
                "INSERT INTO segment_arrays (segment_id, name, dtype, "
                "shape, offset, nbytes, crc32) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        segment_id,
                        entry["name"],
                        entry["dtype"],
                        json.dumps(entry["shape"]),
                        int(entry["offset"]),
                        int(entry["nbytes"]),
                        int(entry["crc32"]),
                    )
                    for entry in info.arrays
                ],
            )
        return segment_id

    def add_index(
        self,
        partition_id: int,
        kind: str,
        relpath: str,
        blocks_relpath: Optional[str],
        nbytes: int,
        crc32: int,
        build_seconds: float,
        params: dict,
    ) -> int:
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO index_builds (partition_id, kind, path, "
                "blocks_path, bytes, crc32, build_seconds, params) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    int(partition_id),
                    kind,
                    relpath,
                    blocks_relpath,
                    int(nbytes),
                    int(crc32),
                    float(build_seconds),
                    json.dumps(params, sort_keys=True),
                ),
            )
        return int(cursor.lastrowid)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def datasets(self) -> List[sqlite3.Row]:
        return self._conn.execute(
            "SELECT * FROM datasets ORDER BY dataset_id"
        ).fetchall()

    def partitions(
        self, dataset_id: int, kind: Optional[str] = None
    ) -> List[sqlite3.Row]:
        if kind is None:
            return self._conn.execute(
                "SELECT * FROM partitions WHERE dataset_id = ? "
                "ORDER BY node_id",
                (int(dataset_id),),
            ).fetchall()
        return self._conn.execute(
            "SELECT * FROM partitions WHERE dataset_id = ? AND kind = ? "
            "ORDER BY node_id",
            (int(dataset_id), kind),
        ).fetchall()

    def segments(
        self, partition_id: int, role: Optional[str] = None
    ) -> List[sqlite3.Row]:
        if role is None:
            return self._conn.execute(
                "SELECT * FROM segments WHERE partition_id = ? "
                "ORDER BY segment_id",
                (int(partition_id),),
            ).fetchall()
        return self._conn.execute(
            "SELECT * FROM segments WHERE partition_id = ? AND role = ? "
            "ORDER BY segment_id",
            (int(partition_id), role),
        ).fetchall()

    def indexes(self, partition_id: int) -> List[sqlite3.Row]:
        return self._conn.execute(
            "SELECT * FROM index_builds WHERE partition_id = ? "
            "ORDER BY index_id",
            (int(partition_id),),
        ).fetchall()

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    # The quarantine table is a lazy, additive migration: it is created
    # on first use via CREATE TABLE IF NOT EXISTS, so catalogs written
    # before it existed keep opening under the same SCHEMA_VERSION and
    # gain the table only when a checksum failure is first recorded.
    def _ensure_quarantine(self) -> None:
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS quarantine ("
            "path   TEXT PRIMARY KEY, "
            "reason TEXT NOT NULL)"
        )

    def quarantine_segment(self, relpath: str, reason: str) -> None:
        """Mark a segment file bad (e.g. checksum mismatch on mount).

        The file itself is left in place for forensics; readers consult
        :meth:`is_quarantined` / :meth:`quarantined` and rebuild from
        source instead of trusting the bytes.
        """
        with self._conn:
            self._ensure_quarantine()
            self._conn.execute(
                "INSERT OR REPLACE INTO quarantine (path, reason) "
                "VALUES (?, ?)",
                (relpath, reason),
            )

    def is_quarantined(self, relpath: str) -> bool:
        self._ensure_quarantine()
        row = self._conn.execute(
            "SELECT 1 FROM quarantine WHERE path = ?", (relpath,)
        ).fetchone()
        return row is not None

    def quarantined(self) -> List[sqlite3.Row]:
        self._ensure_quarantine()
        return self._conn.execute(
            "SELECT * FROM quarantine ORDER BY path"
        ).fetchall()

    def clear_quarantine(self, relpath: Optional[str] = None) -> None:
        """Forget one quarantined path (or all of them) after repair."""
        with self._conn:
            self._ensure_quarantine()
            if relpath is None:
                self._conn.execute("DELETE FROM quarantine")
            else:
                self._conn.execute(
                    "DELETE FROM quarantine WHERE path = ?", (relpath,)
                )
