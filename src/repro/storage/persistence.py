"""Saving and loading built indexes.

A production index is useless if it must be rebuilt on every process
start.  Because every structure in this package keeps *all* of its
state either in plain attributes or in blocks of its
:class:`~repro.storage.device.BlockDevice`, whole methods pickle
cleanly; this module wraps that with versioning and integrity checks
so stale or foreign files fail loudly instead of mysteriously.
"""

from __future__ import annotations

import io
import pickle
from pathlib import Path
from typing import Any

from repro.core.errors import ReproError

#: Bump when on-disk layout changes incompatibly.
FORMAT_VERSION = 1
_MAGIC = b"REPRO-IDX"


class PersistenceError(ReproError):
    """Raised when an index file is malformed or incompatible."""


def save_index(method: Any, path: str | Path) -> int:
    """Serialize a built method (or any picklable index) to ``path``.

    Returns the number of bytes written.  The file layout is::

        MAGIC (9 bytes) | version (2 bytes BE) | pickle payload
    """
    path = Path(path)
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(FORMAT_VERSION.to_bytes(2, "big"))
    pickle.dump(method, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    payload = buffer.getvalue()
    path.write_bytes(payload)
    return len(payload)


def load_index(path: str | Path) -> Any:
    """Load an index previously written by :func:`save_index`."""
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < len(_MAGIC) + 2 or not raw.startswith(_MAGIC):
        raise PersistenceError(f"{path} is not a repro index file")
    version = int.from_bytes(raw[len(_MAGIC) : len(_MAGIC) + 2], "big")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} has format version {version}, expected {FORMAT_VERSION}"
        )
    return pickle.loads(raw[len(_MAGIC) + 2 :])
