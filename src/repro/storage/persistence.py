"""Versioned pickle containers (legacy surface: see the snapshot tier).

Historically this module was the whole persistence story: pickle a
built method (or database) behind a magic + version prefix.  The
durable storage tier (:mod:`repro.storage.segments`,
:mod:`repro.storage.catalog`, :mod:`repro.storage.snapshot`) replaced
it as the public API — ``TemporalRankingEngine.snapshot(path)`` /
``repro.open(path)`` write catalog-tracked, mmap-able segments instead
of monolithic pickles.  The container format itself survives inside
the snapshot tier (index state that is not a flat array still pickles)
and for raw dataset files, via :func:`write_payload` /
:func:`read_payload`; the old :func:`save_index` / :func:`load_index`
names remain as thin deprecation shims.
"""

from __future__ import annotations

import io
import pickle
import warnings
from pathlib import Path
from typing import Any

from repro.core.errors import PersistenceError

__all__ = ["PersistenceError", "write_payload", "read_payload", "save_index", "load_index", "FORMAT_VERSION"]

#: Bump when on-disk layout changes incompatibly.
FORMAT_VERSION = 1
_MAGIC = b"REPRO-IDX"


def write_payload(path: str | Path, payload: Any) -> int:
    """Serialize any picklable object to a versioned container file.

    Returns the number of bytes written.  The file layout is::

        MAGIC (9 bytes) | version (2 bytes BE) | pickle payload
    """
    path = Path(path)
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(FORMAT_VERSION.to_bytes(2, "big"))
    pickle.dump(payload, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    raw = buffer.getvalue()
    path.write_bytes(raw)
    return len(raw)


def read_payload(path: str | Path) -> Any:
    """Load an object previously written by :func:`write_payload`."""
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < len(_MAGIC) + 2 or not raw.startswith(_MAGIC):
        raise PersistenceError(f"{path} is not a repro index file")
    version = int.from_bytes(raw[len(_MAGIC) : len(_MAGIC) + 2], "big")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} has format version {version}, expected {FORMAT_VERSION}"
        )
    return pickle.loads(raw[len(_MAGIC) + 2 :])


def save_index(method: Any, path: str | Path) -> int:
    """Deprecated alias of :func:`write_payload`.

    Prefer ``TemporalRankingEngine.snapshot(path)`` (or a cluster's
    ``snapshot``) for whole engines: snapshots are catalog-tracked,
    checksummed, and mount zero-copy instead of unpickling arrays.
    """
    warnings.warn(
        "save_index is deprecated; use TemporalRankingEngine.snapshot "
        "(or write_payload for raw container files)",
        DeprecationWarning,
        stacklevel=2,
    )
    return write_payload(path, method)


def load_index(path: str | Path) -> Any:
    """Deprecated alias of :func:`read_payload` (see :func:`save_index`)."""
    warnings.warn(
        "load_index is deprecated; use repro.open "
        "(or read_payload for raw container files)",
        DeprecationWarning,
        stacklevel=2,
    )
    return read_payload(path)
