"""Aligned, versioned, checksummed on-disk array segments (mmap-able).

The columnar kernel's hot state is a handful of flat numpy arrays (the
seven CSR arrays behind :class:`~repro.core.plfstore.PLFStore` /
:class:`~repro.core.plfstore.CSRView`, plus the object-id column).  A
*segment* is those arrays written once, contiguously, behind a small
binary header, so that a later process — or a pool worker — opens them
with ``np.memmap`` in O(1) time and zero copies: pages are faulted in
on demand and shared between processes through the OS page cache.

File layout::

    0   magic       b"REPROSEG"            (8 bytes)
    8   version     u16 big-endian
    10  data_start  u64 big-endian         (page-aligned)
    18  file_bytes  u64 big-endian         (truncation detection)
    26  header_len  u32 big-endian
    30  header      JSON (utf-8): per-array name/dtype/shape/offset/
                    nbytes/crc32, plus free-form ``meta``
    data_start      array data; each array 64-byte aligned

Integrity: the recorded ``file_bytes`` catches truncation before any
array is touched, and each array carries a crc32 over its exact bytes
(verified on open by default) — a corrupted or short segment raises a
clean :class:`~repro.storage.persistence.PersistenceError` instead of
a numpy crash.  ``BlockDevice`` block payloads ride the same container
(:func:`write_device_blocks`): ids, blob offsets, and the pickled
payload blob are just three more checksummed arrays.
"""

from __future__ import annotations

import json
import pickle
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.persistence import PersistenceError

#: Bump when the segment container layout changes incompatibly.
SEGMENT_VERSION = 1

_MAGIC = b"REPROSEG"

#: Array data starts on a page boundary so memmap windows align with
#: the OS page cache; individual arrays align to cache lines.
_PAGE = 4096
_ALIGN = 64

#: Fixed-width prefix before the JSON header (see module docstring).
_PREFIX_BYTES = 30


def _align(offset: int, alignment: int) -> int:
    return (offset + alignment - 1) // alignment * alignment


class SegmentInfo:
    """Header facts of one written/opened segment (catalog currency)."""

    __slots__ = ("path", "version", "file_bytes", "crc32", "arrays", "meta")

    def __init__(
        self,
        path: Path,
        version: int,
        file_bytes: int,
        crc32: int,
        arrays: List[dict],
        meta: dict,
    ) -> None:
        self.path = path
        self.version = version
        self.file_bytes = file_bytes
        #: crc32 of the header JSON — a cheap whole-file identity the
        #: catalog stores (array bytes carry their own checksums).
        self.crc32 = crc32
        self.arrays = arrays
        self.meta = meta


def write_segment(
    path: str | Path,
    arrays: Sequence[Tuple[str, np.ndarray]],
    meta: Optional[dict] = None,
) -> SegmentInfo:
    """Write named arrays as one aligned, checksummed segment file.

    ``arrays`` is an ordered ``(name, array)`` sequence; each array is
    stored C-contiguous in its own dtype.  Returns the header facts
    the catalog records (dtypes, offsets, checksums, total bytes).
    """
    path = Path(path)
    entries: List[dict] = []
    payloads: List[bytes] = []
    offset = 0
    for name, array in arrays:
        data = np.ascontiguousarray(array)
        raw = data.tobytes()
        offset = _align(offset, _ALIGN)
        entries.append(
            {
                "name": str(name),
                "dtype": data.dtype.str,
                "shape": list(data.shape),
                "offset": offset,
                "nbytes": len(raw),
                "crc32": zlib.crc32(raw) & 0xFFFFFFFF,
            }
        )
        payloads.append(raw)
        offset += len(raw)
    header = json.dumps(
        {"arrays": entries, "meta": meta or {}}, sort_keys=True
    ).encode("utf-8")
    data_start = _align(_PREFIX_BYTES + len(header), _PAGE)
    file_bytes = data_start + offset
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(SEGMENT_VERSION.to_bytes(2, "big"))
        handle.write(data_start.to_bytes(8, "big"))
        handle.write(file_bytes.to_bytes(8, "big"))
        handle.write(len(header).to_bytes(4, "big"))
        handle.write(header)
        for entry, raw in zip(entries, payloads):
            handle.seek(data_start + entry["offset"])
            handle.write(raw)
        handle.truncate(file_bytes)
    return SegmentInfo(
        path,
        SEGMENT_VERSION,
        file_bytes,
        zlib.crc32(header) & 0xFFFFFFFF,
        entries,
        dict(meta or {}),
    )


class MappedSegment:
    """An open segment: zero-copy memmap views of its arrays.

    ``arrays[name]`` is a read-only ``np.memmap``-backed view sliced
    out of one shared uint8 map of the file — opening costs no reads
    beyond the header page, and two processes mapping the same segment
    share physical pages through the OS cache.
    """

    __slots__ = ("path", "info", "arrays", "meta", "_raw")

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ", ".join(self.arrays)
        return f"MappedSegment({self.path.name}: {names})"


def read_header(path: str | Path) -> SegmentInfo:
    """Parse and validate a segment's header without mapping its data."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(_PREFIX_BYTES)
            if len(prefix) < _PREFIX_BYTES or not prefix.startswith(_MAGIC):
                raise PersistenceError(f"{path} is not a repro segment file")
            version = int.from_bytes(prefix[8:10], "big")
            if version != SEGMENT_VERSION:
                raise PersistenceError(
                    f"{path} has segment version {version}, "
                    f"expected {SEGMENT_VERSION}"
                )
            data_start = int.from_bytes(prefix[10:18], "big")
            file_bytes = int.from_bytes(prefix[18:26], "big")
            header_len = int.from_bytes(prefix[26:30], "big")
            header = handle.read(header_len)
    except OSError as exc:
        raise PersistenceError(f"cannot read segment {path}: {exc}") from exc
    if len(header) < header_len:
        raise PersistenceError(f"{path} is truncated inside its header")
    try:
        decoded = json.loads(header.decode("utf-8"))
        arrays = decoded["arrays"]
        meta = decoded.get("meta", {})
    except (ValueError, KeyError) as exc:
        raise PersistenceError(f"{path} has a corrupt header: {exc}") from exc
    actual = path.stat().st_size
    if actual != file_bytes:
        raise PersistenceError(
            f"{path} is truncated or padded: {actual} bytes on disk, "
            f"header records {file_bytes}"
        )
    info = SegmentInfo(
        path, version, file_bytes, zlib.crc32(header) & 0xFFFFFFFF, arrays, meta
    )
    # data_start is derived state; keep it with the entries so open()
    # does not re-read the prefix.
    for entry in info.arrays:
        entry["abs_offset"] = data_start + entry["offset"]
    return info


def open_segment(path: str | Path, verify: bool = True) -> MappedSegment:
    """Map a segment's arrays zero-copy (read-only).

    ``verify=True`` (default) checks every array's crc32 against the
    header — one streaming pass over the mapped bytes; pass ``False``
    to defer page faults entirely to first kernel use on very large
    datasets.  Truncation is always detected via the recorded file
    size before any array is touched.
    """
    path = Path(path)
    info = read_header(path)
    raw = np.memmap(path, dtype=np.uint8, mode="r")
    # Base-class views of the map: downstream slicing (one slice per
    # object in PLFStore.from_segments) skips np.memmap's subclass
    # machinery, which dominates mount time at large m.  The views
    # keep ``raw`` alive through their .base chain and inherit its
    # read-only buffer.
    flat = raw.view(np.ndarray)
    segment = MappedSegment.__new__(MappedSegment)
    segment.path = path
    segment.info = info
    segment.meta = info.meta
    segment._raw = raw
    segment.arrays = {}
    for entry in info.arrays:
        lo = entry["abs_offset"]
        hi = lo + entry["nbytes"]
        window = flat[lo:hi]
        if verify:
            checksum = zlib.crc32(window) & 0xFFFFFFFF
            if checksum != entry["crc32"]:
                raise PersistenceError(
                    f"{path}: array {entry['name']!r} fails its checksum "
                    f"(stored {entry['crc32']:#010x}, "
                    f"computed {checksum:#010x})"
                )
        view = window.view(np.dtype(entry["dtype"]))
        segment.arrays[entry["name"]] = view.reshape(entry["shape"])
    return segment


# ----------------------------------------------------------------------
# the CSR store segment (the seven kernel arrays + object ids)
# ----------------------------------------------------------------------
#: Names and storage order of the PLFStore arrays in a store segment.
STORE_ARRAYS = (
    "knot_times",
    "knot_values",
    "offsets",
    "prefix_masses",
    "starts",
    "ends",
    "totals",
    "object_ids",
)


def write_store_segment(
    path: str | Path, store, meta: Optional[dict] = None
) -> SegmentInfo:
    """Persist a :class:`~repro.core.plfstore.PLFStore`'s kernel arrays."""
    payload = dict(meta or {})
    payload.setdefault("kind", "plfstore")
    payload["num_objects"] = int(store.num_objects)
    payload["num_segments"] = int(store.num_segments)
    return write_segment(
        path,
        [(name, getattr(store, name)) for name in STORE_ARRAYS],
        payload,
    )


# Worker-side cache: one map per segment path per process, so repeated
# task unpickling inside a pool worker costs one dict hit, not one
# header parse (the arrays themselves are shared OS pages either way).
_VIEW_CACHE: Dict[str, Any] = {}


def open_csr_view(path: str):
    """Open a store segment as a :class:`~repro.core.plfstore.CSRView`.

    This is the pickle target of segment-backed views: shipping a view
    to a process-pool worker serializes only this path, and the worker
    re-mounts the arrays zero-copy here (checksums were verified when
    the coordinator first opened the segment, so workers skip the
    verification pass).
    """
    from repro.core.plfstore import CSRView

    key = str(path)
    cached = _VIEW_CACHE.get(key)
    if cached is not None:
        return cached
    segment = open_segment(key, verify=False)
    view = CSRView(
        segment["knot_times"],
        segment["knot_values"],
        segment["offsets"],
        segment["prefix_masses"],
        segment["starts"],
        segment["ends"],
        segment["totals"],
        segment=key,
    )
    _VIEW_CACHE[key] = view
    return view


# ----------------------------------------------------------------------
# BlockDevice block payloads
# ----------------------------------------------------------------------
def write_device_blocks(
    path: str | Path, devices: Sequence, meta: Optional[dict] = None
) -> SegmentInfo:
    """Persist the live blocks of one or more devices as a segment.

    Payloads are arbitrary Python objects (interval-tree nodes, packed
    leaf arrays); each device's payloads are pickled as ONE list in
    sorted-id order — a single ``pickle.loads`` per device at open
    time instead of one per block.  The pickle streams use protocol 5
    with out-of-band buffers: every contiguous ndarray inside a
    payload lands raw (64-byte aligned) in a side blob, and
    :func:`read_device_blocks` hands memoryviews of the mapped blob
    back to ``pickle.loads`` — payload arrays reconstruct zero-copy
    over the file mapping, read-only, with no per-array memcpy.
    Everything rides the same aligned, checksummed container as the
    CSR arrays.  Device identity (name, block size, allocation cursor,
    cache capacity) goes in the meta so each device restores exactly.
    """
    bounds = [0]
    ids: List[int] = []
    stream_offsets = [0]
    streams: List[bytes] = []
    buf_bounds = [0]
    buf_spans: List[List[int]] = []
    buf_chunks: List[bytes] = []
    device_meta = []
    stream_total = 0
    buf_total = 0
    for device in devices:
        block_ids = sorted(device._blocks)
        ids.extend(block_ids)
        bounds.append(len(ids))
        buffers: List[pickle.PickleBuffer] = []
        stream = pickle.dumps(
            [device._blocks[block_id] for block_id in block_ids],
            protocol=5,
            buffer_callback=buffers.append,
        )
        streams.append(stream)
        stream_total += len(stream)
        stream_offsets.append(stream_total)
        for buffer in buffers:
            raw = buffer.raw()
            pad = (-buf_total) % _ALIGN
            if pad:
                buf_chunks.append(b"\x00" * pad)
                buf_total += pad
            buf_spans.append([buf_total, raw.nbytes])
            buf_chunks.append(raw.tobytes())
            buf_total += raw.nbytes
        buf_bounds.append(len(buf_spans))
        cache = device._cache
        device_meta.append(
            {
                "name": device.name,
                "block_bytes": int(device.block_bytes),
                "next_id": int(device._next_id),
                "cache_blocks": int(cache.capacity_blocks) if cache else 0,
            }
        )
    payload = dict(meta or {})
    payload.setdefault("kind", "blocks")
    payload["devices"] = device_meta
    blob = np.frombuffer(b"".join(streams), dtype=np.uint8)
    buf_blob = np.frombuffer(b"".join(buf_chunks), dtype=np.uint8)
    return write_segment(
        path,
        [
            ("device_bounds", np.asarray(bounds, dtype=np.int64)),
            ("block_ids", np.asarray(ids, dtype=np.int64)),
            ("blob_offsets", np.asarray(stream_offsets, dtype=np.int64)),
            ("blob", blob),
            ("buf_bounds", np.asarray(buf_bounds, dtype=np.int64)),
            (
                "buf_spans",
                np.asarray(buf_spans, dtype=np.int64).reshape(-1, 2),
            ),
            ("buf_blob", buf_blob),
        ],
        payload,
    )


class LazyDeviceBlocks(dict):
    """A device's ``{block_id: payload}`` map that decodes on demand.

    Mounting defers the per-device ``pickle.loads`` until the first
    time anything touches the mapping — the demand-paging analogue at
    the payload level: opening a snapshot stays O(metadata) and a
    device's blocks only pay their decode cost when a query actually
    reads them.  Every accessor (including mutators, so post-mount
    appends can never be clobbered by a later decode) hydrates first;
    after that this is a plain dict.
    """

    __slots__ = ("_loader",)

    def __init__(self, loader):
        super().__init__()
        self._loader = loader

    def _hydrate(self):
        if self._loader is not None:
            loader, self._loader = self._loader, None
            super().update(loader())

    def __getitem__(self, key):
        self._hydrate()
        return super().__getitem__(key)

    def __setitem__(self, key, value):
        self._hydrate()
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._hydrate()
        super().__delitem__(key)

    def __contains__(self, key):
        self._hydrate()
        return super().__contains__(key)

    def __iter__(self):
        self._hydrate()
        return super().__iter__()

    def __len__(self):
        self._hydrate()
        return super().__len__()

    def __eq__(self, other):
        self._hydrate()
        return super().__eq__(other)

    __hash__ = None

    def __repr__(self):
        self._hydrate()
        return super().__repr__()

    def keys(self):
        self._hydrate()
        return super().keys()

    def values(self):
        self._hydrate()
        return super().values()

    def items(self):
        self._hydrate()
        return super().items()

    def get(self, key, default=None):
        self._hydrate()
        return super().get(key, default)

    def pop(self, *args):
        self._hydrate()
        return super().pop(*args)

    def update(self, *args, **kwargs):
        self._hydrate()
        super().update(*args, **kwargs)

    def copy(self):
        self._hydrate()
        return dict(self)

    def __reduce__(self):
        # A pickle round-trip (e.g. shipping to a worker) hydrates and
        # produces a plain dict — laziness is a mount-local property.
        self._hydrate()
        return (dict, (dict(self),))


def read_device_blocks(path: str | Path, verify: bool = True):
    """Load a device-blocks segment: per-device ``(meta, blocks)``.

    ``blocks`` is a :class:`LazyDeviceBlocks` whose payloads decode
    from the mapped blob on first access (protocol-5 out-of-band
    buffers, so ndarray payloads alias the mapping zero-copy).
    Returned in the order :func:`write_device_blocks` received the
    devices, which is the deterministic discovery order of the
    snapshot layer — so restoration zips straight back.
    """
    segment = open_segment(path, verify=verify)
    bounds = segment["device_bounds"]
    ids = segment["block_ids"]
    offsets = segment["blob_offsets"]
    blob = memoryview(np.ascontiguousarray(segment["blob"]))
    buf_bounds = segment["buf_bounds"]
    buf_spans = segment["buf_spans"]
    buf_blob = memoryview(np.ascontiguousarray(segment["buf_blob"]))
    out = []
    device_meta = segment.meta.get("devices", [])
    if len(device_meta) != bounds.size - 1:
        raise PersistenceError(
            f"{path}: device meta does not match block groups"
        )
    for index, meta in enumerate(device_meta):
        lo, hi = int(bounds[index]), int(bounds[index + 1])
        chunk = blob[int(offsets[index]) : int(offsets[index + 1])]
        blo, bhi = int(buf_bounds[index]), int(buf_bounds[index + 1])
        spans = buf_spans[blo:bhi]
        block_ids = ids[lo:hi].tolist()

        def _decode(chunk=chunk, spans=spans, block_ids=block_ids,
                    name=meta.get("name")):
            buffers = [
                buf_blob[start : start + nbytes]
                for start, nbytes in spans.tolist()
            ]
            payloads = pickle.loads(chunk, buffers=buffers)
            if len(payloads) != len(block_ids):
                raise PersistenceError(
                    f"{path}: device {name!r} payload count "
                    f"does not match its block-id range"
                )
            return zip(block_ids, payloads)

        out.append((meta, LazyDeviceBlocks(_decode)))
    return out
