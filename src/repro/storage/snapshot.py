"""Snapshot/open orchestration: one durable API over the whole stack.

``snapshot(path)`` turns a live engine or cluster into a directory::

    path/
      catalog.sqlite     WAL-mode catalog (datasets, partitions,
                         segments, index builds, epochs)
      dataset.seg        the CSR kernel arrays, mmap-able zero-copy
      exact3.idx         pickled index state (arrays stripped out)
      exact3.blocks.seg  the index's BlockDevice payloads
      node_<i>.seg/.idx/.blocks.seg   per-shard files (clusters)

``open(path)`` mounts it back: the kernel arrays become read-only
``np.memmap`` views, function objects are trusted zero-copy slices,
indexes unpickle and re-attach their device blocks, and every
``database`` back-reference is re-bound to the mounted database — so
opening performs **zero** index or store builds (asserted via
:mod:`repro.core.buildcount`) and answers, tie-breaks, and modeled IO
charges are bit-identical to the engine that was snapshotted.  The
persisted append epoch rides along, keeping serving-tier result caches
honest across restarts.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Any, List, Tuple

import numpy as np

from repro.storage.catalog import Catalog
from repro.storage.persistence import (
    PersistenceError,
    read_payload,
    write_payload,
)
from repro.storage.segments import (
    read_device_blocks,
    write_device_blocks,
    write_store_segment,
)

#: Snapshot flavors recorded in the catalog's ``kind`` meta row.
KIND_ENGINE = "engine"
KIND_CLUSTER_OBJECT = "cluster-object"
KIND_CLUSTER_TIME = "cluster-time"


# ----------------------------------------------------------------------
# method (index) persistence: pickle minus databases, arrays, payloads
# ----------------------------------------------------------------------
def _collect_devices(method: Any) -> List[Any]:
    """Every BlockDevice a method owns, in deterministic probe order.

    The same order is recovered on the unpickled object, so block
    groups written by :func:`write_device_blocks` zip straight back.
    """
    devices: List[Any] = []
    seen = set()

    def add(device: Any) -> None:
        if device is not None and id(device) not in seen:
            seen.add(id(device))
            devices.append(device)

    add(getattr(method, "device", None))
    for device in getattr(method, "_devices", None) or []:
        add(device)
    rescorer = getattr(method, "rescorer", None)
    if rescorer is not None:
        add(getattr(rescorer, "device", None))
        for device in getattr(rescorer, "_devices", None) or []:
            add(device)
    return devices


def _dump_method(method: Any, idx_path: Path, blocks_path: Path) -> dict:
    """Persist one built index as ``.idx`` (pickle) + ``.blocks.seg``.

    The pickle ships *structure only*: database back-references, the
    instant engine's store snapshot, buffer pools, and every device's
    block payloads are stripped first (and restored afterwards — the
    live method is left exactly as found).  Payloads go to the blocks
    segment; databases/stores are re-bound to mounted objects on open;
    buffer pools restart cold (their capacity is recorded), matching a
    real process restart.
    """
    devices = _collect_devices(method)
    targets = [method]
    rescorer = getattr(method, "rescorer", None)
    if rescorer is not None:
        targets.append(rescorer)
    saved_attrs: List[Tuple[Any, str, Any]] = []
    saved_blocks: List[Tuple[Any, Any, Any]] = []
    try:
        blocks_info = write_device_blocks(
            blocks_path, devices, meta={"method": getattr(method, "name", "?")}
        )
        for obj in targets:
            # _row_cache and _store hold references to the whole
            # columnar store; _cache is a buffer pool full of block
            # payloads.  None of them belongs in the pickle.
            for attr in ("database", "_store", "_cache", "_row_cache"):
                if getattr(obj, attr, None) is not None:
                    saved_attrs.append((obj, attr, getattr(obj, attr)))
                    setattr(obj, attr, None)
        for device in devices:
            saved_blocks.append((device, device._blocks, device._cache))
            device._blocks = {}
            device._cache = None
        idx_bytes = write_payload(idx_path, method)
    finally:
        for device, blocks, cache in saved_blocks:
            device._blocks = blocks
            device._cache = cache
        for obj, attr, value in reversed(saved_attrs):
            setattr(obj, attr, value)
    return {
        "idx_bytes": idx_bytes,
        "idx_crc32": zlib.crc32(idx_path.read_bytes()) & 0xFFFFFFFF,
        "blocks_bytes": blocks_info.file_bytes,
    }


def _load_method(
    idx_path: Path,
    blocks_path: Path,
    database,
    verify: bool = True,
) -> Any:
    """Reload a dumped index and re-attach it to a mounted database."""
    method = read_payload(idx_path)
    devices = _collect_devices(method)
    groups = read_device_blocks(blocks_path, verify=verify)
    if len(groups) != len(devices):
        raise PersistenceError(
            f"{blocks_path}: {len(groups)} block groups for "
            f"{len(devices)} devices"
        )
    from repro.storage.cache import LRUCache

    for device, (meta, blocks) in zip(devices, groups):
        if (
            meta["name"] != device.name
            or int(meta["block_bytes"]) != device.block_bytes
        ):
            raise PersistenceError(
                f"{blocks_path}: block group {meta['name']!r} does not "
                f"match device {device.name!r}"
            )
        device._blocks = blocks
        device._next_id = int(meta["next_id"])
        capacity = int(meta.get("cache_blocks", 0))
        device.set_cache(LRUCache(capacity) if capacity > 0 else None)
    device = getattr(method, "device", None)
    if hasattr(method, "_cache") and device is not None:
        method._cache = device._cache
    if hasattr(method, "database"):
        method.database = database
    if hasattr(method, "_store"):
        method._store = database.store()
    rescorer = getattr(method, "rescorer", None)
    if rescorer is not None:
        rescorer.database = database
    return method


# ----------------------------------------------------------------------
# datasets
# ----------------------------------------------------------------------
def _store_meta(database) -> dict:
    labels = [obj.label for obj in database]
    return {
        "kind": "plfstore",
        "labels": labels if any(labels) else None,
        "span": [float(database.t_min), float(database.t_max)],
        "padded": bool(database.padded),
        "epoch": int(database.epoch),
    }


def _write_dataset(
    catalog: Catalog,
    root: Path,
    database,
    name: str,
    filename: str,
    node_id: int,
    partition_kind: str,
    t_lo: float,
    t_hi: float,
) -> Tuple[int, int]:
    """Persist one database's store segment + catalog rows."""
    store = database.store()  # post-append state: rebuilds if stale
    dataset_id = catalog.add_dataset(
            name,
            database.num_objects,
            database.total_segments,
            database.t_min,
            database.t_max,
            database.padded,
            database.epoch,
        )
    partition_id = catalog.add_partition(
        dataset_id,
        node_id,
        partition_kind,
        t_lo,
        t_hi,
        database.num_objects,
        database.epoch,
    )
    info = write_store_segment(root / filename, store, _store_meta(database))
    catalog.add_segment(partition_id, "csr", filename, info)
    return dataset_id, partition_id


def _mount_dataset(root: Path, catalog: Catalog, partition_id: int, verify: bool):
    """Mount one partition's store segment as a TemporalDatabase.

    A checksum failure here is fatal: the CSR segment *is* the source
    data, so there is nothing to rebuild it from.  The segment is
    quarantined in the catalog before the error propagates, so repair
    tooling can see exactly which file went bad.
    """
    from repro.core.database import TemporalDatabase
    from repro.core.plfstore import PLFStore
    from repro.storage.segments import read_header

    rows = catalog.segments(partition_id, role="csr")
    if not rows:
        raise PersistenceError(
            f"{catalog.path}: partition {partition_id} has no CSR segment"
        )
    seg_path = root / rows[0]["path"]
    try:
        meta = read_header(seg_path).meta
        store = PLFStore.from_segments(seg_path, verify=verify)
    except PersistenceError as exc:
        catalog.quarantine_segment(rows[0]["path"], str(exc))
        raise PersistenceError(
            f"{seg_path} is corrupt and quarantined; the CSR segment is "
            f"the source data, so it cannot be rebuilt: {exc}"
        ) from exc
    span = meta.get("span")
    return TemporalDatabase.mounted(
        store,
        labels=meta.get("labels"),
        span=tuple(span) if span else None,
        padded=bool(meta.get("padded", True)),
        epoch=int(meta.get("epoch", 0)),
    )


def _dump_indexes(
    catalog: Catalog, root: Path, partition_id: int, methods: dict, prefix: str = ""
) -> None:
    for kind, method in methods.items():
        if method is None:
            continue
        idx_name = f"{prefix}{kind}.idx"
        blocks_name = f"{prefix}{kind}.blocks.seg"
        sizes = _dump_method(method, root / idx_name, root / blocks_name)
        catalog.add_index(
            partition_id,
            kind,
            idx_name,
            blocks_name,
            sizes["idx_bytes"],
            sizes["idx_crc32"],
            float(getattr(method, "build_seconds", 0.0)),
            {"name": getattr(method, "name", "?")},
        )


def _load_indexes(
    catalog: Catalog, root: Path, partition_id: int, database, verify: bool
) -> Tuple[dict, dict]:
    """Load every index build for a partition, quarantining corruption.

    Returns ``(indexes, quarantined)``: loaded methods keyed by kind,
    and — for builds whose payloads failed their checksums — the
    recorded method *name* keyed by kind, so callers can rebuild from
    the mounted source database instead of crashing.  Failed builds
    have both their files marked bad in the catalog's quarantine table.
    """
    out: dict = {}
    quarantined: dict = {}
    for row in catalog.indexes(partition_id):
        idx_path = root / row["path"]
        try:
            if verify:
                actual = zlib.crc32(idx_path.read_bytes()) & 0xFFFFFFFF
                if actual != int(row["crc32"]):
                    raise PersistenceError(
                        f"{idx_path}: index payload checksum mismatch "
                        f"(stored {int(row['crc32']):#010x}, "
                        f"computed {actual:#010x})"
                    )
            out[row["kind"]] = _load_method(
                idx_path,
                root / row["blocks_path"],
                database,
                verify=verify,
            )
        except PersistenceError as exc:
            catalog.quarantine_segment(row["path"], str(exc))
            if row["blocks_path"]:
                catalog.quarantine_segment(
                    row["blocks_path"], f"sibling of quarantined {row['path']}"
                )
            quarantined[row["kind"]] = json.loads(row["params"]).get(
                "name", "?"
            )
    return out, quarantined


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
def snapshot_engine(engine, path: str | Path) -> Path:
    """Write a :class:`~repro.engine.TemporalRankingEngine` snapshot."""
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    with Catalog.create(root / Catalog.FILENAME, KIND_ENGINE) as catalog:
        database = engine.database
        _, partition_id = _write_dataset(
            catalog,
            root,
            database,
            name="dataset",
            filename="dataset.seg",
            node_id=0,
            partition_kind="full",
            t_lo=database.t_min,
            t_hi=database.t_max,
        )
        _dump_indexes(
            catalog,
            root,
            partition_id,
            {
                "exact3": engine.exact,
                "appx2plus": engine._approximate,
                "instant": engine._instant,
            },
        )
        catalog.set_meta(
            "engine_params",
            json.dumps(
                {"epsilon": engine.epsilon, "kmax": engine.kmax},
                sort_keys=True,
            ),
        )
    return root


def open_engine(path: str | Path, verify: bool = True):
    """Mount an engine snapshot: zero builds, bit-identical answers."""
    from repro.engine import TemporalRankingEngine

    root = Path(path)
    with Catalog.open(root / Catalog.FILENAME) as catalog:
        if catalog.kind != KIND_ENGINE:
            raise PersistenceError(
                f"{root} holds a {catalog.kind!r} snapshot, not an engine; "
                "use repro.open"
            )
        datasets = catalog.datasets()
        if not datasets:
            raise PersistenceError(f"{root}: catalog lists no datasets")
        partition = catalog.partitions(datasets[0]["dataset_id"], "full")[0]
        database = _mount_dataset(
            root, catalog, partition["partition_id"], verify
        )
        indexes, quarantined = _load_indexes(
            catalog, root, partition["partition_id"], database, verify
        )
        params = json.loads(catalog.get_meta("engine_params") or "{}")
    if "exact3" not in indexes and "exact3" not in quarantined:
        raise PersistenceError(f"{root}: snapshot has no exact3 index")
    engine = TemporalRankingEngine.__new__(TemporalRankingEngine)
    engine.database = database
    engine.epsilon = float(params.get("epsilon", 1e-4))
    engine.kmax = int(params.get("kmax", 50))
    engine.exact = indexes.get("exact3")
    if engine.exact is None:
        # Quarantined exact3 payload: rebuild from the mounted dataset.
        # The build is deterministic per database, so the recovered
        # index answers bit-identically to the snapshotted one.
        from repro.exact.exact3 import Exact3

        engine.exact = Exact3().build(database)
    # A quarantined approximate/instant payload simply stays None here:
    # both are lazy in TemporalRankingEngine and rebuild (again
    # deterministically, from engine_params) on their first query.
    engine._approximate = indexes.get("appx2plus")
    engine._instant = indexes.get("instant")
    return engine


# ----------------------------------------------------------------------
# clusters
# ----------------------------------------------------------------------
def snapshot_cluster(cluster, path: str | Path) -> Path:
    """Write an object- or time-partitioned cluster snapshot.

    One partition row + store segment + index dump per shard, so a
    node can mount exactly its slice from the catalog; time clusters
    also persist the unsharded dataset (their coordinator keeps it)
    and the shard boundaries.
    """
    from repro.distributed import (
        ObjectPartitionedCluster,
        TimePartitionedCluster,
    )

    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    is_time = isinstance(cluster, TimePartitionedCluster)
    if not is_time and not isinstance(cluster, ObjectPartitionedCluster):
        raise PersistenceError(
            f"cannot snapshot {type(cluster).__name__}: not a cluster"
        )
    kind = KIND_CLUSTER_TIME if is_time else KIND_CLUSTER_OBJECT
    with Catalog.create(root / Catalog.FILENAME, kind) as catalog:
        if is_time:
            database = cluster.database
            _write_dataset(
                catalog,
                root,
                database,
                name="dataset",
                filename="dataset.seg",
                node_id=-1,
                partition_kind="full",
                t_lo=database.t_min,
                t_hi=database.t_max,
            )
            catalog.set_meta(
                "boundaries",
                json.dumps([float(b) for b in cluster.boundaries]),
            )
        for node in cluster.nodes:
            shard = node.database
            if is_time:
                t_lo = float(cluster.boundaries[node.node_id])
                t_hi = float(cluster.boundaries[node.node_id + 1])
                partition_kind = "time"
            else:
                t_lo, t_hi = shard.t_min, shard.t_max
                partition_kind = "object"
            _, partition_id = _write_dataset(
                catalog,
                root,
                shard,
                name=f"node_{node.node_id}",
                filename=f"node_{node.node_id}.seg",
                node_id=node.node_id,
                partition_kind=partition_kind,
                t_lo=t_lo,
                t_hi=t_hi,
            )
            _dump_indexes(
                catalog,
                root,
                partition_id,
                {"method": node.method},
                prefix=f"node_{node.node_id}.",
            )
        catalog.set_meta("num_nodes", str(cluster.num_nodes))
    return root


def open_cluster(path: str | Path, verify: bool = True):
    """Mount a cluster snapshot: every shard opens, nothing rebuilds."""
    from repro.distributed import (
        ObjectPartitionedCluster,
        TimePartitionedCluster,
    )
    from repro.distributed.comm import CommStats
    from repro.distributed.nodes import StorageNode, make_replica_groups

    root = Path(path)
    with Catalog.open(root / Catalog.FILENAME) as catalog:
        kind = catalog.kind
        if kind not in (KIND_CLUSTER_OBJECT, KIND_CLUSTER_TIME):
            raise PersistenceError(
                f"{root} holds a {kind!r} snapshot, not a cluster; "
                "use repro.open"
            )
        is_time = kind == KIND_CLUSTER_TIME
        nodes = []
        full_database = None
        for dataset in catalog.datasets():
            for partition in catalog.partitions(dataset["dataset_id"]):
                database = _mount_dataset(
                    root, catalog, partition["partition_id"], verify
                )
                if partition["kind"] == "full":
                    full_database = database
                    continue
                indexes, quarantined = _load_indexes(
                    catalog, root, partition["partition_id"], database, verify
                )
                method = indexes.get("method")
                if method is None:
                    name = quarantined.get("method")
                    if name is None:
                        raise PersistenceError(
                            f"{root}: shard {partition['node_id']} "
                            "has no index"
                        )
                    if name not in ("EXACT3", "?"):
                        raise PersistenceError(
                            f"{root}: shard {partition['node_id']}'s "
                            f"{name!r} index is quarantined and has no "
                            "rebuild recipe; rebuild the snapshot"
                        )
                    # Quarantined default index: StorageNode rebuilds
                    # EXACT3 deterministically from the mounted shard.
                    nodes.append(
                        StorageNode(int(partition["node_id"]), database)
                    )
                    continue
                # method.database is the mounted shard, so StorageNode
                # adopts it as prebuilt — no rebuild on mount.
                nodes.append(
                    StorageNode(int(partition["node_id"]), database, method)
                )
        boundaries_text = catalog.get_meta("boundaries")
    nodes.sort(key=lambda node: node.node_id)
    if not nodes:
        raise PersistenceError(f"{root}: catalog lists no shards")
    if is_time:
        if full_database is None or boundaries_text is None:
            raise PersistenceError(
                f"{root}: time-cluster snapshot is missing the full "
                "dataset or its boundaries"
            )
        cluster = TimePartitionedCluster.__new__(TimePartitionedCluster)
        cluster.comm = CommStats()
        cluster.database = full_database
        cluster.boundaries = np.asarray(
            json.loads(boundaries_text), dtype=np.float64
        )
        cluster.nodes = nodes
        cluster.allow_partial = True
        cluster.groups = make_replica_groups(nodes)
        cluster._columns = np.unique(
            np.concatenate([node.object_ids for node in nodes])
        )
        cluster._node_cols = [
            np.searchsorted(cluster._columns, node.object_ids)
            for node in nodes
        ]
        return cluster
    cluster = ObjectPartitionedCluster.__new__(ObjectPartitionedCluster)
    cluster.comm = CommStats()
    cluster.nodes = nodes
    cluster.allow_partial = True
    cluster.groups = make_replica_groups(nodes)
    return cluster


# ----------------------------------------------------------------------
# the one entry point
# ----------------------------------------------------------------------
def open_any(path: str | Path, verify: bool = True):
    """Open any snapshot directory; dispatches on the catalog's kind."""
    root = Path(path)
    with Catalog.open(root / Catalog.FILENAME) as catalog:
        kind = catalog.kind
    if kind == KIND_ENGINE:
        return open_engine(root, verify=verify)
    if kind in (KIND_CLUSTER_OBJECT, KIND_CLUSTER_TIME):
        return open_cluster(root, verify=verify)
    raise PersistenceError(f"{root} holds an unknown snapshot kind {kind!r}")


def snapshot_any(obj, path: str | Path) -> Path:
    """Snapshot a live engine or cluster; dispatches on type.

    The writer half of :func:`open_any` — the serving pool uses the
    pair to hand a coordinator's backend to worker processes as a
    directory instead of a pickle.
    """
    from repro.distributed import (
        ObjectPartitionedCluster,
        TimePartitionedCluster,
    )
    from repro.engine import TemporalRankingEngine

    if isinstance(obj, TemporalRankingEngine):
        return snapshot_engine(obj, path)
    if isinstance(obj, (ObjectPartitionedCluster, TimePartitionedCluster)):
        return snapshot_cluster(obj, path)
    raise PersistenceError(
        f"cannot snapshot {type(obj).__name__}: not an engine or cluster"
    )


def open_served(path: str | Path, spec: dict, verify: bool = True):
    """Worker-side open of a served snapshot.

    Mounts the snapshot with :func:`open_any`, then rebuilds the
    serving backend the coordinator described with ``spec`` (a
    picklable dict from the backend's ``pool_spec()``) over the
    mounted object.  Returns ``(backend, warmups)`` — see
    :func:`repro.serving.backends.backend_from_snapshot` for the
    warm-up accounting.
    """
    from repro.serving.backends import backend_from_snapshot

    return backend_from_snapshot(open_any(path, verify=verify), spec)
