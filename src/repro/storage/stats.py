"""IO accounting for the simulated disk.

The paper evaluates every method by the number of 4 KB block IOs it
performs (TPIE counts these for real).  We reproduce the same accounting
with an :class:`IOStats` counter that every :class:`~repro.storage.device.
BlockDevice` updates on each block read, write, and allocation.

Counters can be snapshotted and diffed so a caller can measure the IO
cost of a single operation (e.g. one top-k query) in isolation::

    with device.stats.measure() as cost:
        index.query(t1, t2, k)
    print(cost.reads, cost.writes)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class IOSnapshot:
    """Immutable view of counter values at a point in time."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    @property
    def total(self) -> int:
        """Total IOs (reads + writes)."""
        return self.reads + self.writes

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            allocations=self.allocations - other.allocations,
        )


@dataclass
class IOMeasurement:
    """Mutable result object filled in when a ``measure()`` block exits."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


@dataclass
class IOStats:
    """Running IO counters for one block device.

    Attributes
    ----------
    reads:
        Number of block reads served from "disk" (cache hits are not
        counted; see :class:`repro.storage.cache.LRUCache`).
    writes:
        Number of block writes.
    allocations:
        Number of blocks ever allocated (monotone; frees do not reduce it).
    cache_hits:
        Reads absorbed by the buffer pool.
    """

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    cache_hits: int = 0
    _history: list = field(default_factory=list, repr=False)

    def record_read(self) -> None:
        self.reads += 1

    def record_write(self) -> None:
        self.writes += 1

    def record_allocation(self) -> None:
        self.allocations += 1

    def record_reads(self, count: int) -> None:
        """Charge ``count`` read IOs in one call (bulk block reads)."""
        self.reads += count

    def record_writes(self, count: int) -> None:
        """Charge ``count`` write IOs in one call (bulk allocation)."""
        self.writes += count

    def record_allocations(self, count: int) -> None:
        """Record ``count`` block allocations in one call."""
        self.allocations += count

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    @property
    def total(self) -> int:
        """Total disk IOs (reads + writes)."""
        return self.reads + self.writes

    def snapshot(self) -> IOSnapshot:
        """Capture current counter values."""
        return IOSnapshot(self.reads, self.writes, self.allocations)

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.cache_hits = 0

    @contextmanager
    def measure(self) -> Iterator[IOMeasurement]:
        """Measure the IOs performed inside a ``with`` block.

        Yields an :class:`IOMeasurement` whose fields are populated when
        the block exits.
        """
        before = self.snapshot()
        result = IOMeasurement()
        try:
            yield result
        finally:
            delta = self.snapshot() - before
            result.reads = delta.reads
            result.writes = delta.writes
            result.allocations = delta.allocations
