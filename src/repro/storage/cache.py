"""A small LRU buffer pool for the simulated block device.

The paper notes (Section 5, discussion of Figure 17) that part of the
measured query-time gap between methods is attributable to OS caching.
Attaching an :class:`LRUCache` to a :class:`~repro.storage.device.
BlockDevice` reproduces that effect: reads that hit the pool are free.

Benchmarks measure *cold* IO counts by calling ``device.drop_cache()``
before each query; the cache ablation bench leaves it warm.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional


class LRUCache:
    """Least-recently-used block cache with a fixed block capacity."""

    def __init__(self, capacity_blocks: int = 64) -> None:
        if capacity_blocks <= 0:
            raise ValueError("capacity_blocks must be positive")
        self.capacity_blocks = capacity_blocks
        self._entries: "OrderedDict[int, Any]" = OrderedDict()
        self._device: Optional[Any] = None

    def attach(self, device: object) -> None:
        """Bind to a device (informational; a cache serves one device)."""
        self._device = device

    def get(self, block_id: int) -> Any:
        """Return the cached payload, or the device's miss sentinel."""
        from repro.storage.device import _MISS

        if block_id in self._entries:
            self._entries.move_to_end(block_id)
            return self._entries[block_id]
        return _MISS

    def put(self, block_id: int, payload: Any) -> None:
        """Insert/refresh a block, evicting the LRU entry when full."""
        if block_id in self._entries:
            self._entries.move_to_end(block_id)
        self._entries[block_id] = payload
        while len(self._entries) > self.capacity_blocks:
            self._entries.popitem(last=False)

    def invalidate(self, block_id: int) -> None:
        """Drop one block from the pool (no-op when absent)."""
        self._entries.pop(block_id, None)

    def clear(self) -> None:
        """Drop everything."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._entries
