"""A static external-memory interval tree for stabbing queries.

EXACT3 (paper Section 2, "Using one interval tree") indexes the ``N``
data entries ``e_{i,l} = (I^-_{i,l}, (g_{i,l}, sigma_i(I_{i,l})))`` —
whose keys are *intervals* — in a single disk-based interval tree, and
answers any aggregate top-k query with exactly two stabbing queries.

The paper uses the optimal Arge–Vitter structure; we build the classic
centered interval tree laid out on the block device (DESIGN.md lists
this as a substitution):

* each node owns the intervals containing its center time;
* those intervals are stored twice, packed into blocks — once sorted by
  left endpoint ascending, once by right endpoint descending;
* a stabbing query at ``t`` walks one root-to-leaf path, and at each
  node scans the appropriate run only as far as it keeps stabbing.

Size is linear (every interval lives at exactly one node), and a
stabbing query costs ``O(log N + answer/B)`` block reads — the same
shape as the paper's ``O(log_B N + m/B)`` up to the base of the log.

Appends (Section 4 updates) go to an overflow buffer scanned at query
time; the tree rebuilds itself when the buffer grows past a fraction
of ``N`` (amortized ``O((N/B) log N / N)`` per append).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.errors import IndexStateError
from repro.storage.device import BlockDevice, entries_per_block


@dataclass
class _IntervalNode:
    """One tree node: a center, two packed runs, and two children."""

    center: float
    # Block ids holding (lo, hi, value...) rows sorted by lo ascending.
    lo_run: List[int]
    # Block ids holding the same rows sorted by hi descending.
    hi_run: List[int]
    count: int
    left: Optional[int] = None
    right: Optional[int] = None


@dataclass
class _IntervalLeaf:
    """A bucket of few intervals, scanned wholesale on a stab.

    Splitting down to single intervals would allocate one 4 KB block
    per handful of rows and blow the linear-size guarantee; buckets
    keep the structure at ``O(N/B)`` blocks like the Arge-Vitter tree.
    """

    run: List[int]
    count: int


class ExternalIntervalTree:
    """Static stabbing-query index over intervals with value rows.

    Parameters
    ----------
    device:
        Block device for node and run blocks.
    value_columns:
        Number of float64 columns carried alongside each interval.
    rebuild_fraction:
        Appends trigger a rebuild once the overflow buffer exceeds this
        fraction of the indexed interval count.
    """

    def __init__(
        self,
        device: BlockDevice,
        value_columns: int,
        rebuild_fraction: float = 0.25,
    ) -> None:
        self.device = device
        self.value_columns = value_columns
        # Row layout: lo, hi, then the value columns.
        self.row_width = 2 + value_columns
        self.block_capacity = entries_per_block(
            self.row_width * 8, device.block_bytes
        )
        self.rebuild_fraction = rebuild_fraction
        # Stop splitting once a subtree's intervals fit in a few blocks.
        self.leaf_threshold = 2 * self.block_capacity
        self.root_id: Optional[int] = None
        self.num_intervals = 0
        self._overflow: List[np.ndarray] = []
        self._overflow_blocks: List[int] = []
        # Lazy stab cost model (see modeled_stab_reads_many); rebuilt
        # after any structural change.
        self._stab_model = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, lows: np.ndarray, highs: np.ndarray, values: np.ndarray) -> None:
        """Bulk-build from ``N`` intervals ``[lows[i], highs[i]]``.

        ``values`` is ``(N, value_columns)``.  Runs ``O(N log N)`` in
        memory and writes ``O(N/B)`` run blocks plus ``O(N_nodes)``
        node blocks.
        """
        lows = np.ascontiguousarray(lows, dtype=np.float64)
        highs = np.ascontiguousarray(highs, dtype=np.float64)
        values = np.ascontiguousarray(values, dtype=np.float64).reshape(
            lows.size, -1
        )
        if np.any(highs < lows):
            raise ValueError("intervals must satisfy lo <= hi")
        rows = np.concatenate(
            [lows.reshape(-1, 1), highs.reshape(-1, 1), values], axis=1
        )
        self.num_intervals = int(lows.size)
        self.root_id = self._build_node(rows)
        self._overflow = []
        self._overflow_blocks = []
        self._stab_model = None

    def _build_node(self, rows: np.ndarray) -> Optional[int]:
        if rows.shape[0] == 0:
            return None
        if rows.shape[0] <= self.leaf_threshold:
            ordered = rows[np.argsort(rows[:, 0], kind="stable")]
            leaf = _IntervalLeaf(
                run=self._pack_run(ordered), count=int(rows.shape[0])
            )
            return self.device.allocate(leaf)
        endpoints = np.concatenate([rows[:, 0], rows[:, 1]])
        center = float(np.median(endpoints))
        left_mask = rows[:, 1] < center
        right_mask = rows[:, 0] > center
        mid_mask = ~(left_mask | right_mask)
        mid = rows[mid_mask]

        lo_sorted = mid[np.argsort(mid[:, 0], kind="stable")]
        hi_sorted = mid[np.argsort(-mid[:, 1], kind="stable")]
        lo_run = self._pack_run(lo_sorted)
        hi_run = self._pack_run(hi_sorted)

        node = _IntervalNode(
            center=center,
            lo_run=lo_run,
            hi_run=hi_run,
            count=int(mid.shape[0]),
        )
        node_id = self.device.allocate(node)
        # Children are built after the parent is allocated purely so the
        # root gets the lowest id; links are patched afterwards.
        left_id = self._build_node(rows[left_mask])
        right_id = self._build_node(rows[right_mask])
        if left_id is not None or right_id is not None:
            node.left = left_id
            node.right = right_id
            self.device.write(node_id, node)
        return node_id

    def _pack_run(self, rows: np.ndarray) -> List[int]:
        run = []
        for lo in range(0, rows.shape[0], self.block_capacity):
            hi = min(lo + self.block_capacity, rows.shape[0])
            run.append(self.device.allocate(rows[lo:hi].copy()))
        return run

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stab(self, t: float) -> np.ndarray:
        """All rows whose interval contains ``t`` (inclusive).

        Returns an array of shape ``(answer, 2 + value_columns)``.
        """
        if self.root_id is None:
            raise IndexStateError("interval tree has not been built")
        pieces: List[np.ndarray] = []
        node_id: Optional[int] = self.root_id
        while node_id is not None:
            node = self.device.read(node_id)
            if isinstance(node, _IntervalLeaf):
                for block_id in node.run:
                    block = self.device.read(block_id)
                    mask = (block[:, 0] <= t) & (t <= block[:, 1])
                    if np.any(mask):
                        pieces.append(block[mask])
                node_id = None
            elif t < node.center:
                self._collect_lo(node, t, pieces)
                node_id = node.left
            elif t > node.center:
                self._collect_hi(node, t, pieces)
                node_id = node.right
            else:
                # t equals the center: every mid interval stabs, and no
                # interval in either subtree can contain t.
                for block_id in node.lo_run:
                    pieces.append(self.device.read(block_id))
                node_id = None
        pieces.extend(self._stab_overflow(t))
        if not pieces:
            return np.empty((0, self.row_width), dtype=np.float64)
        return np.concatenate(pieces, axis=0)

    def _collect_lo(self, node: _IntervalNode, t: float, pieces: list) -> None:
        """Mid intervals with ``lo <= t`` (their hi >= center > t)."""
        for block_id in node.lo_run:
            block = self.device.read(block_id)
            cut = int(np.searchsorted(block[:, 0], t, side="right"))
            if cut > 0:
                pieces.append(block[:cut])
            if cut < block.shape[0]:
                return

    def _collect_hi(self, node: _IntervalNode, t: float, pieces: list) -> None:
        """Mid intervals with ``hi >= t`` (their lo <= center < t)."""
        for block_id in node.hi_run:
            block = self.device.read(block_id)
            # hi column sorted descending: find how many have hi >= t.
            cut = int(np.searchsorted(-block[:, 1], -t, side="right"))
            if cut > 0:
                pieces.append(block[:cut])
            if cut < block.shape[0]:
                return

    def _stab_overflow(self, t: float) -> List[np.ndarray]:
        hits = []
        for block_id in self._overflow_blocks:
            block = self.device.read(block_id)
            mask = (block[:, 0] <= t) & (t <= block[:, 1])
            if np.any(mask):
                hits.append(block[mask])
        return hits

    # ------------------------------------------------------------------
    # modeled stab cost (batched query pipelines)
    # ------------------------------------------------------------------
    @property
    def has_overflow(self) -> bool:
        """True when appended intervals await the next rebuild.

        Batched query paths fall back to real stabs then: overflow
        rows carry data the modeled-cost pipeline does not replay.
        """
        return bool(self._overflow_blocks)

    def _build_stab_model(self) -> dict:
        """Per-node walk metadata, fetched once without IO charges.

        For every internal node: the center, child ids, each run's
        block ids, and each run's per-block *last* endpoint (ascending
        ``lo`` for the lo run, negated-descending ``hi`` for the hi
        run, both as plain lists so the per-query walk bisects without
        NumPy call overhead) — enough to reproduce exactly which run
        blocks :meth:`_collect_lo`/:meth:`_collect_hi` read, and in
        what order, for any ``t``.  For leaves: the run's block ids.
        """
        model: dict = {}
        stack = [self.root_id] if self.root_id is not None else []
        while stack:
            node_id = stack.pop()
            node = self.device.peek(node_id)
            if isinstance(node, _IntervalLeaf):
                model[node_id] = (None, list(node.run))
                continue
            lo_last = [float(self.device.peek(b)[-1, 0]) for b in node.lo_run]
            hi_last_neg = [
                -float(self.device.peek(b)[-1, 1]) for b in node.hi_run
            ]
            model[node_id] = (
                float(node.center),
                lo_last,
                hi_last_neg,
                list(node.lo_run),
                list(node.hi_run),
                node.left,
                node.right,
            )
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return model

    def _stab_model_dict(self) -> dict:
        if self.root_id is None:
            raise IndexStateError("interval tree has not been built")
        # getattr: trees unpickled from pre-model index files have no
        # cache slot yet.
        model = getattr(self, "_stab_model", None)
        if model is None:
            model = self._build_stab_model()
            self._stab_model = model
        return model

    def modeled_stab_reads_many(self, ts: np.ndarray) -> np.ndarray:
        """Block reads :meth:`stab` would charge for each query time.

        Pure simulation on cached walk metadata — no device IOs, no
        payload handling.  Exact for the static tree; callers must
        take real stabs while :attr:`has_overflow` (the model does not
        price overflow scans).
        """
        from bisect import bisect_right

        model = self._stab_model_dict()
        out = np.zeros(len(ts), dtype=np.int64)
        for pos, t in enumerate(np.asarray(ts, dtype=np.float64).tolist()):
            reads = 0
            node_id: Optional[int] = self.root_id
            while node_id is not None:
                record = model[node_id]
                reads += 1
                if record[0] is None:
                    reads += len(record[1])
                    break
                center, lo_last, hi_last_neg, _, _, left, right = record
                if t < center:
                    # _collect_lo: full blocks (last lo <= t) plus the
                    # first partial one, if any block remains.
                    full = bisect_right(lo_last, t)
                    reads += min(full + 1, len(lo_last))
                    node_id = left
                elif t > center:
                    full = bisect_right(hi_last_neg, -t)
                    reads += min(full + 1, len(hi_last_neg))
                    node_id = right
                else:
                    reads += len(lo_last)
                    break
            out[pos] = reads
        return out

    def modeled_stab_blocks(self, t: float) -> List[int]:
        """The ordered block-id sequence :meth:`stab` would read at ``t``.

        The same walk simulation as :meth:`modeled_stab_reads_many`,
        but returning *which* blocks are touched (node block first,
        then the run prefix, exactly the scalar read order) instead of
        only how many.  The cache-aware batched query pipelines replay
        this sequence through :meth:`~repro.storage.device.
        BlockDevice.replay_reads`, so an attached LRU pool sees the
        identical access stream — hence identical hits, charges, and
        final contents — as the scalar per-query loop.
        """
        from bisect import bisect_right

        model = self._stab_model_dict()
        t = float(t)
        blocks: List[int] = []
        node_id: Optional[int] = self.root_id
        while node_id is not None:
            record = model[node_id]
            blocks.append(node_id)
            if record[0] is None:
                blocks.extend(record[1])
                break
            center, lo_last, hi_last_neg, lo_run, hi_run, left, right = record
            if t < center:
                full = bisect_right(lo_last, t)
                blocks.extend(lo_run[: min(full + 1, len(lo_run))])
                node_id = left
            elif t > center:
                full = bisect_right(hi_last_neg, -t)
                blocks.extend(hi_run[: min(full + 1, len(hi_run))])
                node_id = right
            else:
                blocks.extend(lo_run)
                break
        return blocks

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lo: float, hi: float, value_row: np.ndarray) -> None:
        """Append one interval (Section 4 updates).

        Goes to an overflow region scanned by every stab; once the
        overflow exceeds ``rebuild_fraction * N`` the whole structure
        is rebuilt, amortizing to logarithmic cost per append.
        """
        if self.root_id is None:
            raise IndexStateError("interval tree has not been built")
        row = np.empty(self.row_width, dtype=np.float64)
        row[0] = lo
        row[1] = hi
        row[2:] = np.asarray(value_row, dtype=np.float64)
        self._overflow.append(row)
        # Rewrite the overflow blocks lazily: append into the last block
        # if it has room, else allocate a new one.
        if self._overflow_blocks:
            last = self.device.read(self._overflow_blocks[-1])
            if last.shape[0] < self.block_capacity:
                self.device.write(
                    self._overflow_blocks[-1],
                    np.vstack([last, row.reshape(1, -1)]),
                )
            else:
                self._overflow_blocks.append(
                    self.device.allocate(row.reshape(1, -1))
                )
        else:
            self._overflow_blocks.append(self.device.allocate(row.reshape(1, -1)))
        self.num_intervals += 1
        if len(self._overflow) > self.rebuild_fraction * max(self.num_intervals, 8):
            self._rebuild()

    def _rebuild(self) -> None:
        """Fold the overflow back into a fresh static tree."""
        rows = [row for row in self._iter_all_rows()]
        all_rows = np.vstack(rows)
        self.build(all_rows[:, 0], all_rows[:, 1], all_rows[:, 2:])

    def _iter_all_rows(self):
        """Every stored row (tree runs + overflow); used by rebuilds/tests."""
        stack = [self.root_id] if self.root_id is not None else []
        while stack:
            node_id = stack.pop()
            node = self.device.read(node_id)
            if isinstance(node, _IntervalLeaf):
                for block_id in node.run:
                    yield self.device.read(block_id)
                continue
            for block_id in node.lo_run:
                yield self.device.read(block_id)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        for block_id in self._overflow_blocks:
            yield self.device.read(block_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Structural checks used by the test suite."""
        if self.root_id is None:
            return
        total = 0
        stack: List[Tuple[int, float, float]] = [
            (self.root_id, -np.inf, np.inf)
        ]
        while stack:
            node_id, lo_bound, hi_bound = stack.pop()
            node = self.device.read(node_id)
            if isinstance(node, _IntervalLeaf):
                n = sum(self.device.read(b).shape[0] for b in node.run)
                assert n == node.count, "leaf count drifted"
                total += node.count
                continue
            assert lo_bound <= node.center <= hi_bound, "centers out of order"
            n_lo = sum(self.device.read(b).shape[0] for b in node.lo_run)
            n_hi = sum(self.device.read(b).shape[0] for b in node.hi_run)
            assert n_lo == n_hi == node.count, "run lengths disagree"
            for block_id in node.lo_run:
                block = self.device.read(block_id)
                assert np.all(block[:, 0] <= node.center + 1e-12)
                assert np.all(block[:, 1] >= node.center - 1e-12)
            if node.left is not None:
                stack.append((node.left, lo_bound, node.center))
            if node.right is not None:
                stack.append((node.right, node.center, hi_bound))
            total += node.count
        overflow_total = sum(
            self.device.read(b).shape[0] for b in self._overflow_blocks
        )
        assert total + overflow_total == self.num_intervals

    def __repr__(self) -> str:
        return (
            f"ExternalIntervalTree(intervals={self.num_intervals}, "
            f"overflow={len(self._overflow)})"
        )
