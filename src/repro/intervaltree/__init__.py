"""External-memory interval tree (stabbing queries) for EXACT3."""

from repro.intervaltree.tree import ExternalIntervalTree

__all__ = ["ExternalIntervalTree"]
