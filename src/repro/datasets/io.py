"""Text (CSV) ingestion and export for temporal databases.

The paper's datasets arrive as flat reading files (station, time,
value).  These helpers move between that exchange format and
:class:`~repro.core.database.TemporalDatabase`, applying the same
preprocessing the paper describes: group readings by object and
connect consecutive readings into a piecewise linear function.

Format: a header line ``object_id,time,value`` followed by one reading
per line.  Readings may arrive in any order; duplicated timestamps
within an object keep the last value (matching
:func:`repro.core.plf.from_samples`).
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path
from typing import Optional

from repro.core.database import TemporalDatabase
from repro.core.errors import ReproError
from repro.core.objects import TemporalObject
from repro.core.plf import from_samples

HEADER = ["object_id", "time", "value"]


def save_csv(database: TemporalDatabase, path: str | Path) -> int:
    """Write every knot of every object as a reading; returns row count.

    Zero-score padding knots are written too — a reload reproduces the
    database exactly (up to float text formatting).
    """
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        for obj in database:
            for t, v in zip(obj.function.times, obj.function.values):
                writer.writerow([obj.object_id, repr(float(t)), repr(float(v))])
                rows += 1
    return rows


def load_csv(
    path: str | Path,
    span: Optional[tuple] = None,
    pad: bool = True,
) -> TemporalDatabase:
    """Read a readings CSV into a temporal database.

    Raises :class:`ReproError` on malformed headers/rows or objects
    with fewer than two readings.
    """
    path = Path(path)
    samples: dict = defaultdict(lambda: ([], []))
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip() for h in header] != HEADER:
            raise ReproError(
                f"{path}: expected header {','.join(HEADER)!r}, got {header!r}"
            )
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                object_id = int(row[0])
                t = float(row[1])
                v = float(row[2])
            except (ValueError, IndexError) as exc:
                raise ReproError(f"{path}:{line_number}: bad reading {row!r}") from exc
            times, values = samples[object_id]
            times.append(t)
            values.append(v)
    if not samples:
        raise ReproError(f"{path}: no readings")
    objects = []
    for object_id in sorted(samples):
        times, values = samples[object_id]
        if len(times) < 2:
            raise ReproError(
                f"{path}: object {object_id} has fewer than two readings"
            )
        objects.append(TemporalObject(object_id, from_samples(times, values)))
    return TemporalDatabase(objects, span=span, pad=pad)
