"""Synthetic datasets standing in for the paper's Temp and Meme data.

The real MesoWest and Memetracker datasets are not redistributable;
these generators reproduce the structural properties each experiment
depends on (see DESIGN.md, "Substitutions").
"""

from repro.datasets.meme import generate_meme, generate_meme_object
from repro.datasets.mesowest import generate_station, generate_temp
from repro.datasets.workload import (
    WorkloadBatch,
    random_queries,
    sample_instant_workload,
    sample_poisson_arrivals,
    sample_workload,
)

__all__ = [
    "generate_temp",
    "generate_station",
    "generate_meme",
    "generate_meme_object",
    "random_queries",
    "WorkloadBatch",
    "sample_workload",
    "sample_instant_workload",
    "sample_poisson_arrivals",
]
