"""Query workload generation (paper Section 5 setup).

The paper evaluates every configuration with 100 random queries whose
interval length is a fixed fraction of the domain (default 20% of T)
and reports averages.  :func:`random_queries` reproduces that setup.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.queries import TopKQuery


def random_queries(
    database: TemporalDatabase,
    count: int = 100,
    interval_fraction: float = 0.2,
    k: int = 50,
    seed: int = 0,
) -> List[TopKQuery]:
    """``count`` random ``top-k(t1, t2, sum)`` queries.

    ``t1`` is uniform in ``[0, T - len]`` with ``len = interval_fraction
    * T``, matching the paper's "(t2 - t1) = 20% T" default.
    """
    rng = np.random.default_rng(seed)
    t_min, t_max = database.span
    length = (t_max - t_min) * interval_fraction
    starts = rng.uniform(t_min, t_max - length, count)
    return [TopKQuery(float(s), float(s + length), k) for s in starts]
