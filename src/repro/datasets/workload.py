"""Query workload generation (paper Section 5 setup).

The paper evaluates every configuration with 100 random queries whose
interval length is a fixed fraction of the domain (default 20% of T)
and reports averages.  :func:`random_queries` reproduces that setup;
:func:`sample_workload` generalizes it to the *mixed* batches the
batched query pipeline serves — per-query interval fractions drawn
from a palette and per-query ``k`` spread over ``[1, kmax]`` — with a
fixed-seed PCG64 stream, so benchmark points and equivalence tests
replay the identical workload on every host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.queries import TopKQuery


@dataclass(frozen=True)
class WorkloadBatch:
    """A reproducible batch of ``(t1, t2, k)`` query rows.

    The array-triple form every ``query_many`` entry point accepts
    directly (``repro.core.queries.workload_arrays`` recognizes it);
    :meth:`as_queries` converts to scalar :class:`TopKQuery` objects
    for reference loops.
    """

    t1s: np.ndarray
    t2s: np.ndarray
    ks: np.ndarray

    def __len__(self) -> int:
        return int(self.t1s.size)

    def as_queries(self) -> List[TopKQuery]:
        """The equivalent scalar query objects, in batch order."""
        return [
            TopKQuery(float(t1), float(t2), int(k))
            for t1, t2, k in zip(self.t1s, self.t2s, self.ks)
        ]

    def as_array(self) -> np.ndarray:
        """The batch as one ``(q, 3)`` float array."""
        return np.stack(
            [self.t1s, self.t2s, self.ks.astype(np.float64)], axis=1
        )


def sample_workload(
    database: TemporalDatabase,
    count: int = 256,
    kmax: int = 50,
    seed: int = 0,
    interval_fractions: Sequence[float] = (0.05, 0.2, 0.5),
) -> WorkloadBatch:
    """A seeded mixed-interval / mixed-``k`` aggregate workload.

    Each query draws its interval length fraction uniformly from
    ``interval_fractions`` (the paper's 20% default sits in the
    middle), places ``t1`` uniformly so the interval stays inside the
    database span, and draws ``k`` uniformly from ``[1, kmax]``.
    Identical ``(database span, count, kmax, seed, fractions)``
    reproduce identical batches on any host.
    """
    rng = np.random.default_rng(seed)
    t_min, t_max = database.span
    span = t_max - t_min
    fractions = np.asarray(interval_fractions, dtype=np.float64)
    lengths = span * fractions[rng.integers(0, fractions.size, count)]
    t1s = t_min + rng.uniform(0.0, 1.0, count) * (span - lengths)
    ks = rng.integers(1, kmax + 1, count)
    return WorkloadBatch(t1s=t1s, t2s=t1s + lengths, ks=ks)


def sample_instant_workload(
    database: TemporalDatabase,
    count: int = 256,
    kmax: int = 50,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """A seeded instant-query workload: ``(ts, ks)`` arrays."""
    rng = np.random.default_rng(seed)
    t_min, t_max = database.span
    ts = rng.uniform(t_min, t_max, count)
    ks = rng.integers(1, kmax + 1, count)
    return ts, ks


def sample_poisson_arrivals(
    count: int,
    rate: float,
    seed: int = 0,
) -> np.ndarray:
    """Open-loop Poisson arrival offsets for a serving workload.

    Returns ``count`` ascending arrival times (seconds from the run's
    start): inter-arrival gaps drawn i.i.d. exponential with mean
    ``1 / rate`` from a fixed-seed PCG64 stream, so a load-generation
    run is replayable — identical ``(count, rate, seed)`` reproduce
    the identical arrival schedule on any host.  Open-loop means the
    schedule never waits for responses; under an overloaded server,
    requests queue and measured latency grows, exactly the behavior an
    SLO benchmark must expose (closed-loop generators hide it by
    slowing down with the server).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, count)
    return np.cumsum(gaps)


def random_queries(
    database: TemporalDatabase,
    count: int = 100,
    interval_fraction: float = 0.2,
    k: int = 50,
    seed: int = 0,
) -> List[TopKQuery]:
    """``count`` random ``top-k(t1, t2, sum)`` queries.

    ``t1`` is uniform in ``[0, T - len]`` with ``len = interval_fraction
    * T``, matching the paper's "(t2 - t1) = 20% T" default.
    """
    rng = np.random.default_rng(seed)
    t_min, t_max = database.span
    length = (t_max - t_min) * interval_fraction
    starts = rng.uniform(t_min, t_max - length, count)
    return [TopKQuery(float(s), float(s + length), k) for s in starts]
