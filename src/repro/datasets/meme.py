"""Synthetic Memetracker-style data (the paper's Meme dataset).

The paper's Meme dataset tracks quote/phrase popularity on the web:
~1.5 million objects (URLs) but only ~67 records each on average, with
scores equal to the number of memes observed — a *bursty* regime where
most objects are tiny and short-lived while a heavy tail persists and
dominates.  This generator reproduces those structural features:

* heavy-tailed per-object record counts (Pareto-distributed around the
  requested average, clipped to at least 2 readings),
* short lifetimes placed uniformly in the domain: most objects are
  zero outside a narrow burst window,
* a rise-then-decay burst profile with heavy-tailed peak popularity,
* integer-ish scores (meme counts are cardinalities).

The bursty shape is what drives the paper's Figure 19/20 behaviour:
BREAKPOINTS2 still compresses well because per-object masses are tiny
relative to M, and approximate quality stays high despite the noise.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.objects import TemporalObject
from repro.core.plf import PiecewiseLinearFunction

DEFAULT_SPAN = 1.0e6


def generate_meme_object(
    rng: np.random.Generator,
    object_id: int,
    num_records: int,
    span: float = DEFAULT_SPAN,
) -> TemporalObject:
    """One bursty URL object with ``num_records`` observations."""
    # Lifetime: heavy-tailed but short relative to the domain.
    lifetime = min(span * 0.5, span * 0.002 * (1.0 + rng.pareto(1.5)))
    start = rng.uniform(0.0, span - lifetime)
    offsets = np.sort(rng.uniform(0.0, lifetime, num_records))
    times = np.unique(start + offsets)
    while times.size < 2:
        times = np.unique(start + np.sort(rng.uniform(0.0, lifetime, num_records + 2)))
    # Rise-then-decay burst profile scaled by heavy-tailed popularity.
    peak = 1.0 + rng.pareto(1.2) * 5.0
    rel = (times - start) / max(lifetime, 1e-9)
    profile = np.where(rel < 0.2, rel / 0.2, np.exp(-3.0 * (rel - 0.2)))
    counts = np.rint(peak * profile + rng.uniform(0, 1, times.size))
    counts = np.maximum(counts, 0.0)
    return TemporalObject(
        object_id, PiecewiseLinearFunction(times, counts), label=f"url-{object_id}"
    )


def generate_meme(
    num_objects: int = 5000,
    avg_records: int = 12,
    span: float = DEFAULT_SPAN,
    seed: int = 0,
) -> TemporalDatabase:
    """A Meme-like database: many tiny, bursty objects.

    ``avg_records`` mirrors the paper's n_avg = 67 at reduced scale;
    counts are Pareto-spread so a few objects are much longer-lived
    than the rest.
    """
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(num_objects):
        n = max(2, int(avg_records * 0.5 * (1.0 + rng.pareto(2.0))))
        n = min(n, avg_records * 20)
        objects.append(generate_meme_object(rng, i, n, span))
    return TemporalDatabase(objects, span=(0.0, span), pad=True)
