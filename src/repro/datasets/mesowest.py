"""Synthetic MesoWest-style temperature data (the paper's Temp dataset).

The paper's Temp dataset holds per-station temperature series from the
MesoWest project (26,383 stations, 1997-2011), preprocessed so each
station-year is one object and consecutive readings are connected into
a piecewise linear function.  That data is not redistributable, so this
generator synthesizes series with the same structural features the
paper's methods are sensitive to:

* smooth diurnal + seasonal oscillation (temperatures are continuous
  and slowly varying — see the paper's Figure 1),
* a persistent per-station offset (stations differ in climate, so the
  top-k answer is stable but not constant),
* autocorrelated weather noise (AR(1)) plus reading jitter,
* slightly irregular sampling timestamps (stations report
  asynchronously; the methods explicitly do not assume aligned
  segment endpoints).

Values are kept positive (the paper's default assumption) by using a
Kelvin-like scale around 300.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import TemporalDatabase
from repro.core.objects import TemporalObject
from repro.core.plf import PiecewiseLinearFunction

#: One synthetic "year" of simulated seconds; the default domain.
DEFAULT_SPAN = 1.0e6


def generate_station(
    rng: np.random.Generator,
    object_id: int,
    num_readings: int,
    span: float = DEFAULT_SPAN,
    base_level: float = 300.0,
) -> TemporalObject:
    """One station-year object with ``num_readings`` connected readings."""
    # Irregular but roughly uniform timestamps across the span.
    gaps = rng.exponential(1.0, num_readings)
    times = np.cumsum(gaps)
    times = times / times[-1] * span * rng.uniform(0.9, 1.0)
    times = np.unique(times)
    phase = rng.uniform(0, 2 * np.pi)
    station_offset = rng.normal(0.0, 15.0)
    seasonal = 25.0 * np.sin(2 * np.pi * times / span + phase)
    diurnal = 8.0 * np.sin(2 * np.pi * times / (span / 365.0) + phase)
    noise = _ar1(rng, times.size, rho=0.95, sigma=1.5)
    values = base_level + station_offset + seasonal + diurnal + noise
    values = np.maximum(values, 1.0)
    return TemporalObject(
        object_id, PiecewiseLinearFunction(times, values), label=f"station-{object_id}"
    )


def _ar1(rng: np.random.Generator, n: int, rho: float, sigma: float) -> np.ndarray:
    shocks = rng.normal(0.0, sigma, n)
    out = np.empty(n)
    out[0] = shocks[0]
    for i in range(1, n):
        out[i] = rho * out[i - 1] + shocks[i]
    return out


def generate_temp(
    num_objects: int = 2000,
    avg_readings: int = 100,
    span: float = DEFAULT_SPAN,
    seed: int = 0,
) -> TemporalDatabase:
    """A Temp-like database of ``num_objects`` station-year objects.

    ``avg_readings`` controls ``n_avg``; individual objects vary
    +/- 30% around it, matching the unequal per-station densities the
    paper calls out (their n_avg = 17,833 overall, 1,000 in the scaled
    default experiments).
    """
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(num_objects):
        n = max(4, int(rng.uniform(0.7, 1.3) * avg_readings))
        objects.append(generate_station(rng, i, n, span))
    return TemporalDatabase(objects, span=(0.0, span), pad=True)
