"""IO-efficient external priority queue (construction-sweep substrate)."""

from repro.extpq.pq import ExternalPriorityQueue

__all__ = ["ExternalPriorityQueue"]
