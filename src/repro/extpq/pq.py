"""An IO-efficient external-memory priority queue.

The paper's construction sweeps (BREAKPOINTS2, QUERY1, QUERY2) rely on
an external priority queue [Brodal & Katajainen] to keep per-object
auxiliary state sorted by "when does this object's next segment
appear" without holding all ``m`` objects in memory.

This implementation uses the standard buffered design: a bounded
in-memory min-heap absorbs pushes; when it overflows, its contents are
flushed to a *sorted run* packed into device blocks; ``pop`` merges the
memory heap with the heads of all runs (one block read per ``B`` items
consumed from a run).  All amortized costs are ``O((1/B) log_{M/B}
(N/B))`` IOs per operation in the classic analysis; here what matters
is that every spilled byte moves through the :class:`BlockDevice` and
is therefore counted.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from repro.storage.device import BlockDevice, entries_per_block


class _Run:
    """A sorted run on disk with a read cursor."""

    __slots__ = ("block_ids", "block_index", "buffer", "position")

    def __init__(self, block_ids: List[int]) -> None:
        self.block_ids = block_ids
        self.block_index = 0
        self.buffer: Optional[list] = None
        self.position = 0

    def exhausted(self) -> bool:
        return self.buffer is None and self.block_index >= len(self.block_ids)

    def head(self, device: BlockDevice) -> Optional[Tuple[float, int, Any]]:
        """Peek the smallest remaining item (reads a block when needed)."""
        if self.buffer is None or self.position >= len(self.buffer):
            if self.block_index >= len(self.block_ids):
                self.buffer = None
                return None
            self.buffer = device.read(self.block_ids[self.block_index])
            self.block_index += 1
            self.position = 0
        return self.buffer[self.position]

    def advance(self) -> None:
        self.position += 1


class ExternalPriorityQueue:
    """Min-priority queue of ``(key, payload)`` spilling to a device.

    Parameters
    ----------
    device:
        Where sorted runs are spilled.
    memory_capacity:
        Max items held in the in-memory heap before a spill.
    entry_bytes:
        Assumed on-disk width of one item (key + payload handle), used
        to derive how many items share one block.
    """

    def __init__(
        self,
        device: BlockDevice,
        memory_capacity: int = 4096,
        entry_bytes: int = 16,
    ) -> None:
        if memory_capacity < 2:
            raise ValueError("memory_capacity must be at least 2")
        self.device = device
        self.memory_capacity = memory_capacity
        self.block_capacity = entries_per_block(entry_bytes, device.block_bytes)
        self._heap: List[Tuple[float, int, Any]] = []
        self._runs: List[_Run] = []
        self._seq = 0
        self._size = 0

    # ------------------------------------------------------------------
    def push(self, key: float, payload: Any = None) -> None:
        """Insert an item; spills the memory heap when it overflows."""
        heapq.heappush(self._heap, (float(key), self._seq, payload))
        self._seq += 1
        self._size += 1
        if len(self._heap) > self.memory_capacity:
            self._spill()

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the smallest ``(key, payload)``."""
        if self._size == 0:
            raise IndexError("pop from an empty ExternalPriorityQueue")
        best_run = self._best_run()
        mem_head = self._heap[0] if self._heap else None
        if best_run is not None:
            run, run_head = best_run
            if mem_head is None or run_head < mem_head:
                run.advance()
                self._size -= 1
                self._gc_runs()
                return run_head[0], run_head[2]
        key, _, payload = heapq.heappop(self._heap)
        self._size -= 1
        return key, payload

    def peek(self) -> Tuple[float, Any]:
        """Return the smallest item without removing it."""
        if self._size == 0:
            raise IndexError("peek on an empty ExternalPriorityQueue")
        best_run = self._best_run()
        mem_head = self._heap[0] if self._heap else None
        if best_run is not None:
            run_head = best_run[1]
            if mem_head is None or run_head < mem_head:
                return run_head[0], run_head[2]
        return mem_head[0], mem_head[2]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    def _spill(self) -> None:
        """Flush the memory heap into a new sorted run on the device."""
        items = sorted(self._heap)
        self._heap = []
        block_ids = []
        for lo in range(0, len(items), self.block_capacity):
            chunk = items[lo : lo + self.block_capacity]
            block_ids.append(self.device.allocate(chunk))
        self._runs.append(_Run(block_ids))

    def _best_run(self) -> Optional[Tuple[_Run, Tuple[float, int, Any]]]:
        """The run whose head is smallest, or None."""
        best: Optional[Tuple[_Run, Tuple[float, int, Any]]] = None
        for run in self._runs:
            head = run.head(self.device)
            if head is None:
                continue
            if best is None or head < best[1]:
                best = (run, head)
        return best

    def _gc_runs(self) -> None:
        self._runs = [run for run in self._runs if not run.exhausted()]
