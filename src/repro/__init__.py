"""repro — Ranking Large Temporal Data (Jestes et al., VLDB 2012).

A complete reproduction of the paper's exact and approximate aggregate
top-k indexes over temporal data, including the external-memory
substrates (block device with IO accounting, B+-tree, interval tree,
external priority queue), synthetic stand-ins for the Temp and Meme
datasets, and a benchmark harness regenerating every figure of the
paper's evaluation.

Quickstart::

    from repro import generate_temp, random_queries, Exact3, Appx2

    db = generate_temp(num_objects=500, avg_readings=80, seed=1)
    exact = Exact3().build(db)
    approx = Appx2(epsilon=1e-4, kmax=50).build(db)
    query = random_queries(db, count=1, k=10)[0]
    print(exact.query(query).object_ids)
    print(approx.query(query).object_ids)
"""

from repro.core import (
    AVG,
    F2,
    SUM,
    Aggregate,
    CoordinatorShutdown,
    DeadlineExceeded,
    NodeUnavailable,
    PartialResultError,
    PiecewiseLinearFunction,
    PiecewisePolynomialFunction,
    RankedItem,
    ReproError,
    TemporalDatabase,
    TemporalObject,
    TopKQuery,
    TopKResult,
    from_samples,
)
from repro.datasets import generate_meme, generate_temp, random_queries
from repro.distributed import ObjectPartitionedCluster, TimePartitionedCluster
from repro.exact import Exact1, Exact2, Exact3, RankingMethod
from repro.holistic import QuantileRanker, interval_median, interval_quantile
from repro.instant import InstantBruteForce, InstantIntervalTree
from repro.engine import TemporalRankingEngine
from repro.storage.persistence import (
    PersistenceError,
    load_index,
    read_payload,
    save_index,
    write_payload,
)
from repro.approximate import (
    Appx1,
    Appx1B,
    Appx2,
    Appx2B,
    Appx2Plus,
    Breakpoints,
    build_breakpoints1,
    build_breakpoints2,
    epsilon_for_budget,
)

__version__ = "1.0.0"


def open(path, verify: bool = True):
    """Mount any snapshot directory (engine or cluster) zero-copy.

    Dispatches on the catalog's recorded kind: an engine snapshot
    returns a :class:`TemporalRankingEngine`, a cluster snapshot the
    matching cluster class.  Mounting performs no index builds — the
    kernel arrays come back as read-only ``np.memmap`` views and every
    persisted index re-attaches as built — and the mounted object
    answers queries bit-identically to the one that was snapshotted.
    """
    from repro.storage.snapshot import open_any

    return open_any(path, verify=verify)

__all__ = [
    "Aggregate",
    "SUM",
    "AVG",
    "F2",
    "PiecewiseLinearFunction",
    "PiecewisePolynomialFunction",
    "TemporalDatabase",
    "TemporalObject",
    "TopKQuery",
    "TopKResult",
    "RankedItem",
    "from_samples",
    "RankingMethod",
    "Exact1",
    "Exact2",
    "Exact3",
    "Appx1",
    "Appx1B",
    "Appx2",
    "Appx2B",
    "Appx2Plus",
    "Breakpoints",
    "build_breakpoints1",
    "build_breakpoints2",
    "epsilon_for_budget",
    "generate_temp",
    "generate_meme",
    "random_queries",
    "InstantBruteForce",
    "InstantIntervalTree",
    "QuantileRanker",
    "interval_quantile",
    "interval_median",
    "ObjectPartitionedCluster",
    "TimePartitionedCluster",
    "TemporalRankingEngine",
    "open",
    "ReproError",
    "NodeUnavailable",
    "DeadlineExceeded",
    "PartialResultError",
    "CoordinatorShutdown",
    "PersistenceError",
    "write_payload",
    "read_payload",
    "save_index",
    "load_index",
    "__version__",
]
