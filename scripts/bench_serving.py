#!/usr/bin/env python
"""Serving-tier SLO bench: throughput and latency vs offered load.

Drives the asyncio serving coordinator with a seeded open-loop
Poisson arrival stream (``repro.serving.loadgen``) at several offered
rates and records, per rate, both serving disciplines:

* direct — batch=1 per-request execution (one backend call per
  arrival through a single worker thread), the pre-serving baseline;
* micro — the :class:`~repro.serving.ServingCoordinator`'s adaptive
  micro-batching with in-flight pipelining (result cache disabled, so
  the comparison isolates exactly what batching buys);
* pool<N> — micro-batching with ``workers=N`` process-pool execution
  (the mmap-mounted snapshot workers), one sweep per requested worker
  count > 1, reported with the in-run ``pool<N>_vs_micro`` ratio.

Pool answers are asserted bit-identical to a direct ``serve_many``
pass *before* any timed pool run, and again per point.  On a 1-core
host the pool points still run (functional coverage) but their ratios
are **skip-and-flagged**, never gated: a 1-core pool measures
snapshot/dispatch overhead, not overlap — the same guard
``bench_build``/``bench_query`` apply to executor fan-out points.

Each point reports achieved throughput and p50/p99 latency (measured
against the *scheduled* arrival, so queueing under overload counts),
plus the in-run ``speedup`` ratio (micro/direct throughput, which
normalizes away host speed).  Answers from both disciplines are
asserted bit-identical to one direct ``serve_many`` pass over the
workload — the serving tier must never change an answer.

The backend is the single-node APPX2+ engine (the paper's recommended
approximate method); at offered rates beyond the direct discipline's
saturation point, micro-batching sustains several times the
throughput (``--require-speedup`` enforces a floor when recording).

Usage::

    PYTHONPATH=src python scripts/bench_serving.py [--m 1000]
        [--navg 60] [--r 200] [--kmax 50] [--qk 20] [--count 600]
        [--rates 1000,4000,16000] [--seed 0] [--smoke]
        [--max-batch 128] [--max-delay 0.002] [--workers 1,4]
        [--require-speedup 0] [--require-pool-speedup 0]
        [--baseline BENCH_serving.json] [--max-regression 2.0]

``--smoke`` shrinks every dimension so CI can run in a few seconds.
With ``--baseline`` the run is compared against the committed
trajectory entry whose config matches; the script exits nonzero when
an in-run speedup ratio regresses by more than ``--max-regression`` x.
Output is one JSON object on stdout.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

#: No absolute wall clocks are gated: open-loop run durations are set
#: by the offered schedule, and latencies on shared runners are noise.
GATED_KEYS = ()

#: In-run micro/direct throughput ratio per offered-load point.
GATED_RATIOS = ("speedup",)


def pool_ratio_keys(*points) -> tuple:
    """The ``pool<N>_vs_micro`` ratio keys present in any given point.

    Pool ratios are gated only on multi-core hosts (both sides), so
    the key set is discovered from the data rather than hard-coded —
    a baseline recorded with ``--workers 1,4`` and a run with
    ``--workers 1,2`` gate on their intersection naturally.
    """
    keys = set()
    for point in points:
        keys.update(
            key
            for key in point
            if key.startswith("pool") and key.endswith("_vs_micro")
        )
    return tuple(sorted(keys))


def run_point(backend, plan, max_batch, max_delay, direct_reference):
    """One offered-load point: direct and micro runs plus equivalence."""
    from repro.serving import (
        DirectClient,
        ServingCoordinator,
        run_open_loop,
    )

    async def drive():
        coordinator = ServingCoordinator(
            backend,
            max_batch=max_batch,
            max_delay=max_delay,
            cache_size=0,
        )
        async with coordinator:
            micro = await run_open_loop(coordinator, plan)
        async with DirectClient(backend) as client:
            direct = await run_open_loop(client, plan)
        return micro, direct, coordinator.stats

    micro, direct, stats = asyncio.run(drive())
    for name, result in (("micro", micro), ("direct", direct)):
        if any(a != b for a, b in zip(result.answers, direct_reference)):
            raise AssertionError(
                f"{name} serving answers diverged from direct query_many"
            )
    return {
        "offered_rate": float(plan.rate),
        "requests": len(plan),
        "direct_qps": direct.throughput,
        "direct_p50_ms": direct.p50 * 1e3,
        "direct_p99_ms": direct.p99 * 1e3,
        "direct_duration_s": direct.duration,
        "micro_qps": micro.throughput,
        "micro_p50_ms": micro.p50 * 1e3,
        "micro_p99_ms": micro.p99 * 1e3,
        "micro_duration_s": micro.duration,
        "micro_batches": stats.batches,
        "micro_mean_batch": stats.mean_batch,
        "micro_max_batch": stats.max_batch,
        "speedup": micro.throughput / max(direct.throughput, 1e-12),
    }


def run_pool_point(
    backend, plan, max_batch, max_delay, workers, point, direct_reference
):
    """One process-pool sweep at ``workers`` for an offered-load point.

    Pool startup (snapshot write, worker warm-up) happens inside the
    coordinator's ``start()`` — *outside* the open-loop's timed
    window, so the point measures steady-state dispatch, not mounts.
    Merges ``pool<N>_*`` keys into ``point``.
    """
    from repro.serving import ServingCoordinator, run_open_loop

    async def drive():
        coordinator = ServingCoordinator(
            backend,
            max_batch=max_batch,
            max_delay=max_delay,
            cache_size=0,
            workers=workers,
        )
        async with coordinator:
            pooled = await run_open_loop(coordinator, plan)
        return pooled, coordinator.stats

    pooled, stats = asyncio.run(drive())
    if any(a != b for a, b in zip(pooled.answers, direct_reference)):
        raise AssertionError(
            f"pool (workers={workers}) answers diverged from direct "
            "query_many"
        )
    prefix = f"pool{workers}"
    point[f"{prefix}_qps"] = pooled.throughput
    point[f"{prefix}_p50_ms"] = pooled.p50 * 1e3
    point[f"{prefix}_p99_ms"] = pooled.p99 * 1e3
    point[f"{prefix}_dispatches"] = stats.pool_dispatches
    point[f"{prefix}_warmups"] = stats.warmups
    point[f"{prefix}_vs_micro"] = pooled.throughput / max(
        point["micro_qps"], 1e-12
    )
    point[f"{prefix}_vs_direct"] = pooled.throughput / max(
        point["direct_qps"], 1e-12
    )
    return point


def assert_pool_equivalence(backend, plan, workers) -> None:
    """Serve the whole plan through a pooled coordinator (untimed) and
    assert answers bit-identical to one direct ``serve_many`` pass —
    the before-timing gate on answers, tie-breaks, and the IO model
    (a mounted snapshot charges identical IO by the PR 8 contract).
    """
    from repro.serving import ServingCoordinator

    reference = backend.serve_many(
        plan.batch.t1s, plan.batch.t2s, plan.batch.ks
    )

    async def drive():
        coordinator = ServingCoordinator(
            backend,
            max_batch=64,
            max_delay=0.001,
            cache_size=0,
            workers=workers,
        )
        async with coordinator:
            return await asyncio.gather(
                *[
                    coordinator.top_k(t1, t2, k)
                    for t1, t2, k in zip(
                        plan.batch.t1s, plan.batch.t2s, plan.batch.ks
                    )
                ]
            )

    answers = asyncio.run(drive())
    if any(a != b for a, b in zip(answers, reference)):
        raise AssertionError(
            f"pool (workers={workers}) pre-timing equivalence failed"
        )


def check_baseline(report, path, max_regression) -> int:
    """Compare against the matching committed entry; 0 when OK."""
    from repro.bench.gating import (
        compare_results,
        find_baseline_entry,
        single_core_host,
    )

    with open(path) as handle:
        history = json.load(handle)
    baseline = find_baseline_entry(history, report["config"])
    if baseline is None:
        print(
            f"baseline: no entry in {path} matches this config; skipping",
            file=sys.stderr,
        )
        return 0
    gate_pool = not (
        single_core_host(report.get("host"))
        or single_core_host(baseline.get("host", {}))
    )
    failures = []
    skipped_pool = False
    for name, point in report["results"].items():
        base = baseline["results"].get(name)
        if base is None:
            continue
        ratios = GATED_RATIOS
        pool_ratios = pool_ratio_keys(base, point)
        if pool_ratios and gate_pool:
            ratios = ratios + pool_ratios
        elif pool_ratios:
            skipped_pool = True
        failures.extend(
            compare_results(
                base, point, GATED_KEYS, ratios, max_regression,
                label=f"{name} ",
            )
        )
    if skipped_pool:
        print(
            "pool points: gating SKIPPED (1-core host on one side — a "
            "1-core pool measures snapshot/dispatch overhead, not "
            "overlapping batches)",
            file=sys.stderr,
        )
    for line in failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=1000, help="objects")
    parser.add_argument("--navg", type=int, default=60, help="avg readings")
    parser.add_argument("--r", type=int, default=200, help="breakpoint budget")
    parser.add_argument("--kmax", type=int, default=50, help="engine kmax")
    parser.add_argument(
        "--qk", type=int, default=20, help="max per-query k in the workload"
    )
    parser.add_argument(
        "--count", type=int, default=600, help="requests per offered rate"
    )
    parser.add_argument(
        "--rates",
        type=str,
        default="1000,4000,16000",
        help="comma-separated offered loads (requests/second), ascending",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=128)
    parser.add_argument(
        "--max-delay",
        type=float,
        default=0.002,
        help="micro-batch accumulation deadline, seconds",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=0.0,
        help="fail unless the saturating-load micro/direct throughput "
        "ratio reaches this (e.g. 3.0 when recording trajectory entries)",
    )
    parser.add_argument(
        "--workers",
        type=str,
        default="1,4",
        help="comma-separated pool worker counts to sweep; counts > 1 "
        "add pool<N>_* keys per offered-load point",
    )
    parser.add_argument(
        "--require-pool-speedup",
        type=float,
        default=0.0,
        help="fail unless the saturating-load pool/micro throughput "
        "ratio at the largest worker count reaches this "
        "(skip-and-flagged on a 1-core host, e.g. 2.0 at workers=4)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help="committed BENCH_serving.json to compare this run against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.smoke:
        args.m = min(args.m, 200)
        args.navg = min(args.navg, 25)
        args.r = min(args.r, 30)
        args.kmax = min(args.kmax, 30)
        args.qk = min(args.qk, 10)
        args.count = min(args.count, 200)
        if args.workers == "1,4":
            args.workers = "1,2"
    rates = sorted(float(rate) for rate in args.rates.split(","))
    worker_counts = sorted({int(w) for w in args.workers.split(",")})
    pool_counts = [w for w in worker_counts if w > 1]

    from repro.approximate.methods import Appx2Plus
    from repro.bench.gating import host_metadata, single_core_host
    from repro.datasets import generate_temp
    from repro.engine import TemporalRankingEngine
    from repro.serving import EngineBackend
    from repro.serving.loadgen import plan_poisson_load

    database = generate_temp(
        num_objects=args.m, avg_readings=args.navg, seed=args.seed
    )
    engine = TemporalRankingEngine(database, kmax=args.kmax)
    # Bind the approximate index to the r budget (matches bench_query's
    # shape) and build it now so no load point pays the lazy build.
    engine._approximate = Appx2Plus(r=args.r, kmax=args.kmax).build(database)
    backend = EngineBackend(engine, approximate=True)

    # Gate on answers before any timed pool run: the pool must be a
    # pure execution change.
    if pool_counts:
        equivalence_plan = plan_poisson_load(
            database,
            count=min(args.count, 64),
            rate=rates[0],
            kmax=args.qk,
            seed=args.seed,
        )
        for workers in pool_counts:
            assert_pool_equivalence(backend, equivalence_plan, workers)

    results = {}
    for rate in rates:
        plan = plan_poisson_load(
            database,
            count=args.count,
            rate=rate,
            kmax=args.qk,
            seed=args.seed,
        )
        reference = backend.serve_many(
            plan.batch.t1s, plan.batch.t2s, plan.batch.ks
        )
        point = run_point(
            backend, plan, args.max_batch, args.max_delay, reference
        )
        for workers in pool_counts:
            run_pool_point(
                backend,
                plan,
                args.max_batch,
                args.max_delay,
                workers,
                point,
                reference,
            )
        results[f"rate_{int(rate)}"] = point

    saturated = results[f"rate_{int(rates[-1])}"]
    single_core = single_core_host()
    report = {
        "bench": "serving",
        "config": {
            "m": args.m,
            "navg": args.navg,
            "r": args.r,
            "kmax": args.kmax,
            "qk": args.qk,
            "count": args.count,
            "rates": rates,
            "workers": worker_counts,
            "max_batch": args.max_batch,
            "max_delay": args.max_delay,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "host": host_metadata(),
        "backend": backend.name,
        "saturated_speedup": saturated["speedup"],
        "single_core_host": single_core,
        "results": results,
    }
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    status = 0
    if args.require_speedup and saturated["speedup"] < args.require_speedup:
        print(
            f"SPEEDUP FLOOR: saturating-load micro/direct ratio "
            f"{saturated['speedup']:.2f}x < required "
            f"{args.require_speedup:.2f}x",
            file=sys.stderr,
        )
        status = 1
    if args.require_pool_speedup and pool_counts:
        ratio = saturated[f"pool{pool_counts[-1]}_vs_micro"]
        if single_core:
            print(
                f"POOL FLOOR: skipped on a 1-core host (pool{pool_counts[-1]}"
                f"_vs_micro={ratio:.2f}x recorded but flagged — the point "
                "measures dispatch overhead, not overlap)",
                file=sys.stderr,
            )
        elif ratio < args.require_pool_speedup:
            print(
                f"POOL FLOOR: saturating-load pool{pool_counts[-1]}/micro "
                f"ratio {ratio:.2f}x < required "
                f"{args.require_pool_speedup:.2f}x",
                file=sys.stderr,
            )
            status = 1
    if args.baseline is not None:
        status = max(status, check_baseline(
            report, args.baseline, args.max_regression
        ))
    return status


if __name__ == "__main__":
    sys.exit(main())
