#!/usr/bin/env python
"""Serving-tier SLO bench: throughput and latency vs offered load.

Drives the asyncio serving coordinator with a seeded open-loop
Poisson arrival stream (``repro.serving.loadgen``) at several offered
rates and records, per rate, both serving disciplines:

* direct — batch=1 per-request execution (one backend call per
  arrival through a single worker thread), the pre-serving baseline;
* micro — the :class:`~repro.serving.ServingCoordinator`'s adaptive
  micro-batching with in-flight pipelining (result cache disabled, so
  the comparison isolates exactly what batching buys).

Each point reports achieved throughput and p50/p99 latency (measured
against the *scheduled* arrival, so queueing under overload counts),
plus the in-run ``speedup`` ratio (micro/direct throughput, which
normalizes away host speed).  Answers from both disciplines are
asserted bit-identical to one direct ``serve_many`` pass over the
workload — the serving tier must never change an answer.

The backend is the single-node APPX2+ engine (the paper's recommended
approximate method); at offered rates beyond the direct discipline's
saturation point, micro-batching sustains several times the
throughput (``--require-speedup`` enforces a floor when recording).

Usage::

    PYTHONPATH=src python scripts/bench_serving.py [--m 1000]
        [--navg 60] [--r 200] [--kmax 50] [--qk 20] [--count 600]
        [--rates 1000,4000,16000] [--seed 0] [--smoke]
        [--max-batch 128] [--max-delay 0.002]
        [--require-speedup 0] [--baseline BENCH_serving.json]
        [--max-regression 2.0]

``--smoke`` shrinks every dimension so CI can run in a few seconds.
With ``--baseline`` the run is compared against the committed
trajectory entry whose config matches; the script exits nonzero when
an in-run speedup ratio regresses by more than ``--max-regression`` x.
Output is one JSON object on stdout.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

#: No absolute wall clocks are gated: open-loop run durations are set
#: by the offered schedule, and latencies on shared runners are noise.
GATED_KEYS = ()

#: In-run micro/direct throughput ratio per offered-load point.
GATED_RATIOS = ("speedup",)


def run_point(backend, plan, max_batch, max_delay, direct_reference):
    """One offered-load point: direct and micro runs plus equivalence."""
    from repro.serving import (
        DirectClient,
        ServingCoordinator,
        run_open_loop,
    )

    async def drive():
        coordinator = ServingCoordinator(
            backend,
            max_batch=max_batch,
            max_delay=max_delay,
            cache_size=0,
        )
        async with coordinator:
            micro = await run_open_loop(coordinator, plan)
        async with DirectClient(backend) as client:
            direct = await run_open_loop(client, plan)
        return micro, direct, coordinator.stats

    micro, direct, stats = asyncio.run(drive())
    for name, result in (("micro", micro), ("direct", direct)):
        if any(a != b for a, b in zip(result.answers, direct_reference)):
            raise AssertionError(
                f"{name} serving answers diverged from direct query_many"
            )
    return {
        "offered_rate": float(plan.rate),
        "requests": len(plan),
        "direct_qps": direct.throughput,
        "direct_p50_ms": direct.p50 * 1e3,
        "direct_p99_ms": direct.p99 * 1e3,
        "direct_duration_s": direct.duration,
        "micro_qps": micro.throughput,
        "micro_p50_ms": micro.p50 * 1e3,
        "micro_p99_ms": micro.p99 * 1e3,
        "micro_duration_s": micro.duration,
        "micro_batches": stats.batches,
        "micro_mean_batch": stats.mean_batch,
        "micro_max_batch": stats.max_batch,
        "speedup": micro.throughput / max(direct.throughput, 1e-12),
    }


def check_baseline(report, path, max_regression) -> int:
    """Compare against the matching committed entry; 0 when OK."""
    from repro.bench.gating import compare_results, find_baseline_entry

    with open(path) as handle:
        history = json.load(handle)
    baseline = find_baseline_entry(history, report["config"])
    if baseline is None:
        print(
            f"baseline: no entry in {path} matches this config; skipping",
            file=sys.stderr,
        )
        return 0
    failures = []
    for name, point in report["results"].items():
        base = baseline["results"].get(name)
        if base is None:
            continue
        failures.extend(
            compare_results(
                base, point, GATED_KEYS, GATED_RATIOS, max_regression,
                label=f"{name} ",
            )
        )
    for line in failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=1000, help="objects")
    parser.add_argument("--navg", type=int, default=60, help="avg readings")
    parser.add_argument("--r", type=int, default=200, help="breakpoint budget")
    parser.add_argument("--kmax", type=int, default=50, help="engine kmax")
    parser.add_argument(
        "--qk", type=int, default=20, help="max per-query k in the workload"
    )
    parser.add_argument(
        "--count", type=int, default=600, help="requests per offered rate"
    )
    parser.add_argument(
        "--rates",
        type=str,
        default="1000,4000,16000",
        help="comma-separated offered loads (requests/second), ascending",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=128)
    parser.add_argument(
        "--max-delay",
        type=float,
        default=0.002,
        help="micro-batch accumulation deadline, seconds",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=0.0,
        help="fail unless the saturating-load micro/direct throughput "
        "ratio reaches this (e.g. 3.0 when recording trajectory entries)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help="committed BENCH_serving.json to compare this run against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.smoke:
        args.m = min(args.m, 200)
        args.navg = min(args.navg, 25)
        args.r = min(args.r, 30)
        args.kmax = min(args.kmax, 30)
        args.qk = min(args.qk, 10)
        args.count = min(args.count, 200)
    rates = sorted(float(rate) for rate in args.rates.split(","))

    from repro.approximate.methods import Appx2Plus
    from repro.bench.gating import host_metadata
    from repro.datasets import generate_temp
    from repro.engine import TemporalRankingEngine
    from repro.serving import EngineBackend
    from repro.serving.loadgen import plan_poisson_load

    database = generate_temp(
        num_objects=args.m, avg_readings=args.navg, seed=args.seed
    )
    engine = TemporalRankingEngine(database, kmax=args.kmax)
    # Bind the approximate index to the r budget (matches bench_query's
    # shape) and build it now so no load point pays the lazy build.
    engine._approximate = Appx2Plus(r=args.r, kmax=args.kmax).build(database)
    backend = EngineBackend(engine, approximate=True)

    results = {}
    for rate in rates:
        plan = plan_poisson_load(
            database,
            count=args.count,
            rate=rate,
            kmax=args.qk,
            seed=args.seed,
        )
        reference = backend.serve_many(
            plan.batch.t1s, plan.batch.t2s, plan.batch.ks
        )
        results[f"rate_{int(rate)}"] = run_point(
            backend, plan, args.max_batch, args.max_delay, reference
        )

    saturated = results[f"rate_{int(rates[-1])}"]
    report = {
        "bench": "serving",
        "config": {
            "m": args.m,
            "navg": args.navg,
            "r": args.r,
            "kmax": args.kmax,
            "qk": args.qk,
            "count": args.count,
            "rates": rates,
            "max_batch": args.max_batch,
            "max_delay": args.max_delay,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "host": host_metadata(),
        "backend": backend.name,
        "saturated_speedup": saturated["speedup"],
        "results": results,
    }
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    status = 0
    if args.require_speedup and saturated["speedup"] < args.require_speedup:
        print(
            f"SPEEDUP FLOOR: saturating-load micro/direct ratio "
            f"{saturated['speedup']:.2f}x < required "
            f"{args.require_speedup:.2f}x",
            file=sys.stderr,
        )
        status = 1
    if args.baseline is not None:
        status = max(status, check_baseline(
            report, args.baseline, args.max_regression
        ))
    return status


if __name__ == "__main__":
    sys.exit(main())
