#!/usr/bin/env python
"""Scalar-vs-batch kernel timings as JSON, for trajectory tracking.

Runs three measurements on a generated Temp-like database:

* batch scoring: per-object scalar loop vs ``PLFStore.integrals_many``
  (the ISSUE's >= 5x micro-benchmark gate),
* BREAKPOINTS1 construction wall-clock,
* BREAKPOINTS2 construction wall-clock (efficient sweep + baseline).

Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [--m 1000] [--navg 60]
        [--queries 8] [--r 40] [--seed 0] [--smoke]
        [--baseline BENCH_kernel.json] [--max-regression 2.0]

``--smoke`` shrinks every dimension so CI can run the script in a few
seconds.  With ``--baseline`` the run is compared against the
committed trajectory entry whose config matches; the script exits
nonzero when a gated timing or speedup ratio regresses by more than
``--max-regression`` x.  Output is a single JSON object (``config`` +
``results``) on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: Wall-clock keys gated by the --baseline regression check (batched /
#: efficient paths only; scalar references feed the ratio gates).
GATED_KEYS = (
    "batch_seconds",
    "bp1_seconds",
    "bp2_seconds",
)

#: Speedup ratios gated by the --baseline check.  Ratios compare two
#: paths within one run, so they are robust to the host being slower
#: or faster than the machine that recorded the baseline (that is the
#: machine normalization; absolute timings only gate above the floor).
GATED_RATIOS = (
    "speedup",
    "bp2_baseline_speedup",
)


def check_baseline(report, path, max_regression) -> int:
    """Compare against the matching committed entry; 0 when OK."""
    from repro.bench.gating import compare_results, find_baseline_entry

    with open(path) as handle:
        history = json.load(handle)
    baseline = find_baseline_entry(history, report["config"])
    if baseline is None:
        print(
            f"baseline: no entry in {path} matches this config; skipping",
            file=sys.stderr,
        )
        return 0
    failures = compare_results(
        baseline["results"], report["results"],
        GATED_KEYS, GATED_RATIOS, max_regression,
    )
    for line in failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=1000, help="objects")
    parser.add_argument("--navg", type=int, default=60, help="avg readings")
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--r", type=int, default=40, help="breakpoint budget")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help="committed BENCH_kernel.json to compare this run against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.smoke:
        args.m = min(args.m, 120)
        args.navg = min(args.navg, 20)
        args.queries = min(args.queries, 4)
        args.r = min(args.r, 12)

    from repro.approximate.breakpoints import (
        build_breakpoints1,
        build_breakpoints2,
        build_breakpoints2_baseline,
        epsilon_for_budget,
    )
    from repro.bench.gating import host_metadata
    from repro.bench.harness import kernel_microbenchmark
    from repro.datasets import generate_temp

    database = generate_temp(
        num_objects=args.m, avg_readings=args.navg, seed=args.seed
    )
    results = kernel_microbenchmark(
        database, num_queries=args.queries, seed=args.seed,
        repeats=args.repeats,
    )

    start = time.perf_counter()
    bp1 = build_breakpoints1(database, r=args.r)
    results["bp1_seconds"] = time.perf_counter() - start
    results["bp1_r"] = float(bp1.r)

    epsilon = epsilon_for_budget(
        database, args.r, tolerance=max(2, args.r // 20)
    )
    start = time.perf_counter()
    bp2 = build_breakpoints2(database, epsilon)
    results["bp2_seconds"] = time.perf_counter() - start
    results["bp2_r"] = float(bp2.r)
    start = time.perf_counter()
    build_breakpoints2_baseline(database, epsilon)
    results["bp2_baseline_seconds"] = time.perf_counter() - start
    results["bp2_baseline_speedup"] = results["bp2_baseline_seconds"] / max(
        results["bp2_seconds"], 1e-12
    )

    report = {
        "bench": "kernel",
        "config": {
            "m": args.m,
            "navg": args.navg,
            "queries": args.queries,
            "r": args.r,
            "seed": args.seed,
            "repeats": args.repeats,
            "smoke": bool(args.smoke),
        },
        # Host facts live beside (not inside) config: baseline matching
        # keys on the machine-independent workload shape only.
        "host": host_metadata(),
        "results": results,
    }
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if args.baseline is not None:
        return check_baseline(report, args.baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
