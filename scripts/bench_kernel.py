#!/usr/bin/env python
"""Scalar-vs-batch kernel timings as JSON, for trajectory tracking.

Runs three measurements on a generated Temp-like database:

* batch scoring: per-object scalar loop vs ``PLFStore.integrals_many``
  (the ISSUE's >= 5x micro-benchmark gate),
* BREAKPOINTS1 construction wall-clock,
* BREAKPOINTS2 construction wall-clock (efficient sweep + baseline).

Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [--m 1000] [--navg 60]
        [--queries 8] [--r 40] [--seed 0] [--smoke]

``--smoke`` shrinks every dimension so CI can run the script in a few
seconds.  Output is a single JSON object on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=1000, help="objects")
    parser.add_argument("--navg", type=int, default=60, help="avg readings")
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--r", type=int, default=40, help="breakpoint budget")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.m = min(args.m, 120)
        args.navg = min(args.navg, 20)
        args.queries = min(args.queries, 4)
        args.r = min(args.r, 12)

    from repro.approximate.breakpoints import (
        build_breakpoints1,
        build_breakpoints2,
        build_breakpoints2_baseline,
        epsilon_for_budget,
    )
    from repro.bench.harness import kernel_microbenchmark
    from repro.datasets import generate_temp

    database = generate_temp(
        num_objects=args.m, avg_readings=args.navg, seed=args.seed
    )
    report = kernel_microbenchmark(
        database, num_queries=args.queries, seed=args.seed, repeats=args.repeats
    )

    start = time.perf_counter()
    bp1 = build_breakpoints1(database, r=args.r)
    report["bp1_seconds"] = time.perf_counter() - start
    report["bp1_r"] = float(bp1.r)

    epsilon = epsilon_for_budget(
        database, args.r, tolerance=max(2, args.r // 20)
    )
    start = time.perf_counter()
    bp2 = build_breakpoints2(database, epsilon)
    report["bp2_seconds"] = time.perf_counter() - start
    report["bp2_r"] = float(bp2.r)
    start = time.perf_counter()
    build_breakpoints2_baseline(database, epsilon)
    report["bp2_baseline_seconds"] = time.perf_counter() - start

    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
