#!/usr/bin/env python
"""Durable storage tier bench: cold-open vs rebuild, mmap fan-out.

Measures what the segment + catalog tier buys over rebuilding from the
raw dataset:

* **open** — wall time to build a :class:`TemporalRankingEngine` from
  scratch (store + EXACT3 index) versus cold-mounting the same engine
  from a snapshot directory (``repro.open``: memmap the CSR segments,
  unpickle the index skeleton, re-attach block payloads — zero
  builds).  ``open_speedup`` is the in-run ratio, so it normalizes
  away host speed; mounted answers are asserted bit-identical to the
  rebuilt engine's on a sampled workload before anything is reported.
* **fanout** — bytes pickled to ship the kernel's CSR view to a
  process-pool worker: a mounted view serializes as its segment path
  (the worker re-mounts zero-copy), an in-memory view serializes every
  array.  ``payload_shrink`` is the ratio.
* **rss** — resident-set delta of a fresh subprocess that maps the
  store segment versus one that unpickles the same arrays: mapped
  pages are shared file cache, unpickled bytes are private heap.
  Reported but not gated (small datasets sit inside interpreter
  noise).

Usage::

    PYTHONPATH=src python scripts/bench_storage.py [--m 1000]
        [--navg 60] [--count 200] [--seed 0] [--smoke]
        [--require-speedup 0] [--baseline BENCH_storage.json]
        [--max-regression 2.0]

``--smoke`` shrinks every dimension so CI can run in a few seconds.
With ``--baseline`` the run is compared against the committed
trajectory entry whose config matches; the script exits nonzero when
an in-run speedup ratio regresses by more than ``--max-regression`` x.
Output is one JSON object on stdout.
"""

from __future__ import annotations

import argparse
import json
import pickle
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: No absolute wall clocks are gated: open/rebuild times depend on the
#: host; the in-run ratio is the portable signal.
GATED_KEYS = ()

#: In-run cold-open vs rebuild ratio (and the fan-out payload ratio,
#: which is a pure format property).
GATED_RATIOS = ("open_speedup", "payload_shrink")

_RSS_CHILD = """
import pickle, sys
mode, path = sys.argv[1], sys.argv[2]
sys.path.insert(0, sys.argv[3])
from repro.core.plfstore import PLFStore  # same import cost both modes
if mode == "mount":
    store = PLFStore.from_segments(path, verify=False)
    touch = float(store.totals.sum())  # fault in a few pages
else:
    with open(path, "rb") as handle:
        store = pickle.loads(handle.read())
    touch = float(store["totals"].sum())
with open("/proc/self/statm") as handle:
    pages = int(handle.read().split()[1])
print(pages)
"""


def _child_rss_kb(mode: str, path: str, src: str) -> float:
    """Resident KB of a fresh interpreter after loading the store."""
    import resource

    out = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD, mode, path, src],
        capture_output=True,
        text=True,
        check=True,
    )
    page_kb = resource.getpagesize() // 1024
    return int(out.stdout.split()[-1]) * page_kb


def bench_open(engine_factory, database, queries, snap_dir, repeats=3):
    """Rebuild-vs-mount timing plus the bit-identity assertion.

    Both sides are best-of-``repeats``: rebuild and mount each take
    tens of milliseconds at m=1000, so a single sample sits inside
    scheduler jitter and the gated ratio would wobble run to run.
    """
    import repro

    rebuild_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        rebuilt = engine_factory(database)
        rebuild_seconds = min(
            rebuild_seconds, time.perf_counter() - start
        )

    start = time.perf_counter()
    rebuilt.snapshot(snap_dir)
    snapshot_seconds = time.perf_counter() - start
    snapshot_bytes = sum(f.stat().st_size for f in Path(snap_dir).iterdir())

    cold_open_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        mounted = repro.open(snap_dir)
        cold_open_seconds = min(
            cold_open_seconds, time.perf_counter() - start
        )

    for q in queries:
        a = rebuilt.exact.measured_query(q)
        b = mounted.exact.measured_query(q)
        if a.result != b.result or a.ios != b.ios:
            raise AssertionError(
                f"mounted engine diverged on {q}: "
                f"{a.result!r}/{a.ios} vs {b.result!r}/{b.ios}"
            )
    return mounted, {
        "rebuild_seconds": rebuild_seconds,
        "snapshot_seconds": snapshot_seconds,
        "snapshot_bytes": snapshot_bytes,
        "cold_open_seconds": cold_open_seconds,
        "open_speedup": rebuild_seconds / max(cold_open_seconds, 1e-12),
    }


def bench_fanout(mounted, database):
    """Worker-shipment payload: segment path vs pickled arrays."""
    mounted_view = mounted.database.store().csr_view()
    memory_view = database.store().csr_view()
    mounted_bytes = len(pickle.dumps(mounted_view))
    memory_bytes = len(pickle.dumps(memory_view))
    return {
        "pickle_bytes_mounted": mounted_bytes,
        "pickle_bytes_memory": memory_bytes,
        "payload_shrink": memory_bytes / max(mounted_bytes, 1),
    }


def bench_rss(mounted, database, tmp, src):
    """Fresh-process resident set: mmap mount vs unpickled arrays."""
    from repro.storage.segments import STORE_ARRAYS

    seg_path = mounted.database.store().segment_path
    pickle_path = str(Path(tmp) / "store_arrays.pkl")
    store = database.store()
    with open(pickle_path, "wb") as handle:
        pickle.dump(
            {name: getattr(store, name) for name in STORE_ARRAYS},
            handle,
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    mounted_rss = _child_rss_kb("mount", seg_path, src)
    pickled_rss = _child_rss_kb("pickle", pickle_path, src)
    return {
        "mounted_rss_kb": mounted_rss,
        "pickled_rss_kb": pickled_rss,
        "rss_delta_kb": pickled_rss - mounted_rss,
    }


def check_baseline(report, path, max_regression) -> int:
    """Compare against the matching committed entry; 0 when OK."""
    from repro.bench.gating import compare_results, find_baseline_entry

    with open(path) as handle:
        history = json.load(handle)
    baseline = find_baseline_entry(history, report["config"])
    if baseline is None:
        print(
            f"baseline: no entry in {path} matches this config; skipping",
            file=sys.stderr,
        )
        return 0
    failures = []
    for name, point in report["results"].items():
        base = baseline["results"].get(name)
        if base is None:
            continue
        failures.extend(
            compare_results(
                base, point, GATED_KEYS, GATED_RATIOS, max_regression,
                label=f"{name} ",
            )
        )
    for line in failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=1000, help="objects")
    parser.add_argument("--navg", type=int, default=60, help="avg readings")
    parser.add_argument(
        "--count", type=int, default=200, help="equivalence-check queries"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=0.0,
        help="fail unless cold-open beats rebuild by this ratio "
        "(e.g. 5.0 when recording trajectory entries at m=1000)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help="committed BENCH_storage.json to compare this run against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.smoke:
        args.m = min(args.m, 150)
        args.navg = min(args.navg, 20)
        args.count = min(args.count, 40)

    from repro.bench.gating import host_metadata
    from repro.datasets import generate_temp, random_queries
    from repro.engine import TemporalRankingEngine

    database = generate_temp(
        num_objects=args.m, avg_readings=args.navg, seed=args.seed
    )
    queries = random_queries(database, count=args.count, k=10, seed=args.seed)
    src = str(Path(__file__).resolve().parent.parent / "src")

    with tempfile.TemporaryDirectory() as tmp:
        snap_dir = str(Path(tmp) / "snap")
        mounted, open_point = bench_open(
            TemporalRankingEngine, database, queries, snap_dir
        )
        fanout_point = bench_fanout(mounted, database)
        rss_point = bench_rss(mounted, database, tmp, src)

    report = {
        "bench": "storage",
        "config": {
            "m": args.m,
            "navg": args.navg,
            "count": args.count,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "host": host_metadata(),
        "open_speedup": open_point["open_speedup"],
        "results": {
            "open": open_point,
            "fanout": fanout_point,
            "rss": rss_point,
        },
    }
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    status = 0
    if (
        args.require_speedup
        and open_point["open_speedup"] < args.require_speedup
    ):
        print(
            f"SPEEDUP FLOOR: cold-open vs rebuild ratio "
            f"{open_point['open_speedup']:.2f}x < required "
            f"{args.require_speedup:.2f}x",
            file=sys.stderr,
        )
        status = 1
    if args.baseline is not None:
        status = max(status, check_baseline(
            report, args.baseline, args.max_regression
        ))
    return status


if __name__ == "__main__":
    sys.exit(main())
