#!/usr/bin/env python
"""Index-build timings (scalar vs batched) as JSON, for the BENCH
trajectory.

For each breakpoint budget ``r`` this measures, on a generated
Temp-like database:

* QUERY1 (NestedPairIndex) build: historical scalar loop vs the
  batched top-list materialization pipeline (the ISSUE's >= 10x gate
  at r~200, m~1000),
* QUERY2 (DyadicIndex) build: recursive frames vs batched,
* BREAKPOINTS1 construction wall-clock,
* BREAKPOINTS2 construction: per-event sweep vs the vectorized
  danger-check pre-pass,
* with ``--workers``/``--backend``: the multi-core fan-out of the
  QUERY1/QUERY2/BREAKPOINTS2 batched builds through the shared
  executor, timed against the single-core batched path.

Usage::

    PYTHONPATH=src python scripts/bench_build.py [--m 1000] [--navg 60]
        [--r-list 50,100,200] [--kmax 200] [--seed 0] [--smoke]
        [--workers 4] [--backend process]
        [--baseline BENCH_build.json] [--max-regression 2.0]

``--smoke`` shrinks every dimension so CI can run in a few seconds.
The resolved executor backend and worker count are always printed
into the JSON record (top-level ``executor``), so trajectory entries
from different machines/backends stay distinguishable before
normalization.  With ``--baseline`` the run is compared against the
committed trajectory entry whose config matches; the script exits
nonzero when any batched build time regresses by more than
``--max-regression`` x.  Parallel fan-out timings are gated only when
both the baseline's host and the current host are multi-core; on a
1-core host they measure pool overhead, so the gate skips them with
an explicit flag.  Output is a single JSON object on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def timed(fn, repeats=1):
    """Best-of-``repeats`` wall time (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


#: Timing keys gated by the --baseline regression check (batched paths
#: only: the scalar reference paths are measured for the speedup
#: columns, not guarded).
GATED_KEYS = (
    "query1_batched_s",
    "query2_batched_s",
    "bp1_s",
    "bp2_batched_s",
)

#: Speedup ratios gated by the --baseline check.  Ratios are measured
#: batched-vs-scalar within one run, so they are robust to the host
#: being slower or faster than the machine that recorded the baseline
#: (wall-clock gating above only applies to timings large enough to
#: rise above scheduler noise).
GATED_RATIOS = (
    "query1_speedup",
    "bp2_speedup",
)

#: Multi-core fan-out keys: gated only when BOTH the baseline's host
#: and the current host have more than one core.  On a 1-core host
#: these timings measure executor pool overhead, not fan-out, so the
#: gate skips them with an explicit flag instead of silently holding
#: future runs to an overhead measurement.
PARALLEL_GATED_KEYS = (
    "query1_parallel_s",
    "query2_parallel_s",
    "bp2_parallel_s",
)

PARALLEL_GATED_RATIOS = (
    "query1_parallel_speedup",
    "query2_parallel_speedup",
    "bp2_parallel_speedup",
)


def run_point(
    database, r, kmax, scalar: bool, repeats: int = 1, executor=None
):
    from repro.approximate.breakpoints import (
        build_breakpoints1,
        build_breakpoints2,
        epsilon_for_budget,
    )
    from repro.approximate.dyadic import DyadicIndex
    from repro.approximate.query1 import NestedPairIndex
    from repro.storage.device import BlockDevice

    point = {"r": r}
    bp1_seconds, bp1 = timed(lambda: build_breakpoints1(database, r=r), repeats)
    point["bp1_s"] = bp1_seconds
    point["bp1_r"] = bp1.r

    q1_batched, _ = timed(
        lambda: NestedPairIndex(BlockDevice(), bp1, kmax).build(
            database, batched=True
        ),
        repeats,
    )
    point["query1_batched_s"] = q1_batched
    q2_batched, _ = timed(
        lambda: DyadicIndex(BlockDevice(), bp1, kmax).build(
            database, batched=True
        ),
        repeats,
    )
    point["query2_batched_s"] = q2_batched
    if scalar:
        q1_scalar, _ = timed(
            lambda: NestedPairIndex(BlockDevice(), bp1, kmax).build(
                database, batched=False
            )
        )
        q2_scalar, _ = timed(
            lambda: DyadicIndex(BlockDevice(), bp1, kmax).build(
                database, batched=False
            )
        )
        point["query1_scalar_s"] = q1_scalar
        point["query2_scalar_s"] = q2_scalar
        point["query1_speedup"] = q1_scalar / max(q1_batched, 1e-12)
        point["query2_speedup"] = q2_scalar / max(q2_batched, 1e-12)
    if executor is not None and not executor.is_serial:
        q1_parallel, _ = timed(
            lambda: NestedPairIndex(BlockDevice(), bp1, kmax).build(
                database, batched=True, executor=executor
            ),
            repeats,
        )
        point["query1_parallel_s"] = q1_parallel
        point["query1_parallel_speedup"] = q1_batched / max(
            q1_parallel, 1e-12
        )
        q2_parallel, _ = timed(
            lambda: DyadicIndex(BlockDevice(), bp1, kmax).build(
                database, batched=True, executor=executor
            ),
            repeats,
        )
        point["query2_parallel_s"] = q2_parallel
        point["query2_parallel_speedup"] = q2_batched / max(
            q2_parallel, 1e-12
        )

    epsilon = epsilon_for_budget(database, r, tolerance=max(2, r // 20))
    point["bp2_epsilon"] = epsilon
    bp2_batched, bp2 = timed(
        lambda: build_breakpoints2(database, epsilon, batched=True), repeats
    )
    point["bp2_batched_s"] = bp2_batched
    point["bp2_r"] = bp2.r
    if scalar:
        bp2_scalar, _ = timed(
            lambda: build_breakpoints2(database, epsilon, batched=False)
        )
        point["bp2_scalar_s"] = bp2_scalar
        point["bp2_speedup"] = bp2_scalar / max(bp2_batched, 1e-12)
    if executor is not None and not executor.is_serial:
        bp2_parallel, _ = timed(
            lambda: build_breakpoints2(
                database, epsilon, batched=True, executor=executor
            ),
            repeats,
        )
        point["bp2_parallel_s"] = bp2_parallel
        point["bp2_parallel_speedup"] = bp2_batched / max(
            bp2_parallel, 1e-12
        )
    return point


def check_baseline(report, path, max_regression) -> int:
    """Compare against the matching committed entry; 0 when OK."""
    from repro.bench.gating import (
        compare_results,
        find_baseline_entry,
        single_core_host,
    )

    with open(path) as handle:
        history = json.load(handle)
    baseline = find_baseline_entry(history, report["config"])
    if baseline is None:
        print(
            f"baseline: no entry in {path} matches this config; skipping",
            file=sys.stderr,
        )
        return 0
    gate_parallel = not (
        single_core_host(report.get("host"))
        or single_core_host(baseline.get("host", {}))
    )
    gated_keys = GATED_KEYS + (PARALLEL_GATED_KEYS if gate_parallel else ())
    gated_ratios = GATED_RATIOS + (
        PARALLEL_GATED_RATIOS if gate_parallel else ()
    )
    has_parallel = any(
        key in point
        for points in (baseline["results"], report["results"])
        for point in points
        for key in PARALLEL_GATED_KEYS
    )
    if has_parallel and not gate_parallel:
        print(
            "parallel points: gating SKIPPED (1-core host on one side — "
            "the timings measure executor pool overhead, not fan-out)",
            file=sys.stderr,
        )
    failures = []
    base_points = {p["r"]: p for p in baseline["results"]}
    for point in report["results"]:
        base = base_points.get(point["r"])
        if base is None:
            continue
        failures.extend(
            compare_results(
                base, point, gated_keys, gated_ratios, max_regression,
                label=f"r={point['r']} ",
            )
        )
    for line in failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=1000, help="objects")
    parser.add_argument("--navg", type=int, default=60, help="avg readings")
    parser.add_argument(
        "--r-list", type=str, default="50,100,200", help="breakpoint budgets"
    )
    parser.add_argument("--kmax", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=1, help="best-of-N for each timing"
    )
    parser.add_argument(
        "--no-scalar",
        action="store_true",
        help="skip the scalar reference builds (batched timings only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan-out worker count (default: REPRO_WORKERS or all cores)",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        choices=["serial", "thread", "process"],
        help="fan-out backend; defaults to process when --workers > 1 "
        "is given, else REPRO_EXECUTOR or serial",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help="committed BENCH_build.json to compare batched timings against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.smoke:
        args.m = min(args.m, 300)
        args.navg = min(args.navg, 30)
        args.kmax = min(args.kmax, 60)
        args.r_list = "40"
        args.repeats = max(args.repeats, 3)

    from repro.bench.gating import host_metadata
    from repro.datasets import generate_temp
    from repro.parallel import get_executor, resolve_backend

    backend = args.backend
    if backend is None and args.workers is not None and args.workers > 1:
        backend = "process"
    executor = get_executor(resolve_backend(backend), args.workers)

    r_values = [int(r) for r in args.r_list.split(",") if r]
    database = generate_temp(
        num_objects=args.m, avg_readings=args.navg, seed=args.seed
    )
    report = {
        "bench": "build",
        "config": {
            "m": args.m,
            "navg": args.navg,
            "r_list": r_values,
            "kmax": args.kmax,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        # Resolved fan-out settings and host facts: kept out of
        # ``config`` (baseline matching is on the machine-independent
        # workload shape) but always recorded so entries from
        # different machines/backends are distinguishable before
        # normalization.
        "executor": {
            "backend": executor.backend,
            "workers": executor.workers,
        },
        "host": host_metadata(),
        "results": [
            run_point(
                database, r, args.kmax,
                scalar=not args.no_scalar, repeats=args.repeats,
                executor=executor,
            )
            for r in r_values
        ],
    }
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if args.baseline is not None:
        return check_baseline(report, args.baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
