#!/usr/bin/env python
"""Chaos serving bench: tail latency and recall under injected faults.

Builds replicated clusters (object- and time-partitioned, 2 endpoints
per shard) over a generated Temp-like database and serves the same
workload at a sweep of fault rates.  Rate ``r`` means every
cluster->node call draws a transient fault with probability ``r`` and
a permanent replica crash with probability ``r / 40`` (crashes are
forever, so over a long run even a small per-call rate retires whole
replica groups; the 1:40 mix keeps the top rate degraded-but-bounded
rather than fully dark) from the
deterministic per-replica fault streams of
:class:`repro.faults.FaultPlan` — so a run is exactly reproducible
from its seed.  Each rate gets a *fresh* cluster (crashes are
permanent; carrying dead replicas across rates would conflate them).

Per rate the script reports:

* ``p50_ms`` / ``p99_ms`` — per-query latency through ``query_many``
  (retry/backoff and failover overhead included; backoff sleeps are
  no-ops so the numbers measure work, not timers),
* ``recall`` — mean overlap with the healthy cluster's answers,
* ``degraded`` — how many answers were flagged partial, with the mean
  flagged coverage, and
* ``silent_divergence`` — answers that differed from healthy *without*
  being flagged degraded.  The resilience contract is that this is
  **always zero**: masked faults (retried transients, replica
  failover) answer bit-identically, and anything else is flagged.

The script exits nonzero when the contract fails: silent divergence
anywhere, recall < 1 at rate 0, or recall below ``--min-recall`` at
the highest rate (degradation must stay bounded, not collapse).

Usage::

    PYTHONPATH=src python scripts/bench_chaos.py [--m 1000] [--navg 60]
        [--nodes 4] [--batch 256] [--qk 20] [--rates 0,0.05,0.2]
        [--seed 0] [--min-recall 0.5] [--smoke]

``--smoke`` shrinks every dimension so CI can run in a few seconds.
Output is one JSON object on stdout (committed as BENCH_chaos.json).
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def _recall(result, reference) -> float:
    """Fraction of the healthy top-k recovered (order-insensitive)."""
    want = set(reference.object_ids)
    if not want:
        return 1.0
    got = set(result.object_ids)
    return len(want & got) / len(want)


def measure_rate(make_cluster, batch, reference, rate: float, seed: int) -> dict:
    """Serve the workload query-by-query through one chaotic cluster."""
    from repro.datasets.workload import WorkloadBatch
    from repro.faults import INSTANT_RETRY_POLICY, FaultPlan

    plan = None
    if rate > 0.0:
        plan = FaultPlan(
            seed=seed, crash_rate=rate / 40.0, transient_rate=rate
        )
    cluster = make_cluster(plan, INSTANT_RETRY_POLICY)
    latencies = []
    results = []
    # One query per call: the latency distribution is per-request, the
    # way a serving tier would see it (batching would hide the tail).
    for t1, t2, k in zip(batch.t1s, batch.t2s, batch.ks):
        single = WorkloadBatch(t1s=t1[None], t2s=t2[None], ks=k[None])
        start = time.perf_counter()
        results.append(cluster.query_many(single)[0])
        latencies.append(time.perf_counter() - start)
    latencies.sort()
    degraded = [r for r in results if r.degraded]
    silent = sum(
        1
        for got, want in zip(results, reference)
        if got != want and not got.degraded
    )
    recalls = [_recall(got, want) for got, want in zip(results, reference)]
    dead = sum(
        1
        for group in cluster.groups
        for endpoint in group.endpoints
        if getattr(endpoint, "dead", False)
    )
    return {
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "recall": sum(recalls) / len(recalls),
        "degraded": len(degraded),
        "mean_degraded_coverage": (
            sum(r.coverage for r in degraded) / len(degraded)
            if degraded
            else 1.0
        ),
        "silent_divergence": silent,
        "dead_replicas": dead,
        "comm_degraded_queries": cluster.comm.degraded_queries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=1000, help="objects")
    parser.add_argument("--navg", type=int, default=60, help="avg readings")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--batch", type=int, default=256, help="workload size")
    parser.add_argument(
        "--qk", type=int, default=20, help="max per-query k in the workload"
    )
    parser.add_argument(
        "--rates",
        type=str,
        default="0,0.05,0.2",
        help="comma-separated per-call fault rates",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-recall",
        type=float,
        default=0.5,
        help="recall floor gated at the highest fault rate",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.m = min(args.m, 200)
        args.navg = min(args.navg, 25)
        args.qk = min(args.qk, 10)
        args.batch = min(args.batch, 64)
    rates = [float(part) for part in args.rates.split(",") if part != ""]

    from repro.datasets import generate_temp, sample_workload
    from repro.distributed import (
        ObjectPartitionedCluster,
        TimePartitionedCluster,
    )
    from repro.bench.gating import host_metadata

    database = generate_temp(
        num_objects=args.m, avg_readings=args.navg, seed=args.seed
    )
    batch = sample_workload(
        database, count=args.batch, kmax=args.qk, seed=args.seed
    )

    def make_object(plan, retry):
        return ObjectPartitionedCluster(
            database,
            args.nodes,
            replicas=args.replicas,
            fault_plan=plan,
            retry_policy=retry,
        )

    def make_time(plan, retry):
        return TimePartitionedCluster(
            database,
            args.nodes,
            replicas=args.replicas,
            fault_plan=plan,
            retry_policy=retry,
        )

    results = {}
    failures = []
    for name, make_cluster in (("object", make_object), ("time", make_time)):
        reference = make_cluster(None, None).query_many(batch)
        for rate in rates:
            point = measure_rate(
                make_cluster, batch, reference, rate, args.seed
            )
            results[f"{name}/rate={rate:g}"] = point
            if point["silent_divergence"]:
                failures.append(
                    f"{name}/rate={rate:g}: {point['silent_divergence']} "
                    "answers diverged from healthy without a degraded flag"
                )
            if rate == 0.0 and point["recall"] < 1.0:
                failures.append(
                    f"{name}/rate=0: recall {point['recall']:.3f} < 1.0"
                )
        top_rate = max(rates)
        top = results[f"{name}/rate={top_rate:g}"]
        if top_rate > 0.0 and top["recall"] < args.min_recall:
            failures.append(
                f"{name}/rate={top_rate:g}: recall {top['recall']:.3f} "
                f"below the {args.min_recall} floor"
            )

    report = {
        "bench": "chaos",
        "config": {
            "m": args.m,
            "navg": args.navg,
            "nodes": args.nodes,
            "replicas": args.replicas,
            "batch": args.batch,
            "qk": args.qk,
            "rates": rates,
            "seed": args.seed,
            "min_recall": args.min_recall,
            "smoke": bool(args.smoke),
        },
        "host": host_metadata(),
        "results": results,
    }
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    for line in failures:
        print(f"CHAOS GATE: {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
