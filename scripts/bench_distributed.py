#!/usr/bin/env python
"""Scalar-vs-batched distributed cluster serving as JSON, for the
BENCH trajectory.

Builds partitioned clusters over a generated Temp-like database for a
sweep of node counts and measures each cluster two ways:

* the scalar protocol — one coordinator round-trip per workload row
  (``query`` / ``query_scatter_gather``, the preserved reference
  paths), and
* ``query_many`` — the whole workload sliced per node, answered with
  each node's vectorized pipeline, and merged columnar,

asserting on the way that both return identical answers *and*
identical :class:`~repro.distributed.comm.CommStats` totals (the
equivalence contract), then reporting queries/sec, the speedup, and
the modeled communication bill per workload.

Clusters measured per node count: object-partitioned with EXACT3
nodes, object-partitioned with APPX2+ nodes (breakpoint budget ``r``
resolved once on the full database), and time-partitioned with both
the scatter-gather protocol and the threshold algorithm (scalar TA
loop vs the lock-step batched TA, timed cold so the per-round kernel
batching is what is measured; per-round comm records — including the
sorted-access vs random-access split — are asserted identical).

Usage::

    PYTHONPATH=src python scripts/bench_distributed.py [--m 1000]
        [--navg 60] [--r 200] [--kmax 200] [--qk 20] [--batch 256]
        [--nodes 2,4,8] [--seed 0] [--repeats 3] [--smoke]
        [--baseline BENCH_distributed.json] [--max-regression 2.0]

``--smoke`` shrinks every dimension so CI can run in a few seconds.
With ``--baseline`` the run is compared against the committed
trajectory entry whose config matches; the script exits nonzero when
a batched wall time or a batched/scalar speedup ratio regresses by
more than ``--max-regression`` x (ratios are in-run relative, so they
normalize away host speed).  Output is one JSON object on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from functools import partial

#: Per-cluster wall-clock keys gated by --baseline (batched path only;
#: the scalar loop feeds the ratio gate).
GATED_KEYS = ("batched_s",)

#: Per-cluster in-run ratios gated by --baseline.
GATED_RATIOS = ("speedup",)


def _interleaved_best(run_scalar, run_batched, repeats: int):
    """Best-of timings with scalar/batched rounds *interleaved*.

    Back-to-back pairs see the same machine state, so host-load drift
    between the two measurement blocks cannot skew the speedup ratio.
    """
    scalar_s = batched_s = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run_scalar()
        scalar_s = min(scalar_s, time.perf_counter() - start)
        start = time.perf_counter()
        run_batched()
        batched_s = min(batched_s, time.perf_counter() - start)
    return scalar_s, batched_s


def measure_cluster(
    cluster,
    scalar_query,
    batch,
    repeats: int,
    query_kwargs: dict | None = None,
    prepare=None,
) -> dict:
    """Scalar-protocol vs batched timings + answer/comm equivalence.

    ``query_kwargs`` selects the batched protocol (forwarded to
    ``query_many``).  ``prepare`` (when given) runs at the start of
    every measured pass — the threshold points use it to drop the TA
    index caches so both paths are timed cold, which is what makes the
    comparison "one kernel pass per node per round" vs "one kernel
    pass per (query, node)".  Beyond totals, the per-round comm
    records (with their sorted/random splits) are asserted equal.
    """
    rows = list(zip(batch.t1s, batch.t2s, batch.ks))
    kwargs = query_kwargs or {}

    def run_scalar():
        if prepare is not None:
            prepare()
        return [
            scalar_query(float(t1), float(t2), int(k)) for t1, t2, k in rows
        ]

    def run_batched():
        if prepare is not None:
            prepare()
        return cluster.query_many(batch, **kwargs)

    cluster.comm.reset()
    expected = run_scalar()
    scalar_comm = cluster.comm.snapshot()
    scalar_rounds = cluster.comm.rounds
    cluster.comm.reset()
    got = run_batched()
    batched_comm = cluster.comm.snapshot()
    batched_rounds = cluster.comm.rounds
    if any(a != b for a, b in zip(expected, got)):
        raise AssertionError("batched cluster answers diverged")
    if scalar_comm != batched_comm:
        raise AssertionError(
            f"comm diverged: scalar {scalar_comm} vs batched {batched_comm}"
        )
    if scalar_rounds != batched_rounds:
        raise AssertionError(
            f"round records diverged: {len(scalar_rounds)} scalar rounds "
            f"vs {len(batched_rounds)} batched"
        )
    scalar_s, batched_s = _interleaved_best(run_scalar, run_batched, repeats)
    count = len(batch)
    point = {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "scalar_qps": count / max(scalar_s, 1e-12),
        "batched_qps": count / max(batched_s, 1e-12),
        "speedup": scalar_s / max(batched_s, 1e-12),
        "comm_messages": batched_comm.messages,
        "comm_pairs": batched_comm.pairs,
        "comm_bytes": batched_comm.bytes,
    }
    if batched_rounds:
        point["rounds"] = len(batched_rounds)
        point["comm_sorted_messages"] = sum(
            r.sorted_messages for r in batched_rounds
        )
        point["comm_sorted_pairs"] = sum(
            r.sorted_pairs for r in batched_rounds
        )
        point["comm_random_messages"] = sum(
            r.random_messages for r in batched_rounds
        )
        point["comm_random_pairs"] = sum(
            r.random_pairs for r in batched_rounds
        )
    return point


def check_baseline(report, path, max_regression) -> int:
    """Compare against the matching committed entry; 0 when OK."""
    from repro.bench.gating import compare_results, find_baseline_entry

    with open(path) as handle:
        history = json.load(handle)
    baseline = find_baseline_entry(history, report["config"])
    if baseline is None:
        print(
            f"baseline: no entry in {path} matches this config; skipping",
            file=sys.stderr,
        )
        return 0
    failures = []
    for name, point in report["results"].items():
        base = baseline["results"].get(name)
        if base is None:
            continue
        failures.extend(
            compare_results(
                base, point, GATED_KEYS, GATED_RATIOS, max_regression,
                label=f"{name} ",
            )
        )
    for line in failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=1000, help="objects")
    parser.add_argument("--navg", type=int, default=60, help="avg readings")
    parser.add_argument(
        "--r", type=int, default=200, help="APPX2+ breakpoint budget"
    )
    parser.add_argument("--kmax", type=int, default=200, help="index kmax")
    parser.add_argument(
        "--qk", type=int, default=20, help="max per-query k in the workload"
    )
    parser.add_argument("--batch", type=int, default=256, help="workload size")
    parser.add_argument(
        "--ta-batch",
        type=int,
        default=8,
        help="threshold-algorithm sorted-access batch size",
    )
    parser.add_argument(
        "--nodes",
        type=str,
        default="2,4,8",
        help="comma-separated cluster sizes",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N for each timing"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help="committed BENCH_distributed.json to compare this run against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.smoke:
        args.m = min(args.m, 200)
        args.navg = min(args.navg, 25)
        args.r = min(args.r, 30)
        args.kmax = min(args.kmax, 60)
        args.qk = min(args.qk, 10)
        args.batch = min(args.batch, 64)
        args.nodes = "2,4"
    node_counts = [int(part) for part in args.nodes.split(",") if part]

    from repro.approximate.breakpoints import epsilon_for_budget
    from repro.approximate.methods import Appx2Plus
    from repro.bench.gating import host_metadata
    from repro.datasets import generate_temp, sample_workload
    from repro.distributed import (
        ObjectPartitionedCluster,
        TimePartitionedCluster,
    )

    database = generate_temp(
        num_objects=args.m, avg_readings=args.navg, seed=args.seed
    )
    batch = sample_workload(
        database, count=args.batch, kmax=args.qk, seed=args.seed
    )
    # One full-database budget resolution; every APPX2+ shard builds
    # with the same epsilon (per-shard budgets would drift with the
    # partition layout).
    epsilon = epsilon_for_budget(
        database, args.r, tolerance=max(2, args.r // 20)
    )
    appx_factory = partial(Appx2Plus, epsilon=epsilon, kmax=args.kmax)

    results = {}
    for num_nodes in node_counts:
        exact_cluster = ObjectPartitionedCluster(database, num_nodes)
        results[f"object-exact3/nodes={num_nodes}"] = measure_cluster(
            exact_cluster, exact_cluster.query, batch, args.repeats
        )
        appx_cluster = ObjectPartitionedCluster(
            database, num_nodes, method_factory=appx_factory
        )
        results[f"object-appx2plus/nodes={num_nodes}"] = measure_cluster(
            appx_cluster, appx_cluster.query, batch, args.repeats
        )
        time_cluster = TimePartitionedCluster(database, num_nodes)
        results[f"time-scatter/nodes={num_nodes}"] = measure_cluster(
            time_cluster, time_cluster.query_scatter_gather, batch,
            args.repeats,
        )
        ta_cluster = TimePartitionedCluster(database, num_nodes)

        def reset_ta(cluster=ta_cluster):
            for node in cluster.nodes:
                node.reset_ta_index()

        results[f"time-threshold/nodes={num_nodes}"] = measure_cluster(
            ta_cluster,
            partial(ta_cluster.query_threshold, batch_size=args.ta_batch),
            batch,
            args.repeats,
            query_kwargs={
                "protocol": "threshold",
                "batch_size": args.ta_batch,
            },
            prepare=reset_ta,
        )

    report = {
        "bench": "distributed",
        "config": {
            "m": args.m,
            "navg": args.navg,
            "r": args.r,
            "kmax": args.kmax,
            "qk": args.qk,
            "batch": args.batch,
            "ta_batch": args.ta_batch,
            "nodes": node_counts,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "host": host_metadata(),
        "epsilon": epsilon,
        "results": results,
    }
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if args.baseline is not None:
        return check_baseline(report, args.baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
