#!/usr/bin/env python
"""Batched-vs-scalar query serving throughput as JSON, for the BENCH
trajectory.

Builds the serving indexes once on a generated Temp-like database,
samples a seeded mixed-interval / mixed-``k`` workload, and measures
every method two ways:

* the scalar loop — one ``method.query(...)`` call per workload row
  (the historical serving path), and
* ``query_many`` — the whole workload through the batched pipeline,

asserting on the way that both return identical answers (the
equivalence contract), then reporting queries/sec and the speedup.
The instant engine is measured the same way on an instant workload.

Usage::

    PYTHONPATH=src python scripts/bench_query.py [--m 1000] [--navg 60]
        [--r 200] [--kmax 200] [--qk 50] [--batch 256] [--seed 0]
        [--smoke] [--workers 4] [--backend process]
        [--baseline BENCH_query.json] [--max-regression 2.0]

``--smoke`` shrinks every dimension so CI can run in a few seconds.
With ``--baseline`` the run is compared against the committed
trajectory entry whose config matches; the script exits nonzero when
a batched wall time or a batched/scalar speedup ratio regresses by
more than ``--max-regression`` x (ratios are in-run relative, so they
normalize away host speed).  Output is one JSON object on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


#: Per-method wall-clock keys gated by --baseline (batched path only;
#: the scalar loop feeds the ratio gate).
GATED_KEYS = ("batched_s",)

#: Per-method in-run ratios gated by --baseline.
GATED_RATIOS = ("speedup",)


def _interleaved_best(run_scalar, run_batched, repeats: int):
    """Best-of timings with scalar/batched rounds *interleaved*.

    Back-to-back pairs see the same machine state, so host-load drift
    between the two measurement blocks cannot skew the speedup ratio
    (measured drift on shared runners exceeds the effect under test).
    """
    scalar_s = batched_s = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run_scalar()
        scalar_s = min(scalar_s, time.perf_counter() - start)
        start = time.perf_counter()
        run_batched()
        batched_s = min(batched_s, time.perf_counter() - start)
    return scalar_s, batched_s


def _report_point(count: int, scalar_s: float, batched_s: float) -> dict:
    return {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "scalar_qps": count / max(scalar_s, 1e-12),
        "batched_qps": count / max(batched_s, 1e-12),
        "speedup": scalar_s / max(batched_s, 1e-12),
    }


def measure_method(method, batch, repeats: int, executor=None) -> dict:
    """Scalar-loop vs batched timings (+ answer equivalence check)."""
    queries = batch.as_queries()

    def run_scalar():
        return [method.query(q) for q in queries]

    def run_batched():
        return method.query_many(batch, executor=executor)

    expected = run_scalar()
    got = run_batched()
    if any(a != b for a, b in zip(expected, got)):
        raise AssertionError(f"{method.name}: batched answers diverged")
    scalar_s, batched_s = _interleaved_best(run_scalar, run_batched, repeats)
    return _report_point(len(batch), scalar_s, batched_s)


def measure_instant(engine, ts, ks, repeats: int) -> dict:
    def run_scalar():
        return [engine.query(float(t), int(k)) for t, k in zip(ts, ks)]

    def run_batched():
        return engine.query_many(ts, ks)

    expected = run_scalar()
    got = run_batched()
    if any(a != b for a, b in zip(expected, got)):
        raise AssertionError(f"{engine.name}: batched answers diverged")
    scalar_s, batched_s = _interleaved_best(run_scalar, run_batched, repeats)
    return _report_point(int(ts.size), scalar_s, batched_s)


def check_baseline(report, path, max_regression) -> int:
    """Compare against the matching committed entry; 0 when OK."""
    from repro.bench.gating import (
        compare_results,
        find_baseline_entry,
        single_core_host,
    )

    with open(path) as handle:
        history = json.load(handle)
    baseline = find_baseline_entry(history, report["config"])
    if baseline is None:
        print(
            f"baseline: no entry in {path} matches this config; skipping",
            file=sys.stderr,
        )
        return 0
    base_workers = baseline.get("executor", {}).get("workers", 1)
    if base_workers > 1 and single_core_host(report.get("host")):
        # The baseline's EXACT3 fan-out point came from a multi-core
        # host; on this 1-core host the same config measures pool
        # overhead, so gating against it would be apples-to-oranges.
        print(
            "baseline: recorded with a multi-worker executor but this "
            "host is 1-core; gating SKIPPED (pool overhead, not fan-out)",
            file=sys.stderr,
        )
        return 0
    failures = []
    for name, point in report["results"].items():
        base = baseline["results"].get(name)
        if base is None:
            continue
        failures.extend(
            compare_results(
                base, point, GATED_KEYS, GATED_RATIOS, max_regression,
                label=f"{name} ",
            )
        )
    for line in failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=1000, help="objects")
    parser.add_argument("--navg", type=int, default=60, help="avg readings")
    parser.add_argument("--r", type=int, default=200, help="breakpoint budget")
    parser.add_argument("--kmax", type=int, default=200, help="index kmax")
    parser.add_argument(
        "--qk",
        type=int,
        default=20,
        help="max per-query k in the mixed workload (default 20: the "
        "interactive top-k serving shape; pass 50 for the paper's "
        "query-evaluation default)",
    )
    parser.add_argument("--batch", type=int, default=256, help="workload size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N for each timing"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="EXACT3 fan-out worker count (default: serial)",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        choices=["serial", "thread", "process"],
        help="EXACT3 fan-out backend; defaults to process when --workers > 1",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help="committed BENCH_query.json to compare this run against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.smoke:
        args.m = min(args.m, 200)
        args.navg = min(args.navg, 25)
        args.r = min(args.r, 30)
        args.kmax = min(args.kmax, 60)
        args.qk = min(args.qk, 20)
        args.batch = min(args.batch, 64)

    from repro.approximate.breakpoints import (
        build_breakpoints2,
        epsilon_for_budget,
    )
    from repro.bench.gating import host_metadata
    from repro.approximate.methods import Appx1, Appx2, Appx2Plus
    from repro.datasets import (
        generate_temp,
        sample_instant_workload,
        sample_workload,
    )
    from repro.exact import Exact2, Exact3
    from repro.instant.engine import InstantIntervalTree
    from repro.parallel import get_executor, resolve_backend

    backend = args.backend
    if backend is None and args.workers is not None and args.workers > 1:
        backend = "process"
    executor = get_executor(resolve_backend(backend), args.workers)

    database = generate_temp(
        num_objects=args.m, avg_readings=args.navg, seed=args.seed
    )
    batch = sample_workload(
        database, count=args.batch, kmax=args.qk, seed=args.seed
    )
    # One shared BREAKPOINTS2 construction (the bench compares serving
    # throughput, not construction).
    epsilon = epsilon_for_budget(
        database, args.r, tolerance=max(2, args.r // 20)
    )
    breakpoints = build_breakpoints2(database, epsilon)

    results = {}
    for cls in (Appx1, Appx2, Appx2Plus):
        method = cls(breakpoints=breakpoints, kmax=args.kmax).build(database)
        results[method.name] = measure_method(method, batch, args.repeats)
    for cls in (Exact2, Exact3):
        method = cls().build(database)
        fan_out = (
            executor
            if cls is Exact3 and not executor.is_serial
            else None
        )
        results[method.name] = measure_method(
            method, batch, args.repeats, executor=fan_out
        )
    ts, ks = sample_instant_workload(
        database, count=args.batch, kmax=args.qk, seed=args.seed
    )
    instant = InstantIntervalTree().build(database)
    results[instant.name] = measure_instant(instant, ts, ks, args.repeats)

    report = {
        "bench": "query",
        "config": {
            "m": args.m,
            "navg": args.navg,
            "r": args.r,
            "kmax": args.kmax,
            "qk": args.qk,
            "batch": args.batch,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "host": host_metadata(),
        "executor": {
            "backend": executor.backend,
            "workers": executor.workers,
        },
        "breakpoints_r": int(breakpoints.r),
        "results": results,
    }
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if args.baseline is not None:
        return check_baseline(report, args.baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
