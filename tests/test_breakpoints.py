"""Tests for BREAKPOINTS1/BREAKPOINTS2 (paper Section 3.1)."""

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.approximate import (
    build_breakpoints1,
    build_breakpoints2,
    build_breakpoints2_baseline,
    epsilon_for_budget,
)

from _support import make_random_database


@pytest.fixture(scope="module")
def db():
    return make_random_database(num_objects=50, avg_segments=30, seed=77)


class TestBreakpoints1:
    def test_r_matches_epsilon(self, db):
        bp = build_breakpoints1(db, epsilon=0.05)
        # r = 1/eps + 1 interior+boundary points (up to dedup).
        assert abs(bp.r - 21) <= 1

    def test_r_budget_form(self, db):
        bp = build_breakpoints1(db, r=41)
        assert abs(bp.r - 41) <= 1
        assert bp.epsilon == pytest.approx(1 / 40)

    def test_covers_domain(self, db):
        bp = build_breakpoints1(db, epsilon=0.1)
        assert bp.times[0] == db.t_min
        assert bp.times[-1] == db.t_max

    def test_equal_sum_mass_between_breakpoints(self, db):
        bp = build_breakpoints1(db, epsilon=0.05)
        # Between consecutive breakpoints the SUM across objects is eps*M
        # (except possibly the last slice).
        cums = np.zeros(bp.r)
        for obj in db:
            cums += obj.function.cumulative_many(bp.times)
        gaps = np.diff(cums)
        assert np.allclose(gaps[:-1], bp.threshold, rtol=1e-4)
        assert gaps[-1] <= bp.threshold * (1 + 1e-6)

    def test_lemma2_property(self, db):
        bp = build_breakpoints1(db, epsilon=0.05)
        assert bp.verify(db) <= bp.threshold * (1 + 1e-9)

    def test_monotone_strictly_increasing(self, db):
        bp = build_breakpoints1(db, epsilon=0.02)
        assert np.all(np.diff(bp.times) > 0)

    def test_requires_exactly_one_parameter(self, db):
        with pytest.raises(ReproError):
            build_breakpoints1(db)
        with pytest.raises(ReproError):
            build_breakpoints1(db, epsilon=0.1, r=5)

    def test_rejects_bad_values(self, db):
        with pytest.raises(ReproError):
            build_breakpoints1(db, epsilon=-1.0)
        with pytest.raises(ReproError):
            build_breakpoints1(db, r=1)


class TestBreakpoints2:
    def test_efficient_matches_baseline(self, db):
        from _support import breakpoints_equivalent

        for eps in (0.02, 0.005, 0.002):
            fast = build_breakpoints2(db, eps)
            slow = build_breakpoints2_baseline(db, eps)
            assert breakpoints_equivalent(fast, slow)

    def test_lemma2_property(self, db):
        bp = build_breakpoints2(db, 0.004)
        assert bp.verify(db) <= bp.threshold * (1 + 1e-6)

    def test_max_mass_reaches_threshold(self, db):
        """Each interior gap is tight: SOME object accumulates eps*M."""
        bp = build_breakpoints2(db, 0.004)
        per_object = np.stack(
            [obj.function.cumulative_many(bp.times) for obj in db]
        )
        gap_max = np.diff(per_object, axis=1).max(axis=0)
        assert np.all(gap_max[:-1] >= bp.threshold * (1 - 1e-6))

    def test_fewer_breakpoints_than_b1(self, db):
        eps = 0.004
        b1 = build_breakpoints1(db, epsilon=eps)
        b2 = build_breakpoints2(db, eps)
        assert b2.r <= b1.r

    def test_r_bounded_by_inverse_epsilon(self, db):
        eps = 0.01
        bp = build_breakpoints2(db, eps)
        assert bp.r <= 1 / eps + 2

    def test_covers_domain(self, db):
        bp = build_breakpoints2(db, 0.01)
        assert bp.times[0] == db.t_min and bp.times[-1] == db.t_max

    def test_snap(self, db):
        bp = build_breakpoints2(db, 0.005)
        for t in np.linspace(db.t_min, db.t_max, 37):
            j = bp.snap(float(t))
            assert bp.times[j] >= t - 1e-9
            if j > 0:
                assert bp.times[j - 1] < t


class TestEpsilonForBudget:
    def test_hits_target_roughly(self, db):
        target = 25
        eps = epsilon_for_budget(db, target, tolerance=2)
        bp = build_breakpoints2(db, eps)
        assert abs(bp.r - target) <= 6

    def test_smaller_than_b1_epsilon(self, db):
        """Figure 11(a): for the same r, B2's epsilon is much smaller."""
        target = 25
        eps2 = epsilon_for_budget(db, target, tolerance=2)
        eps1 = 1.0 / (target - 1)
        assert eps2 < eps1

    def test_rejects_tiny_target(self, db):
        with pytest.raises(ReproError):
            epsilon_for_budget(db, 1)


class TestNegativeScores:
    def test_absolute_mode_guarantee(self, negative_db):
        bp1 = build_breakpoints1(negative_db, epsilon=0.05, use_absolute=True)
        assert bp1.verify(negative_db, use_absolute=True) <= bp1.threshold * (
            1 + 1e-9
        )
        bp2 = build_breakpoints2(negative_db, 0.01, use_absolute=True)
        assert bp2.verify(negative_db, use_absolute=True) <= bp2.threshold * (
            1 + 1e-6
        )

    def test_signed_error_bounded_by_absolute_threshold(self, negative_db):
        """Lemma 2 under negatives: |sigma_i(t1,t2) - sigma_i(B(t1),B(t2))|
        <= eps*M with M on absolute values."""
        bp = build_breakpoints2(negative_db, 0.01, use_absolute=True)
        rng = np.random.default_rng(1)
        for _ in range(30):
            t1, t2 = np.sort(rng.uniform(*negative_db.span, 2))
            s1, s2 = bp.snap_time(float(t1)), bp.snap_time(float(t2))
            for obj in negative_db:
                err = abs(obj.score(t1, t2) - obj.score(s1, s2))
                assert err <= 2 * bp.threshold * (1 + 1e-6)


class TestBuildCost:
    def test_efficient_build_not_slower_with_many_breakpoints(self, db):
        """The lazy-PQ build should not blow up as eps shrinks (Lemma 1);
        we check work growth stays near-linear in r."""
        import time

        t0 = time.perf_counter()
        coarse = build_breakpoints2(db, 0.02)
        t_coarse = time.perf_counter() - t0
        t0 = time.perf_counter()
        fine = build_breakpoints2(db, 0.001)
        t_fine = time.perf_counter() - t0
        assert fine.r > coarse.r
        # Generous bound: 20x more breakpoints may cost at most ~200x
        # time (covers timer noise); the baseline would be ~r*m.
        assert t_fine <= max(t_coarse, 0.001) * 400
