"""Serving-tier suite: micro-batching equivalence, flush mechanics,
epoch-guarded caching, and load-generator determinism.

The contract under test: routing per-request traffic through the
:class:`~repro.serving.coordinator.ServingCoordinator` (micro-batches,
in-flight pipelining, result cache, in-batch dedup) changes *when*
work executes but never *what* is answered — every answer is
bit-identical (ids, scores, tie-breaks) to one direct ``query_many``
call over the same workload, across single-node exact / approximate /
instant engines and both partitioned cluster layouts.
"""

import asyncio

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.datasets import (
    sample_poisson_arrivals,
    sample_workload,
)
from repro.engine import TemporalRankingEngine
from repro.serving import (
    ClusterBackend,
    DirectClient,
    EngineBackend,
    InstantBackend,
    ResultCache,
    ServingCoordinator,
    plan_poisson_load,
    run_open_loop,
)

from _support import make_random_database

KMAX = 20


@pytest.fixture(scope="module")
def db():
    return make_random_database(num_objects=40, avg_segments=25, seed=31)


@pytest.fixture(scope="module")
def engine(db):
    eng = TemporalRankingEngine(db, kmax=KMAX)
    # Warm the lazy indexes so per-test timings are about serving.
    t1, t2 = db.span
    eng.top_k(t1, t2, 3, approximate=True)
    eng.instant_top_k(0.5 * (t1 + t2), 3)
    return eng


def serve_all(coordinator_factory, batch):
    """Run every query of ``batch`` through a coordinator, in order."""

    async def main():
        coordinator = coordinator_factory()
        async with coordinator:
            answers = await asyncio.gather(*[
                coordinator.top_k(float(a), float(b), int(k))
                for a, b, k in zip(batch.t1s, batch.t2s, batch.ks)
            ])
        return coordinator, list(answers)

    return asyncio.run(main())


# ----------------------------------------------------------------------
# equivalence: coordinator answers == direct query_many
# ----------------------------------------------------------------------
@pytest.mark.parametrize("approximate", [False, True], ids=["exact", "appx"])
def test_serving_matches_direct_engine(db, engine, approximate):
    backend = EngineBackend(engine, approximate=approximate)
    batch = sample_workload(db, count=80, kmax=KMAX, seed=5)
    direct = backend.serve_many(batch.t1s, batch.t2s, batch.ks)
    coordinator, answers = serve_all(
        lambda: ServingCoordinator(backend, max_batch=16, max_delay=0.001),
        batch,
    )
    assert all(a == b for a, b in zip(answers, direct))
    assert coordinator.stats.requests == len(batch)
    assert coordinator.stats.batches >= 1


def test_serving_matches_direct_instant(db, engine):
    backend = InstantBackend(engine)
    rng = np.random.default_rng(11)
    t_min, t_max = db.span
    ts = rng.uniform(t_min, t_max, 60)
    ks = rng.integers(1, KMAX, 60)
    direct = backend.serve_many(ts, ts, ks)

    async def main():
        async with ServingCoordinator(backend, max_batch=16) as coordinator:
            return await asyncio.gather(*[
                coordinator.top_k(float(t), float(t), int(k))
                for t, k in zip(ts, ks)
            ])

    answers = asyncio.run(main())
    assert all(a == b for a, b in zip(answers, direct))


@pytest.mark.parametrize(
    "partition,kwargs",
    [
        ("object", {}),
        ("time", {"protocol": "scatter"}),
        ("time", {"protocol": "threshold"}),
    ],
    ids=["object-partition", "time-partition", "time-threshold"],
)
def test_serving_matches_direct_cluster(db, engine, partition, kwargs):
    cluster = engine.cluster(3, partition=partition)
    backend = ClusterBackend(cluster, **kwargs)
    batch = sample_workload(db, count=40, kmax=KMAX, seed=6)
    direct = backend.serve_many(batch.t1s, batch.t2s, batch.ks)
    _, answers = serve_all(
        lambda: ServingCoordinator(backend, max_batch=8, max_delay=0.001),
        batch,
    )
    assert all(a == b for a, b in zip(answers, direct))


def test_open_loop_answers_match_direct(db, engine):
    """The loadgen path (both clients) returns the direct answers."""
    backend = EngineBackend(engine, approximate=True)
    plan = plan_poisson_load(db, count=50, rate=5000.0, kmax=10, seed=3)
    direct = backend.serve_many(plan.batch.t1s, plan.batch.t2s, plan.batch.ks)

    async def main():
        async with ServingCoordinator(backend, max_batch=32) as coordinator:
            micro = await run_open_loop(coordinator, plan)
        async with DirectClient(backend) as client:
            solo = await run_open_loop(client, plan)
        return micro, solo

    micro, solo = asyncio.run(main())
    assert all(a == b for a, b in zip(micro.answers, direct))
    assert all(a == b for a, b in zip(solo.answers, direct))
    assert micro.latencies.size == len(plan)
    assert micro.throughput > 0 and solo.throughput > 0


# ----------------------------------------------------------------------
# flush mechanics
# ----------------------------------------------------------------------
def test_single_request_flushes_on_deadline(db, engine):
    """A lone request is answered after max_delay, not held forever."""
    backend = EngineBackend(engine)
    t1, t2 = db.span

    async def main():
        coordinator = ServingCoordinator(
            backend, max_batch=64, min_batch=8, max_delay=0.005,
            adaptive=False,
        )
        async with coordinator:
            answer = await asyncio.wait_for(
                coordinator.top_k(t1, t2, 5), timeout=5.0
            )
        return coordinator, answer

    coordinator, answer = asyncio.run(main())
    assert answer == engine.top_k(t1, t2, 5)
    assert coordinator.stats.batches == 1
    assert coordinator.stats.deadline_flushes == 1
    assert coordinator.stats.size_flushes == 0


def test_burst_larger_than_max_batch_splits(db, engine):
    """A burst beyond max_batch splits into capped micro-batches."""
    backend = EngineBackend(engine)
    batch = sample_workload(db, count=50, kmax=KMAX, seed=8)
    direct = backend.serve_many(batch.t1s, batch.t2s, batch.ks)
    coordinator, answers = serve_all(
        lambda: ServingCoordinator(
            backend, max_batch=16, max_delay=0.05, cache_size=0
        ),
        batch,
    )
    assert all(a == b for a, b in zip(answers, direct))
    assert coordinator.stats.max_batch <= 16
    assert coordinator.stats.batches >= 4  # ceil(50 / 16)


def test_oversized_single_batch_executes_once(db, engine):
    """min_batch > queue length: the deadline still flushes everything."""
    backend = EngineBackend(engine)
    batch = sample_workload(db, count=5, kmax=KMAX, seed=9)
    direct = backend.serve_many(batch.t1s, batch.t2s, batch.ks)
    coordinator, answers = serve_all(
        lambda: ServingCoordinator(
            backend, max_batch=64, min_batch=64, max_delay=0.005,
        ),
        batch,
    )
    assert all(a == b for a, b in zip(answers, direct))
    assert coordinator.stats.deadline_flushes >= 1


def test_in_batch_duplicates_execute_once(db, engine):
    """Identical queued triples run once; every waiter gets the answer."""
    backend = EngineBackend(engine)
    t1, t2 = db.span
    expected = engine.top_k(t1, t2, 7)

    async def main():
        coordinator = ServingCoordinator(
            backend, max_batch=64, min_batch=8, max_delay=0.01,
            adaptive=False,
        )
        async with coordinator:
            answers = await asyncio.gather(
                *[coordinator.top_k(t1, t2, 7) for _ in range(8)]
            )
        return coordinator, answers

    coordinator, answers = asyncio.run(main())
    assert all(answer == expected for answer in answers)
    assert coordinator.stats.executed + coordinator.stats.cache_hits < 8
    assert coordinator.stats.deduped + coordinator.stats.cache_hits == 7


def test_adaptive_target_tracks_arrival_rate(db, engine):
    """The EWMA target clamps between min_batch and max_batch."""
    backend = EngineBackend(engine)
    fake_now = [0.0]
    coordinator = ServingCoordinator(
        backend, max_batch=32, min_batch=2, max_delay=0.01,
        clock=lambda: fake_now[0],
    )
    assert coordinator.batch_target() == 2  # no arrivals yet: floor
    for _ in range(50):  # 1 ms apart -> ~10 expected per window
        coordinator._observe_arrival(fake_now[0])
        fake_now[0] += 0.001
    assert coordinator.batch_target() == 10
    for _ in range(200):  # 1 us apart -> rate far beyond the cap
        coordinator._observe_arrival(fake_now[0])
        fake_now[0] += 0.000001
    assert coordinator.batch_target() == 32
    for _ in range(200):  # 1 s apart -> below the floor
        coordinator._observe_arrival(fake_now[0])
        fake_now[0] += 1.0
    assert coordinator.batch_target() == 2


def test_coordinator_rejects_requests_when_stopped(db, engine):
    backend = EngineBackend(engine)
    coordinator = ServingCoordinator(backend)
    t1, t2 = db.span

    async def main():
        with pytest.raises(ReproError):
            await coordinator.top_k(t1, t2, 3)

    asyncio.run(main())


# ----------------------------------------------------------------------
# result cache and epoch invalidation
# ----------------------------------------------------------------------
def test_repeat_queries_hit_cache(db, engine):
    backend = EngineBackend(engine)
    t1, t2 = db.span
    expected = engine.top_k(t1, t2, 4)

    async def main():
        coordinator = ServingCoordinator(backend, max_delay=0.001)
        async with coordinator:
            first = await coordinator.top_k(t1, t2, 4)
            second = await coordinator.top_k(t1, t2, 4)
        return coordinator, first, second

    coordinator, first, second = asyncio.run(main())
    assert first == expected and second == expected
    assert coordinator.stats.cache_hits >= 1
    assert coordinator.cache.stats.hits >= 1


def test_append_epoch_invalidates_cached_answers():
    """An append between requests makes every cached answer a miss,
    and the re-executed answer reflects the new data."""
    database = make_random_database(num_objects=25, avg_segments=12, seed=2)
    engine = TemporalRankingEngine(database, kmax=KMAX)
    backend = EngineBackend(engine)
    t1, t2 = database.span
    # Query past the current end so the appended segment (a huge new
    # area on object 3) falls inside the interval and flips the top-k.
    t2q = t2 + 10.0

    async def main():
        coordinator = ServingCoordinator(backend, max_delay=0.001)
        async with coordinator:
            before = await coordinator.top_k(t1, t2q, 5)
            epoch_before = backend.epoch
            engine.append(3, t2 + 5.0, 500.0)
            assert backend.epoch == epoch_before + 1
            after = await coordinator.top_k(t1, t2q, 5)
            again = await coordinator.top_k(t1, t2q, 5)
        return coordinator, before, after, again

    coordinator, before, after, again = asyncio.run(main())
    assert before != after  # the append changed the answer...
    assert after == engine.top_k(t1, t2q, 5)  # ...to the fresh one
    assert again == after  # re-cached at the new epoch
    assert coordinator.cache.stats.stale >= 1


def test_result_cache_epoch_and_lru_mechanics():
    cache = ResultCache(capacity=2)
    assert cache.get(("a",), epoch=0) is None
    cache.put(("a",), 0, "A")
    assert cache.get(("a",), 0) == "A"
    assert cache.get(("a",), 1) is None  # epoch moved: stale drop
    assert cache.stats.stale == 1
    cache.put(("a",), 1, "A1")
    cache.put(("b",), 1, "B")
    cache.put(("c",), 1, "C")  # evicts the LRU entry ("a")
    assert cache.stats.evictions == 1
    assert cache.get(("a",), 1) is None
    assert cache.get(("b",), 1) == "B"
    assert len(cache) == 2
    disabled = ResultCache(capacity=0)
    disabled.put(("a",), 0, "A")
    assert disabled.get(("a",), 0) is None
    assert len(disabled) == 0


def test_result_cache_admission_by_cost():
    """Answers cheaper than min_cost are rejected, not cached."""
    cache = ResultCache(capacity=4, min_cost=0.5)
    cache.put(("cheap",), 0, "X", cost=0.1)
    assert cache.get(("cheap",), 0) is None
    assert cache.stats.rejected == 1
    assert len(cache) == 0
    cache.put(("dear",), 0, "Y", cost=1.0)
    assert cache.get(("dear",), 0) == "Y"
    assert cache.stats.rejected == 1
    # The default min_cost of 0.0 admits everything (cost default 1.0).
    default = ResultCache(capacity=4)
    default.put(("a",), 0, "A", cost=0.0)
    assert default.get(("a",), 0) == "A"
    assert default.stats.rejected == 0


def test_coordinator_admission_skips_instant_backend(db, engine):
    """With a positive cache_min_cost, InstantBackend answers
    (cost_hint 0.0 — a stab is trivially recomputable) are never
    cached, while EngineBackend answers (cost_hint 1.0) still are."""
    t1, t2 = db.span
    t_mid = 0.5 * (t1 + t2)

    async def run(backend, *query):
        coordinator = ServingCoordinator(
            backend, max_delay=0.001, cache_min_cost=0.5
        )
        async with coordinator:
            first = await coordinator.top_k(*query)
            second = await coordinator.top_k(*query)
        return coordinator, first, second

    instant = InstantBackend(engine)
    coordinator, first, second = asyncio.run(
        run(instant, t_mid, t_mid, 4)
    )
    assert first == second
    assert coordinator.cache.stats.rejected >= 1
    assert coordinator.cache.stats.hits == 0
    assert len(coordinator.cache) == 0

    ranked = EngineBackend(engine)
    coordinator, first, second = asyncio.run(run(ranked, t1, t2, 4))
    assert first == second == engine.top_k(t1, t2, 4)
    assert coordinator.cache.stats.rejected == 0
    assert coordinator.cache.stats.hits >= 1


# ----------------------------------------------------------------------
# load generator determinism
# ----------------------------------------------------------------------
def test_poisson_arrivals_deterministic():
    a = sample_poisson_arrivals(200, rate=1000.0, seed=4)
    b = sample_poisson_arrivals(200, rate=1000.0, seed=4)
    c = sample_poisson_arrivals(200, rate=1000.0, seed=5)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert np.all(np.diff(a) > 0)
    # Mean inter-arrival gap tracks 1/rate.
    assert abs(np.diff(a).mean() - 0.001) < 0.0005
    with pytest.raises(ValueError):
        sample_poisson_arrivals(10, rate=0.0)


def test_sample_workload_deterministic(db):
    a = sample_workload(db, count=64, kmax=KMAX, seed=12)
    b = sample_workload(db, count=64, kmax=KMAX, seed=12)
    assert np.array_equal(a.t1s, b.t1s)
    assert np.array_equal(a.t2s, b.t2s)
    assert np.array_equal(a.ks, b.ks)


def test_plan_poisson_load_deterministic(db):
    a = plan_poisson_load(db, count=30, rate=500.0, seed=9)
    b = plan_poisson_load(db, count=30, rate=500.0, seed=9)
    assert np.array_equal(a.arrivals, b.arrivals)
    assert np.array_equal(a.batch.t1s, b.batch.t1s)
    assert len(a) == 30 and a.rate == 500.0


# ----------------------------------------------------------------------
# request deadlines and bounded shutdown
# ----------------------------------------------------------------------
class SlowBackend:
    """A backend whose every batch blocks until released (or a delay)."""

    def __init__(self, inner, delay=0.2):
        self.inner = inner
        self.delay = delay

    @property
    def epoch(self):
        return self.inner.epoch

    def serve_many(self, t1s, t2s, ks):
        import time

        time.sleep(self.delay)
        return self.inner.serve_many(t1s, t2s, ks)


def test_request_deadline_raises_structured(db, engine):
    from repro.core.errors import DeadlineExceeded

    backend = SlowBackend(EngineBackend(engine), delay=0.2)
    t1, t2 = db.span

    async def main():
        coordinator = ServingCoordinator(
            backend, max_delay=0.0, request_deadline=0.01
        )
        async with coordinator:
            with pytest.raises(DeadlineExceeded) as excinfo:
                await coordinator.top_k(t1, t2, 3)
        return coordinator, excinfo.value

    coordinator, error = asyncio.run(main())
    assert error.deadline == 0.01
    assert coordinator.stats.failed == 1


def test_request_deadline_is_validated(db, engine):
    with pytest.raises(ReproError):
        ServingCoordinator(EngineBackend(engine), request_deadline=0.0)


def test_deadline_generous_enough_answers_normally(db, engine):
    backend = EngineBackend(engine)
    t1, t2 = db.span

    async def main():
        coordinator = ServingCoordinator(backend, request_deadline=30.0)
        async with coordinator:
            return await coordinator.top_k(t1, t2, 4)

    assert asyncio.run(main()) == engine.top_k(t1, t2, 4)


def test_bounded_close_fails_pending_with_shutdown(db, engine):
    from repro.core.errors import CoordinatorShutdown

    backend = SlowBackend(EngineBackend(engine), delay=0.5)
    t1, t2 = db.span

    async def main():
        coordinator = ServingCoordinator(backend, max_delay=0.0)
        await coordinator.start()
        pending = asyncio.ensure_future(coordinator.top_k(t1, t2, 3))
        await asyncio.sleep(0.05)  # let the batch reach the executor
        await coordinator.close(drain_timeout=0.01)
        with pytest.raises(CoordinatorShutdown):
            await pending
        return coordinator

    coordinator = asyncio.run(main())
    assert coordinator.stats.failed >= 1


def test_unbounded_close_drains_everything(db, engine):
    backend = SlowBackend(EngineBackend(engine), delay=0.05)
    t1, t2 = db.span

    async def main():
        coordinator = ServingCoordinator(backend, max_delay=0.0)
        await coordinator.start()
        pending = asyncio.ensure_future(coordinator.top_k(t1, t2, 5))
        await asyncio.sleep(0.02)
        await coordinator.close(drain_timeout=None)
        return coordinator, await pending

    coordinator, answer = asyncio.run(main())
    assert answer == engine.top_k(t1, t2, 5)
    assert coordinator.stats.failed == 0
