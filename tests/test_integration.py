"""Integration tests: full pipelines across subsystems."""

import numpy as np
import pytest

from repro import (
    Appx1,
    Appx2,
    Appx2Plus,
    Exact1,
    Exact2,
    Exact3,
    TopKQuery,
    generate_meme,
    generate_temp,
    random_queries,
)
from repro.bench import evaluate_method, exact_reference
from repro.core import from_samples
from repro.segmentation import bottom_up

from _support import make_random_database


class TestTempPipeline:
    """Generate -> index -> query across all six methods."""

    @pytest.fixture(scope="class")
    def setting(self):
        db = generate_temp(num_objects=60, avg_readings=40, seed=11)
        queries = random_queries(db, count=8, interval_fraction=0.2, k=10, seed=4)
        exact = exact_reference(db, queries)
        return db, queries, exact

    def test_exact_methods_perfect(self, setting):
        db, queries, exact = setting
        for cls in (Exact1, Exact2, Exact3):
            method = cls().build(db)
            for q, ref in zip(queries, exact):
                got = method.query(q)
                assert got.object_ids == ref.object_ids

    def test_approximate_methods_high_quality(self, setting):
        db, queries, exact = setting
        for cls, floor in ((Appx1, 0.85), (Appx2Plus, 0.75)):
            method = cls(epsilon=1e-4, kmax=20).build(db)
            report = evaluate_method(
                method, db, queries, exact, measure_quality=True
            )
            assert report.precision >= floor
            assert 0.9 <= report.ratio <= 1.1

    def test_approx_query_ios_beat_exact3(self, setting):
        db, queries, exact = setting
        exact3 = Exact3().build(db)
        appx1 = Appx1(epsilon=1e-4, kmax=20).build(db)
        io_exact = np.mean([exact3.measured_query(q).ios for q in queries])
        io_appx = np.mean([appx1.measured_query(q).ios for q in queries])
        assert io_appx < io_exact


class TestMemePipeline:
    def test_bursty_data_flows(self):
        db = generate_meme(num_objects=150, avg_records=8, seed=21)
        queries = random_queries(db, count=5, interval_fraction=0.2, k=8, seed=5)
        exact = exact_reference(db, queries)
        e3 = Exact3().build(db)
        a2 = Appx2(epsilon=5e-5, kmax=16).build(db)
        for q, ref in zip(queries, exact):
            assert e3.query(q).object_ids == ref.object_ids
            approx_ids = set(a2.query(q).object_ids)
            overlap = len(approx_ids & set(ref.object_ids)) / max(len(ref), 1)
            assert overlap >= 0.4


class TestRawIngestPipeline:
    """Samples -> segmentation -> database -> index -> query."""

    def test_sensor_feed_end_to_end(self):
        rng = np.random.default_rng(33)
        objects = []
        from repro.core import TemporalDatabase, TemporalObject

        for i in range(10):
            t = np.sort(rng.uniform(0, 50, 500))
            t = np.unique(t)
            v = 5 + 3 * np.sin(t / 3 + i) + 0.05 * rng.standard_normal(t.size)
            raw = from_samples(t, v)
            compact = bottom_up(raw.times, raw.values, tolerance=0.1)
            assert compact.num_segments < raw.num_segments
            objects.append(TemporalObject(i, compact))
        db = TemporalDatabase(objects, span=(0.0, 50.0), pad=True)
        method = Exact3().build(db)
        ref = db.brute_force_top_k(10, 40, 3)
        assert method.query(TopKQuery(10, 40, 3)).object_ids == ref.object_ids


class TestInstantQueryDegenerate:
    def test_zero_length_interval(self, small_db):
        """top-k(t, t, sum) degenerates to all-zero scores."""
        method = Exact3().build(small_db)
        res = method.query(TopKQuery(50.0, 50.0, 3))
        assert all(s == pytest.approx(0.0, abs=1e-9) for s in res.scores)


class TestPaddingInvariant:
    def test_stab_returns_every_object(self):
        db = make_random_database(num_objects=25, avg_segments=10, seed=71)
        method = Exact3().build(db)
        rng = np.random.default_rng(0)
        for t in rng.uniform(*db.span, 20):
            rows = method.tree.stab(float(t))
            objs = np.unique(rows[:, 2].astype(int))
            assert objs.size == db.num_objects

    def test_unpadded_database_still_correct(self):
        """EXACT3 falls back to in-memory cumulatives for missed stabs."""
        db = make_random_database(num_objects=10, avg_segments=6, seed=72)
        unpadded = type(db)(
            [obj for obj in db], span=db.span, pad=False
        )
        method = Exact3().build(unpadded)
        ref = unpadded.brute_force_top_k(20, 80, 4)
        assert method.query(TopKQuery(20, 80, 4)).object_ids == ref.object_ids


class TestCrossMethodConsistency:
    def test_all_methods_rank_same_leader(self):
        """Every method must agree on a clearly dominating object."""
        from repro.core import (
            PiecewiseLinearFunction,
            TemporalDatabase,
            TemporalObject,
        )

        objects = [
            TemporalObject(0, PiecewiseLinearFunction([0, 100], [100, 100])),
        ]
        rng = np.random.default_rng(1)
        for i in range(1, 12):
            times = np.unique(rng.uniform(0, 100, 8))
            values = rng.uniform(0, 1, times.size)
            objects.append(TemporalObject(i, PiecewiseLinearFunction(times, values)))
        db = TemporalDatabase(objects, span=(0.0, 100.0), pad=True)
        q = TopKQuery(10.0, 90.0, 1)
        methods = [
            Exact1().build(db),
            Exact2().build(db),
            Exact3().build(db),
            Appx1(epsilon=0.01, kmax=5).build(db),
            Appx2(epsilon=0.01, kmax=5).build(db),
            Appx2Plus(epsilon=0.01, kmax=5).build(db),
        ]
        for m in methods:
            assert m.query(q).object_ids[0] == 0, m.name
