"""Unit tests for query descriptors and miscellaneous core pieces."""

import numpy as np
import pytest

from repro.core import TopKQuery, TemporalObject, PiecewiseLinearFunction
from repro.core.errors import InvalidQueryError


class TestTopKQuery:
    def test_valid(self):
        q = TopKQuery(1.0, 5.0, 3)
        assert q.length == 4.0

    def test_instant_degenerate_allowed(self):
        q = TopKQuery(2.0, 2.0, 1)
        assert q.length == 0.0

    def test_rejects_reversed(self):
        with pytest.raises(InvalidQueryError):
            TopKQuery(5.0, 1.0, 3)

    def test_rejects_bad_k(self):
        with pytest.raises(InvalidQueryError):
            TopKQuery(0.0, 1.0, 0)

    def test_frozen(self):
        q = TopKQuery(0.0, 1.0, 1)
        with pytest.raises(AttributeError):
            q.k = 5


class TestTemporalObject:
    def test_properties(self):
        obj = TemporalObject(7, PiecewiseLinearFunction([0, 2, 4], [1, 3, 1]))
        assert obj.num_segments == 2
        assert obj.total_mass == pytest.approx(8)
        assert obj.score(0, 2) == pytest.approx(4)

    def test_label_not_in_equality(self):
        fn = PiecewiseLinearFunction([0, 1], [1, 1])
        assert TemporalObject(1, fn, "a") == TemporalObject(1, fn, "b")

    def test_with_appended_immutable(self):
        obj = TemporalObject(1, PiecewiseLinearFunction([0, 1], [2, 2]))
        extended = obj.with_appended(2.0, 4.0)
        assert obj.num_segments == 1
        assert extended.num_segments == 2
        assert extended.object_id == 1


class TestRestrictedPlf:
    def test_interior_restriction(self):
        plf = PiecewiseLinearFunction([0, 10], [0, 10])
        cut = plf.restricted(2, 6)
        assert cut.start == 2 and cut.end == 6
        assert cut.value(4) == pytest.approx(4)
        assert cut.total_mass == pytest.approx(plf.integral(2, 6))

    def test_disjoint_returns_none(self):
        plf = PiecewiseLinearFunction([0, 10], [1, 1])
        assert plf.restricted(20, 30) is None

    def test_restriction_covering_span_is_identity_shape(self):
        plf = PiecewiseLinearFunction([2, 5, 8], [1, 3, 1])
        cut = plf.restricted(0, 10)
        assert cut.start == 2 and cut.end == 8
        assert cut.total_mass == pytest.approx(plf.total_mass)

    def test_partition_sums_to_whole(self):
        rng = np.random.default_rng(3)
        times = np.unique(rng.uniform(0, 50, 20))
        values = rng.uniform(0, 5, times.size)
        plf = PiecewiseLinearFunction(times, values)
        cuts = np.linspace(times[0], times[-1], 6)
        total = 0.0
        for a, b in zip(cuts[:-1], cuts[1:]):
            piece = plf.restricted(float(a), float(b))
            if piece is not None:
                total += piece.total_mass
        assert total == pytest.approx(plf.total_mass, rel=1e-9)
