"""End-to-end tests for APPX1-B / APPX2-B / APPX1 / APPX2 / APPX2+."""

import numpy as np
import pytest

from repro.core import TopKQuery
from repro.core.errors import ReproError
from repro.approximate import Appx1, Appx1B, Appx2, Appx2B, Appx2Plus
from repro.bench.metrics import precision_recall

from _support import make_random_database, random_intervals

ALL_CLASSES = [Appx1B, Appx2B, Appx1, Appx2, Appx2Plus]


@pytest.fixture(scope="module")
def db():
    return make_random_database(num_objects=60, avg_segments=30, seed=202)


@pytest.fixture(scope="module")
def built(db):
    methods = {}
    for cls in ALL_CLASSES:
        if cls.breakpoint_kind == "b1":
            methods[cls.name] = cls(r=41, kmax=20).build(db)
        else:
            methods[cls.name] = cls(epsilon=2e-4, kmax=20).build(db)
    return methods


class TestConstruction:
    def test_requires_parameters(self):
        with pytest.raises(ReproError):
            Appx1()
        with pytest.raises(ReproError):
            Appx2(epsilon=0.1, r=10)

    def test_breakpoint_kinds(self, built):
        assert built["APPX1-B"].breakpoints.method == "BREAKPOINTS1"
        assert built["APPX1"].breakpoints.method == "BREAKPOINTS2"
        assert built["APPX2+"].breakpoints.method == "BREAKPOINTS2"

    def test_prebuilt_breakpoints_shared(self, db, built):
        bp = built["APPX1"].breakpoints
        clone = Appx2(breakpoints=bp, kmax=20).build(db)
        assert clone.breakpoints is bp

    def test_index_size_ordering(self, built):
        """Figure 11(c) orderings that hold at any scale:
        APPX2 (r*kmax) < APPX1 (r^2*kmax), APPX2 < APPX2+ (which adds
        the O(N) prefix forest).  The paper's APPX1 < APPX2+ ordering
        additionally needs r^2*kmax << N, true at its 50M-segment
        testbed but not at unit-test scale."""
        assert (
            built["APPX2"].index_size_bytes < built["APPX1"].index_size_bytes
        )
        assert (
            built["APPX2"].index_size_bytes < built["APPX2+"].index_size_bytes
        )


class TestGuarantees:
    def test_appx1_epsilon_one(self, db, built):
        """(eps, 1)-approximation per rank (Lemma 3 + Lemma 6)."""
        for name in ("APPX1-B", "APPX1"):
            method = built[name]
            bound = method.breakpoints.threshold * (1 + 1e-6)
            for t1, t2 in random_intervals(db, 25, seed=1):
                ref = db.brute_force_top_k(t1, t2, 10)
                got = method.query(TopKQuery(t1, t2, 10))
                for j, item in enumerate(got):
                    assert abs(item.score - ref[j].score) <= bound

    def test_appx2_epsilon_2logr(self, db, built):
        """(eps, 2 log r)-approximation per rank (Lemmas 4-5)."""
        for name in ("APPX2-B", "APPX2"):
            method = built[name]
            bp = method.breakpoints
            alpha = 2 * np.log2(max(bp.r, 2))
            for t1, t2 in random_intervals(db, 25, seed=2):
                ref = db.brute_force_top_k(t1, t2, 10)
                got = method.query(TopKQuery(t1, t2, 10))
                for j, item in enumerate(got):
                    truth = ref[j].score
                    assert item.score >= truth / alpha - bp.threshold - 1e-6
                    assert item.score <= truth + bp.threshold + 1e-6

    def test_appx2plus_scores_exact(self, db, built):
        """APPX2+ returns exact aggregates for whatever it returns."""
        method = built["APPX2+"]
        for t1, t2 in random_intervals(db, 20, seed=3):
            got = method.query(TopKQuery(t1, t2, 10))
            for item in got:
                assert item.score == pytest.approx(
                    db.exact_score(item.object_id, t1, t2), abs=1e-6
                )

    def test_precision_reasonable(self, db, built):
        """Paper Figure 12(a): precision/recall stays high."""
        for name, floor in [("APPX1", 0.8), ("APPX2+", 0.7), ("APPX2", 0.5)]:
            method = built[name]
            precisions = []
            for t1, t2 in random_intervals(db, 25, seed=4):
                ref = db.brute_force_top_k(t1, t2, 10)
                got = method.query(TopKQuery(t1, t2, 10))
                precisions.append(precision_recall(got, ref))
            assert np.mean(precisions) >= floor, name

    def test_b2_beats_b1_for_same_budget(self, db):
        """Figure 12: same r, BREAKPOINTS2 gives better answers."""
        r = 31
        from repro.approximate import epsilon_for_budget

        eps2 = epsilon_for_budget(db, r, tolerance=2)
        basic = Appx1B(r=r, kmax=15).build(db)
        improved = Appx1(epsilon=eps2, kmax=15).build(db)
        score_basic, score_improved = [], []
        for t1, t2 in random_intervals(db, 25, seed=5):
            ref = db.brute_force_top_k(t1, t2, 8)
            score_basic.append(
                precision_recall(basic.query(TopKQuery(t1, t2, 8)), ref)
            )
            score_improved.append(
                precision_recall(improved.query(TopKQuery(t1, t2, 8)), ref)
            )
        assert np.mean(score_improved) >= np.mean(score_basic) - 0.05


class TestQueryMechanics:
    def test_kmax_enforced(self, built):
        from repro.core.errors import InvalidQueryError

        for method in built.values():
            with pytest.raises(InvalidQueryError):
                method.query(TopKQuery(0.0, 50.0, 21))

    def test_query_ios_tiny_for_appx1(self, built):
        cost = built["APPX1"].measured_query(TopKQuery(10.0, 80.0, 10))
        assert cost.ios <= 12

    def test_appx2_ios_larger_than_appx1(self, built):
        q = TopKQuery(10.0, 80.0, 10)
        io1 = built["APPX1"].measured_query(q).ios
        io2 = built["APPX2"].measured_query(q).ios
        io2p = built["APPX2+"].measured_query(q).ios
        assert io1 <= io2 <= io2p

    def test_result_sorted_descending(self, built):
        for method in built.values():
            res = method.query(TopKQuery(5.0, 95.0, 10))
            assert res.scores == sorted(res.scores, reverse=True)

    def test_duplicate_free_results(self, built):
        for method in built.values():
            res = method.query(TopKQuery(5.0, 95.0, 15))
            assert len(set(res.object_ids)) == len(res.object_ids)


class TestNegativeScoresIntegration:
    def test_methods_run_on_negative_db(self, negative_db):
        from repro.approximate import build_breakpoints2

        bp = build_breakpoints2(negative_db, 0.005, use_absolute=True)
        method = Appx1(breakpoints=bp, kmax=10).build(negative_db)
        res = method.query(TopKQuery(10.0, 90.0, 5))
        ref = negative_db.brute_force_top_k(10.0, 90.0, 5)
        bound = 2 * bp.epsilon * negative_db.absolute_total_mass + 1e-6
        for j, item in enumerate(res):
            assert abs(item.score - ref[j].score) <= bound


class TestUpdates:
    def test_append_triggers_rebuild_on_mass_doubling(self):
        db = make_random_database(num_objects=10, avg_segments=8, seed=303)
        method = Appx2(epsilon=0.01, kmax=10).build(db)
        old_bp = method.breakpoints
        # Append enough mass to double M.
        end = db.t_max
        target = db.total_mass
        added = 0.0
        step = 0
        while added < target * 1.05:
            end += 5.0
            db.append_segment(0, end, 50.0)
            added += 0.5 * 5.0 * (50.0 + db.get(0).function.values[-2])
            method.append(0, end, 50.0)
            step += 1
            assert step < 200
        # A rebuild must have happened: breakpoints now extend past the
        # original domain end (possibly not to the very last append,
        # which may land after the doubling point).
        assert method.breakpoints.times[-1] > old_bp.times[-1]
        assert method.breakpoints is not old_bp

    def test_queries_after_rebuild_are_sane(self):
        db = make_random_database(num_objects=10, avg_segments=8, seed=304)
        method = Appx2Plus(epsilon=0.005, kmax=10).build(db)
        end = db.t_max
        for _ in range(500):
            end += 2.0
            db.append_segment(1, end, 60.0)
            method.append(1, end, 60.0)
            if method.breakpoints.times[-1] == db.t_max:
                break  # the doubling rebuild has fired
        assert method.breakpoints.times[-1] == db.t_max
        res = method.query(TopKQuery(db.t_min, db.t_max, 3))
        # After the heavy appends object 1 dominates.
        assert 1 in res.object_ids
