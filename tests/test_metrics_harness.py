"""Tests for benchmark metrics, harness, and reporting."""

import numpy as np
import pytest

from repro.core import TopKQuery, TopKResult
from repro.bench import (
    approximation_ratio,
    evaluate_method,
    exact_reference,
    format_table,
    precision_recall,
    rank_score_errors,
    sweep,
)
from repro.exact import Exact3

from _support import make_random_database


def result_of(pairs):
    return TopKResult.from_pairs(pairs)


class TestPrecisionRecall:
    def test_perfect(self):
        a = result_of([(1, 3.0), (2, 2.0)])
        assert precision_recall(a, a) == 1.0

    def test_disjoint(self):
        a = result_of([(1, 3.0)])
        b = result_of([(2, 3.0)])
        assert precision_recall(a, b) == 0.0

    def test_partial(self):
        approx = result_of([(1, 3.0), (2, 2.0), (5, 1.0), (6, 0.5)])
        exact = result_of([(1, 3.0), (2, 2.0), (3, 1.5), (4, 1.0)])
        assert precision_recall(approx, exact) == 0.5

    def test_short_approx_penalized(self):
        approx = result_of([(1, 3.0)])
        exact = result_of([(1, 3.0), (2, 2.0)])
        assert precision_recall(approx, exact) == 0.5

    def test_empty_exact(self):
        assert precision_recall(result_of([]), result_of([])) == 1.0


class TestApproximationRatio:
    def test_exact_scores_give_one(self, small_db):
        exact = small_db.brute_force_top_k(10, 60, 5)
        assert approximation_ratio(exact, small_db, 10, 60) == pytest.approx(1.0)

    def test_underestimates_below_one(self, small_db):
        exact = small_db.brute_force_top_k(10, 60, 3)
        halved = result_of([(it.object_id, it.score / 2) for it in exact])
        assert approximation_ratio(halved, small_db, 10, 60) == pytest.approx(0.5)

    def test_skips_zero_truth(self, small_db):
        fake = result_of([(0, 0.0)])
        # Query interval where object 0 has zero mass: outside domain.
        value = approximation_ratio(fake, small_db, -5, -1)
        assert value == 1.0


class TestRankScoreErrors:
    def test_zero_for_identical(self):
        res = result_of([(1, 4.0), (2, 2.0)])
        errors = rank_score_errors(res, res, total_mass=10.0)
        assert np.allclose(errors, 0.0)

    def test_normalized_by_mass(self):
        a = result_of([(1, 5.0)])
        b = result_of([(1, 4.0)])
        assert rank_score_errors(a, b, total_mass=10.0)[0] == pytest.approx(0.1)


class TestHarness:
    def test_evaluate_method_fields(self):
        db = make_random_database(num_objects=15, avg_segments=10, seed=5)
        queries = [TopKQuery(10, 50, 5), TopKQuery(20, 80, 5)]
        exact = exact_reference(db, queries)
        report = evaluate_method(
            Exact3(), db, queries, exact, measure_quality=True
        )
        assert report.method == "EXACT3"
        assert report.index_size_bytes > 0
        assert report.avg_query_ios > 0
        assert report.precision == pytest.approx(1.0)
        assert report.ratio == pytest.approx(1.0)
        row = report.row()
        assert "query_ios" in row and "precision" in row

    def test_sweep_runs_all_values(self):
        def make_db(value):
            return make_random_database(num_objects=value, avg_segments=8, seed=6)

        def make_methods(db, value):
            return [Exact3()]

        def make_queries(db, value):
            return [TopKQuery(10, 60, 3)]

        results = sweep([8, 12], make_db, make_methods, make_queries)
        assert set(results) == {8, 12}
        assert results[8][0].method == "EXACT3"


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"method": "EXACT3", "ios": 120, "ratio": 1.0},
            {"method": "APPX1", "ios": 6, "ratio": 0.98765},
        ]
        table = format_table("demo", rows)
        assert "EXACT3" in table and "APPX1" in table
        assert table.splitlines()[1].startswith("method")

    def test_format_table_empty(self):
        assert "(no data)" in format_table("empty", [])

    def test_format_handles_nan_and_small(self):
        table = format_table("x", [{"a": float("nan"), "b": 1.5e-7}])
        assert "-" in table
        assert "e-07" in table


class TestBenchGating:
    """The shared BENCH baseline gate (repro.bench.gating)."""

    def test_find_baseline_entry_matches_config_latest_wins(self):
        from repro.bench.gating import find_baseline_entry

        history = [
            {"config": {"m": 10}, "results": {"x": 1.0}},
            {"config": {"m": 20}, "results": {"x": 2.0}},
            {"config": {"m": 10}, "results": {"x": 3.0}},
        ]
        assert find_baseline_entry(history, {"m": 10})["results"]["x"] == 3.0
        assert find_baseline_entry(history, {"m": 99}) is None
        single = {"config": {"m": 20}, "results": {}}
        assert find_baseline_entry(single, {"m": 20}) is single

    def test_compare_results_gates_timings_and_ratios(self):
        from repro.bench.gating import compare_results

        base = {"slow_s": 1.0, "tiny_s": 0.001, "speedup": 10.0}
        # Regressed timing, noise-floor timing, and lost ratio.
        current = {"slow_s": 2.5, "tiny_s": 1.0, "speedup": 4.0}
        failures = compare_results(
            base, current, ("slow_s", "tiny_s"), ("speedup",), 2.0,
            label="r=7 ",
        )
        assert len(failures) == 2  # tiny_s is below the noise floor
        assert any("slow_s" in line for line in failures)
        assert any("speedup" in line for line in failures)
        assert all(line.startswith("r=7 ") for line in failures)

    def test_compare_results_passes_within_budget(self):
        from repro.bench.gating import compare_results

        base = {"slow_s": 1.0, "speedup": 10.0}
        current = {"slow_s": 1.8, "speedup": 6.0, "extra": 5.0}
        assert not compare_results(
            base, current, ("slow_s", "missing"), ("speedup",), 2.0
        )

    def test_single_core_host_reads_recorded_and_current_metadata(self):
        from repro.bench.gating import host_metadata, single_core_host

        assert single_core_host({"cpu_count": 1})
        assert single_core_host({})  # missing count: assume 1-core
        assert single_core_host({"cpu_count": None})
        assert not single_core_host({"cpu_count": 8})
        # The current-host default agrees with host_metadata().
        meta = host_metadata()
        assert single_core_host() == (int(meta["cpu_count"] or 1) < 2)
